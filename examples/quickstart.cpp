/**
 * @file
 * Quickstart: build a Wide I/O processor-memory stack, run one
 * application through the full Xylem pipeline (multicore simulation →
 * power model → thermal solve) for the baseline and the two Xylem
 * schemes, and print temperatures and powers.
 *
 * Usage: quickstart [app-name] [freq-GHz]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "workloads/profile.hpp"
#include "xylem/system.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    const std::string app_name = argc > 1 ? argv[1] : "LU(NAS)";
    const double freq = argc > 2 ? std::atof(argv[2]) : 2.4;
    const auto &app = workloads::profileByName(app_name);

    Table table({"scheme", "TTSVs", "proc power (W)", "DRAM power (W)",
                 "proc hotspot (C)", "bottom DRAM (C)", "IPC (core 0)"});

    for (stack::Scheme scheme :
         {stack::Scheme::Base, stack::Scheme::Bank, stack::Scheme::BankE,
          stack::Scheme::Prior}) {
        core::SystemConfig cfg;
        cfg.stackSpec.scheme = scheme;
        core::StackSystem system(cfg);
        const core::EvalResult r = system.evaluate(app, freq);
        table.addRow({stack::toString(scheme),
                      std::to_string(system.builtStack().ttsvCount()),
                      Table::num(r.procPowerTotal),
                      Table::num(r.dramPowerTotal),
                      Table::num(r.procHotspot),
                      Table::num(r.dramBottomHotspot),
                      Table::num(r.sim.cores[0].ipc())});
    }

    std::cout << "Xylem quickstart: " << app.name << " (" << app.suite
              << ", " << workloads::toString(app.klass) << ") at " << freq
              << " GHz, 8 cores + 8 DRAM dies\n\n";
    table.print(std::cout);
    std::cout << "\nTemperatures are steady-state hotspots; the Xylem "
                 "schemes (bank/banke) short dummy microbumps to TTSVs "
                 "and lower them; 'prior' places the same TTSVs without "
                 "shorting and achieves almost nothing (the D2D layers "
                 "remain the bottleneck).\n";
    return 0;
}
