/**
 * @file
 * Design-space exploration with the config-file front end: load a
 * SystemConfig (or use the defaults), sweep scheme x die count, and
 * print the resulting hotspot / boosted-frequency grid plus the
 * simulator's gem5-style statistics for the chosen workload.
 *
 * Usage: design_space [config-file] [app-name]
 */

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "cpu/stats_report.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"
#include "xylem/system.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    core::SystemConfig base_cfg;
    if (argc > 1)
        base_cfg = core::loadSystemConfig(argv[1]);
    const std::string app_name = argc > 2 ? argv[2] : "Barnes";
    const auto &app = workloads::profileByName(app_name);

    std::cout << "Effective configuration:\n"
              << core::formatSystemConfig(base_cfg) << "\n";

    Table t({"DRAM dies", "scheme", "hotspot@2.4 (C)",
             "max freq under caps (GHz)"});
    for (int dies : {4, 8}) {
        for (stack::Scheme scheme :
             {stack::Scheme::Base, stack::Scheme::BankE}) {
            core::SystemConfig cfg = base_cfg;
            cfg.stackSpec.numDramDies = dies;
            cfg.stackSpec.scheme = scheme;
            core::StackSystem system(cfg);
            const core::EvalResult r = system.evaluate(app, 2.4);
            const core::BoostResult boost = system.maxUniformFrequency(
                app, cfg.tjMaxProc, cfg.tMaxDram);
            t.addRow({std::to_string(dies), stack::toString(scheme),
                      Table::num(r.procHotspot, 1),
                      boost.feasible ? Table::num(boost.freqGHz, 1)
                                     : "none"});
        }
    }
    t.print(std::cout);

    std::cout << "\nSimulator statistics for " << app.name
              << " on the default system at 2.4 GHz:\n\n";
    core::StackSystem system(base_cfg);
    const core::EvalResult r = system.evaluate(app, 2.4);
    cpu::ReportOptions opts;
    opts.perCore = false;
    cpu::printReport(std::cout, r.sim, opts);
    return 0;
}
