/**
 * @file
 * Frequency boosting at iso-temperature (§5.1/§7.3): take an
 * application, measure the baseline (Wide I/O, no TTSVs) hotspot at
 * 2.4 GHz, then find how far the Xylem schemes can raise the clock
 * without exceeding that temperature — and what that buys in
 * performance, power and energy.
 *
 * Usage: frequency_boost [app-name]
 */

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "workloads/profile.hpp"
#include "xylem/system.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    const std::string app_name = argc > 1 ? argv[1] : "Barnes";
    const auto &app = workloads::profileByName(app_name);

    // Reference point: the base stack at the default 2.4 GHz.
    core::SystemConfig base_cfg;
    core::StackSystem base(base_cfg);
    const core::EvalResult ref = base.evaluate(app, 2.4);
    std::cout << "Application " << app.name << " ("
              << workloads::toString(app.klass) << ") on the base "
              << "stack at 2.4 GHz:\n  hotspot "
              << Table::num(ref.procHotspot) << " C, stack power "
              << Table::num(ref.stackPowerTotal) << " W\n\n";

    Table t({"scheme", "boosted freq (GHz)", "hotspot (C)", "perf gain",
             "power change", "energy change"});
    for (stack::Scheme scheme :
         {stack::Scheme::Bank, stack::Scheme::BankE}) {
        core::SystemConfig cfg;
        cfg.stackSpec.scheme = scheme;
        core::StackSystem system(cfg);
        const core::BoostResult boost =
            system.maxUniformFrequency(app, ref.procHotspot, 1e9);
        if (!boost.feasible) {
            t.addRow({stack::toString(scheme), "infeasible", "-", "-",
                      "-", "-"});
            continue;
        }
        const auto &e = boost.eval;
        auto pct = [](double now, double before) {
            return Table::num((now / before - 1.0) * 100.0, 1) + "%";
        };
        t.addRow({stack::toString(scheme), Table::num(boost.freqGHz, 1),
                  Table::num(e.procHotspot),
                  pct(e.performance(), ref.performance()),
                  pct(e.stackPowerTotal, ref.stackPowerTotal),
                  pct(e.stackEnergy(), ref.stackEnergy())});
    }
    t.print(std::cout);
    std::cout << "\nThe shorted dummy-µbump/TTSV pillars lower the "
                 "stack's thermal resistance; the freed headroom is "
                 "spent on clock frequency at the same steady-state "
                 "temperature.\n";
    return 0;
}
