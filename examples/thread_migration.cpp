/**
 * @file
 * λ-aware thread migration (§5.2.3): two threads hop between cores
 * every 30 ms. Migrating among the inner cores — which sit closer to
 * the shorted µbump-TTSV pillars — keeps the die cooler than
 * migrating among the outer cores. This example prints the transient
 * hotspot trace so the sawtooth is visible.
 *
 * Usage: thread_migration [app-name]
 */

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "workloads/profile.hpp"
#include "xylem/migration.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    const std::string app_name = argc > 1 ? argv[1] : "LU(NAS)";
    const auto &app = workloads::profileByName(app_name);

    core::SystemConfig cfg;
    cfg.stackSpec.scheme = stack::Scheme::BankE;
    core::StackSystem system(cfg);
    const auto &die = system.builtStack().procDie;

    core::MigrationOptions opts;
    opts.numPhases = 6;
    opts.stepsPerPhase = 6;
    opts.warmupPhases = 2;

    std::cout << "Two " << app.name << " threads on the banke stack at "
              << opts.freqGHz << " GHz, migrating every "
              << opts.periodSeconds * 1000.0 << " ms\n\n";

    const core::MigrationResult inner =
        core::runMigration(system, app, die.innerCores, opts);
    const core::MigrationResult outer =
        core::runMigration(system, app, die.outerCores, opts);

    Table t({"core set", "avg hotspot (C)", "peak hotspot (C)"});
    t.addRow({"outer (1,4,5,8)", Table::num(outer.avgHotspot),
              Table::num(outer.maxHotspot)});
    t.addRow({"inner (2,3,6,7)", Table::num(inner.avgHotspot),
              Table::num(inner.maxHotspot)});
    t.print(std::cout);

    std::cout << "\nTransient hotspot trace (C), one value per "
              << opts.periodSeconds / opts.stepsPerPhase * 1000.0
              << " ms step; '|' marks a migration:\n";
    auto print_trace = [&](const char *name,
                           const std::vector<double> &trace) {
        std::cout << name << ": ";
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (i && i % static_cast<std::size_t>(opts.stepsPerPhase) == 0)
                std::cout << "| ";
            std::cout << Table::num(trace[i], 1) << " ";
        }
        std::cout << "\n";
    };
    print_trace("outer", outer.trace);
    print_trace("inner", inner.trace);
    return 0;
}
