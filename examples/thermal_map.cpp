/**
 * @file
 * Visualise where the heat goes: ASCII heatmaps of the processor die
 * under base and banke, plus a DTM (dynamic thermal management)
 * decision — what frequency the chip is actually granted when the
 * user asks for 3.5 GHz.
 *
 * Usage: thermal_map [app-name]
 */

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "thermal/heatmap.hpp"
#include "workloads/profile.hpp"
#include "xylem/dtm.hpp"
#include "xylem/system.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    const std::string app_name = argc > 1 ? argv[1] : "LU(NAS)";
    const auto &app = workloads::profileByName(app_name);

    for (stack::Scheme scheme :
         {stack::Scheme::Base, stack::Scheme::BankE}) {
        core::SystemConfig cfg;
        cfg.stackSpec.scheme = scheme;
        core::StackSystem system(cfg);
        const core::EvalResult r = system.evaluate(app, 2.4);

        std::cout << "=== " << stack::toString(scheme) << " — " << app.name
                  << " at 2.4 GHz: hotspot "
                  << Table::num(r.procHotspot, 1)
                  << " C ===\n(processor metal layer; cores top and "
                     "bottom, LLC band in the middle)\n";
        thermal::HeatmapOptions opts;
        opts.maxCols = 64;
        thermal::renderHeatmap(
            std::cout, r.field,
            static_cast<std::size_t>(system.builtStack().procMetal),
            opts);

        // What does DTM grant if software requests the top bin?
        const core::DtmResult dtm = core::throttleToCaps(
            system, app, 3.5, system.config().tjMaxProc,
            system.config().tMaxDram);
        std::cout << "DTM: requested 3.50 GHz -> granted "
                  << Table::num(dtm.grantedGHz, 2) << " GHz"
                  << (dtm.throttled ? " (throttled)" : "")
                  << (dtm.feasible ? "" : " [caps unreachable]") << "\n\n";
    }
    std::cout << "banke's aligned+shorted pillars visibly flatten the "
                 "core hotspots and let DTM grant a higher clock.\n";
    return 0;
}
