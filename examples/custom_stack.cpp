/**
 * @file
 * Building a custom stack with the low-level API: a non-standard die
 * thickness and die count, a hand-made power map, and direct use of
 * the steady-state and transient thermal solvers (no performance
 * simulation involved). This is the entry point for using the
 * thermal substrate on its own.
 *
 * Usage: custom_stack [num-dram-dies] [die-thickness-um]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;

    stack::StackSpec spec;
    spec.scheme = stack::Scheme::Bank;
    spec.numDramDies = argc > 1 ? std::atoi(argv[1]) : 4;
    spec.dieThickness = (argc > 2 ? std::atof(argv[2]) : 100.0) * 1e-6;
    const stack::BuiltStack stk = stack::buildStack(spec);

    std::cout << "Custom stack: " << spec.numDramDies
              << " DRAM dies, " << spec.dieThickness * 1e6
              << " um silicon, scheme " << stack::toString(spec.scheme)
              << ", " << stk.layers.size() << " layers, "
              << stk.ttsvCount() << " TTSVs/die\n\n";

    thermal::SolverOptions opts;
    opts.ambientCelsius = 40.0;
    const thermal::GridModel model(stk, opts);

    // Hand-made power map: a 12 W hot stripe across the processor
    // plus 0.3 W in each DRAM die.
    thermal::PowerMap power(stk);
    power.deposit(stk.procMetal,
                  geometry::Rect{1e-3, 5.4e-3, 6e-3, 2.0e-3}, 12.0);
    power.deposit(stk.procMetal, stk.grid.extent(), 6.0);
    for (int d = 0; d < spec.numDramDies; ++d)
        power.deposit(stk.dramMetal[d], stk.grid.extent(), 0.3);

    thermal::SolveStats stats;
    const thermal::TemperatureField steady =
        model.solveSteady(power, &stats);

    Table t({"layer", "max (C)", "mean (C)"});
    auto row = [&](const char *name, int layer) {
        t.addRow({name,
                  Table::num(steady.maxOfLayer(
                      static_cast<std::size_t>(layer))),
                  Table::num(steady.meanOfLayer(
                      static_cast<std::size_t>(layer)))});
    };
    row("processor metal (junctions)", stk.procMetal);
    row("bottom DRAM die", stk.dramMetal.front());
    row("top DRAM die", stk.dramMetal.back());
    row("heat sink", stk.heatSink);
    t.print(std::cout);
    std::cout << "\nSolver: " << stats.iterations
              << " CG iterations, residual " << stats.relativeResidual
              << "; heat outflow " << Table::num(model.heatOutflow(steady))
              << " W vs " << Table::num(power.totalPower())
              << " W injected (energy balance).\n";

    // Transient: watch the stack heat up from ambient.
    std::cout << "\nHeat-up transient (processor hotspot, 50 ms steps): ";
    thermal::TemperatureField f = model.ambientField();
    for (int i = 0; i < 8; ++i) {
        f = model.stepTransient(f, power, 0.05);
        std::cout << Table::num(
                         f.maxOfLayer(static_cast<std::size_t>(
                             stk.procMetal)), 1)
                  << (i + 1 < 8 ? " -> " : "");
    }
    std::cout << " C (steady: "
              << Table::num(steady.maxOfLayer(
                     static_cast<std::size_t>(stk.procMetal)), 1)
              << ")\n";
    return 0;
}
