/**
 * @file
 * xylem_client: one-shot command-line client for xylem_serve. Builds
 * a request from flags, sends it as one JSON line over the daemon's
 * Unix-domain socket, and prints the JSON response line.
 *
 * Resilience: --retries arms reconnect-and-retry with capped
 * exponential backoff (deterministically jittered, no RNG state) for
 * transport failures and "overloaded" responses — the two outcomes
 * where the same request can legitimately succeed a moment later.
 * Typed errors (protocol, config, deadline-exceeded, solver) never
 * retry: they would replay identically. --deadline-ms sets an
 * end-to-end budget measured from the first attempt; every attempt
 * sends the REMAINING budget as the request's deadline_ms, and the
 * client gives up locally once the budget is gone.
 *
 * Examples:
 *   xylem_client --query steady --app FFT --freq 3.0
 *   xylem_client --query boost --app LU --set scheme=bank
 *   xylem_client --query transient --app Radix --steps 10 --dt 0.002
 *   xylem_client --query metrics
 *   xylem_client --query health
 *   xylem_client --query steady --app FFT --deadline-ms 500 --retries 3
 *
 * Exit status: 0 when the response has "ok":true, 1 on an error
 * response or transport failure, 2 on usage errors.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace {

/** Backoff before retry `attempt` (1-based): 50ms·2^(attempt-1),
 *  capped at 1s, jittered to [0.75, 1.25)× by a pure hash of the
 *  attempt number — deterministic, so runs are reproducible. */
std::chrono::milliseconds
backoffDelay(int attempt)
{
    double ms = 50.0;
    for (int i = 1; i < attempt && ms < 1000.0; ++i)
        ms *= 2.0;
    if (ms > 1000.0)
        ms = 1000.0;
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ static_cast<std::uint64_t>(attempt)) * 0x100000001b3ull;
    h ^= h >> 33;
    const double jitter =
        0.75 + 0.5 * static_cast<double>(h % 1024) / 1024.0;
    return std::chrono::milliseconds(
        static_cast<long>(ms * jitter + 0.5));
}

struct AttemptResult
{
    bool gotResponse = false; ///< a frame arrived (even an error one)
    bool ok = false;          ///< response had "ok":true
    bool overloaded = false;  ///< typed shed; worth retrying
    std::string line;
};

AttemptResult
attemptOnce(const std::string &socket_path, const std::string &frame)
{
    using namespace xylem;
    AttemptResult r;
    const service::FdGuard fd = service::connectUnix(socket_path);
    if (!service::sendAll(fd.get(), frame))
        return r;
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    if (reader.next(r.line) != service::ReadStatus::Frame)
        return r;
    r.gotResponse = true;
    const service::JsonValue response = service::parseJson(r.line);
    const service::JsonValue *ok = response.find("ok");
    r.ok = ok && ok->isBoolean() && ok->boolean();
    if (!r.ok) {
        if (const service::JsonValue *err = response.find("error"))
            if (const service::JsonValue *code = err->find("code"))
                r.overloaded = code->isString() &&
                               code->str() == toString(
                                                  ErrorCode::Overloaded);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xylem;
    bench::Args args(
        argc, argv,
        "  --socket PATH   daemon socket (default /tmp/xylem.sock)\n"
        "  --query TYPE    steady | transient | boost | metrics | "
        "health (default steady)\n"
        "  --app NAME      workload profile (required except "
        "metrics/health)\n"
        "  --freq GHZ      uniform core frequency (default 2.4)\n"
        "  --steps N       transient: implicit-Euler steps\n"
        "  --dt S          transient: step size in seconds\n"
        "  --proc-cap C    boost: processor temperature cap\n"
        "  --dram-cap C    boost: DRAM temperature cap\n"
        "  --set KEY=VALUE config override (repeatable; config_io "
        "keys)\n"
        "  --id N          correlation id echoed in the response\n"
        "  --deadline-ms MS end-to-end budget across all attempts\n"
        "  --retries N     reconnect/retry transport failures and "
        "overload (default 0)\n");

    std::string socket_path = "/tmp/xylem.sock";
    if (const auto path = args.option("--socket"))
        socket_path = *path;

    service::JsonValue::Object request;
    request.emplace("query",
                    service::JsonValue(
                        args.option("--query").value_or("steady")));
    if (const auto app = args.option("--app"))
        request.emplace("app", service::JsonValue(*app));
    request.emplace("id",
                    service::JsonValue(args.intOption("--id", 1)));
    const double freq = args.numberOption("--freq", 0.0);
    if (freq > 0.0)
        request.emplace("freqGHz", service::JsonValue(freq));
    const int steps = args.intOption("--steps", 0);
    if (steps > 0)
        request.emplace("steps", service::JsonValue(steps));
    const double dt = args.numberOption("--dt", 0.0);
    if (dt > 0.0)
        request.emplace("dtSeconds", service::JsonValue(dt));
    const double proc_cap = args.numberOption("--proc-cap", 0.0);
    if (proc_cap > 0.0)
        request.emplace("procCapC", service::JsonValue(proc_cap));
    const double dram_cap = args.numberOption("--dram-cap", 0.0);
    if (dram_cap > 0.0)
        request.emplace("dramCapC", service::JsonValue(dram_cap));

    service::JsonValue::Object overrides;
    while (const auto kv = args.option("--set")) {
        const auto eq = kv->find('=');
        if (eq == std::string::npos || eq == 0)
            args.die("--set expects KEY=VALUE, got '" + *kv + "'");
        overrides.insert_or_assign(
            kv->substr(0, eq),
            service::JsonValue(kv->substr(eq + 1)));
    }
    if (!overrides.empty())
        request.emplace("config",
                        service::JsonValue(std::move(overrides)));
    const double deadline_ms = args.numberOption("--deadline-ms", 0.0);
    const int retries = args.intOption("--retries", 0);
    args.finish();

    const auto start = std::chrono::steady_clock::now();
    const auto remaining_ms = [&]() -> double {
        if (deadline_ms <= 0.0)
            return 0.0; // no budget: remaining is "unlimited"
        const double spent =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        return deadline_ms - spent;
    };

    std::string last_error;
    for (int attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0) {
            auto delay = backoffDelay(attempt);
            if (deadline_ms > 0.0) {
                const double left = remaining_ms();
                if (left <= 0.0)
                    break; // budget gone: stop retrying
                if (std::chrono::duration<double, std::milli>(delay)
                        .count() > left)
                    delay = std::chrono::milliseconds(
                        static_cast<long>(left));
            }
            std::this_thread::sleep_for(delay);
        }
        // Each attempt sends the budget REMAINING now, so the server
        // never works past the point the client has given up.
        service::JsonValue::Object this_request = request;
        if (deadline_ms > 0.0) {
            const double left = remaining_ms();
            if (left <= 0.0)
                break;
            this_request.insert_or_assign(
                "deadline_ms", service::JsonValue(left));
        }
        std::string frame =
            service::JsonValue(std::move(this_request)).dump();
        frame += '\n';
        try {
            const AttemptResult r = attemptOnce(socket_path, frame);
            if (r.gotResponse && !r.overloaded) {
                std::cout << r.line << "\n";
                return r.ok ? 0 : 1;
            }
            last_error = r.gotResponse
                             ? "daemon overloaded"
                             : "daemon closed the connection";
        } catch (const Error &e) {
            last_error = e.what(); // connect failed: daemon down?
        }
    }
    std::cerr << "error: " << last_error
              << (retries > 0 ? " (retries exhausted)" : "") << "\n";
    return 1;
}
