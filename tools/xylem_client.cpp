/**
 * @file
 * xylem_client: one-shot command-line client for xylem_serve (or the
 * xylem_frontend router — the wire format is identical). Builds a
 * request from flags, sends it as one JSON line to the daemon's
 * endpoint (unix:/path, tcp:host:port, or a bare socket path), and
 * prints the JSON response line.
 *
 * Resilience (service/client.hpp): --retries arms reconnect-and-retry
 * with capped exponential backoff (deterministically jittered, no RNG
 * state) for transport failures and "overloaded" responses — the two
 * outcomes where the same request can legitimately succeed a moment
 * later. Typed errors (protocol, config, deadline-exceeded, solver,
 * unavailable) never retry: they would replay identically.
 * --deadline-ms sets an end-to-end budget measured from the first
 * attempt; every attempt sends the REMAINING budget as the request's
 * deadline_ms, and the client gives up locally once the budget is
 * gone.
 *
 * Examples:
 *   xylem_client --query steady --app FFT --freq 3.0
 *   xylem_client --endpoint tcp:127.0.0.1:7430 --query health
 *   xylem_client --query transient --app Radix --steps 10 --dt 0.002
 *   xylem_client --query steady --app FFT --deadline-ms 500 --retries 3
 *
 * Exit status: 0 when the response has "ok":true, 1 on an error
 * response or transport failure, 2 on usage errors.
 */

#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/json.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    bench::Args args(
        argc, argv,
        "  --endpoint EP   daemon endpoint: unix:/path, tcp:host:port, "
        "or a bare path (default /tmp/xylem.sock)\n"
        "  --socket PATH   alias for --endpoint (legacy)\n"
        "  --query TYPE    steady | transient | boost | metrics | "
        "health (default steady)\n"
        "  --app NAME      workload profile (required except "
        "metrics/health)\n"
        "  --freq GHZ      uniform core frequency (default 2.4)\n"
        "  --steps N       transient: implicit-Euler steps\n"
        "  --dt S          transient: step size in seconds\n"
        "  --proc-cap C    boost: processor temperature cap\n"
        "  --dram-cap C    boost: DRAM temperature cap\n"
        "  --set KEY=VALUE config override (repeatable; config_io "
        "keys)\n"
        "  --id N          correlation id echoed in the response\n"
        "  --deadline-ms MS end-to-end budget across all attempts\n"
        "  --retries N     reconnect/retry transport failures and "
        "overload (default 0)\n");

    std::string endpoint = "/tmp/xylem.sock";
    if (const auto ep = args.option("--endpoint"))
        endpoint = *ep;
    if (const auto path = args.option("--socket"))
        endpoint = *path;

    service::JsonValue::Object request;
    request.emplace("query",
                    service::JsonValue(
                        args.option("--query").value_or("steady")));
    if (const auto app = args.option("--app"))
        request.emplace("app", service::JsonValue(*app));
    request.emplace("id",
                    service::JsonValue(args.intOption("--id", 1)));
    const double freq = args.numberOption("--freq", 0.0);
    if (freq > 0.0)
        request.emplace("freqGHz", service::JsonValue(freq));
    const int steps = args.intOption("--steps", 0);
    if (steps > 0)
        request.emplace("steps", service::JsonValue(steps));
    const double dt = args.numberOption("--dt", 0.0);
    if (dt > 0.0)
        request.emplace("dtSeconds", service::JsonValue(dt));
    const double proc_cap = args.numberOption("--proc-cap", 0.0);
    if (proc_cap > 0.0)
        request.emplace("procCapC", service::JsonValue(proc_cap));
    const double dram_cap = args.numberOption("--dram-cap", 0.0);
    if (dram_cap > 0.0)
        request.emplace("dramCapC", service::JsonValue(dram_cap));

    service::JsonValue::Object overrides;
    while (const auto kv = args.option("--set")) {
        const auto eq = kv->find('=');
        if (eq == std::string::npos || eq == 0)
            args.die("--set expects KEY=VALUE, got '" + *kv + "'");
        overrides.insert_or_assign(
            kv->substr(0, eq),
            service::JsonValue(kv->substr(eq + 1)));
    }
    if (!overrides.empty())
        request.emplace("config",
                        service::JsonValue(std::move(overrides)));
    const double deadline_ms = args.numberOption("--deadline-ms", 0.0);
    const int retries = args.intOption("--retries", 0);
    args.finish();

    service::ClientOptions copts;
    copts.endpoint = endpoint;
    copts.retries = retries;
    copts.deadlineMs = deadline_ms;
    try {
        service::ServiceClient client(copts);
        // Rebuilt per attempt so each retry carries the budget that
        // remains, never the original full deadline.
        const service::CallResult r =
            client.call([&](double remaining_ms) {
                service::JsonValue::Object this_request = request;
                if (remaining_ms > 0.0)
                    this_request.insert_or_assign(
                        "deadline_ms",
                        service::JsonValue(remaining_ms));
                return service::JsonValue(std::move(this_request))
                    .dump();
            });
        switch (r.status) {
        case service::CallStatus::Ok:
            std::cout << r.line << "\n";
            return 0;
        case service::CallStatus::ErrorResponse:
            std::cout << r.line << "\n";
            return 1;
        case service::CallStatus::BudgetExhausted:
            std::cerr << "error: deadline of " << deadline_ms
                      << "ms exhausted after " << r.attempts
                      << " attempt(s)\n";
            return 1;
        case service::CallStatus::TransportFailure:
            break;
        }
        std::cerr << "error: " << r.message
                  << (retries > 0 ? " (retries exhausted)" : "")
                  << "\n";
        return 1;
    } catch (const Error &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
