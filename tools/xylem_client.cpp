/**
 * @file
 * xylem_client: one-shot command-line client for xylem_serve. Builds
 * a request from flags, sends it as one JSON line over the daemon's
 * Unix-domain socket, and prints the JSON response line.
 *
 * Examples:
 *   xylem_client --query steady --app FFT --freq 3.0
 *   xylem_client --query boost --app LU --set scheme=bank
 *   xylem_client --query transient --app Radix --steps 10 --dt 0.002
 *   xylem_client --query metrics
 *
 * Exit status: 0 when the response has "ok":true, 1 on an error
 * response or transport failure, 2 on usage errors.
 */

#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    bench::Args args(
        argc, argv,
        "  --socket PATH   daemon socket (default /tmp/xylem.sock)\n"
        "  --query TYPE    steady | transient | boost | metrics "
        "(default steady)\n"
        "  --app NAME      workload profile (required except metrics)\n"
        "  --freq GHZ      uniform core frequency (default 2.4)\n"
        "  --steps N       transient: implicit-Euler steps\n"
        "  --dt S          transient: step size in seconds\n"
        "  --proc-cap C    boost: processor temperature cap\n"
        "  --dram-cap C    boost: DRAM temperature cap\n"
        "  --set KEY=VALUE config override (repeatable; config_io "
        "keys)\n"
        "  --id N          correlation id echoed in the response\n");

    std::string socket_path = "/tmp/xylem.sock";
    if (const auto path = args.option("--socket"))
        socket_path = *path;

    service::JsonValue::Object request;
    request.emplace("query",
                    service::JsonValue(
                        args.option("--query").value_or("steady")));
    if (const auto app = args.option("--app"))
        request.emplace("app", service::JsonValue(*app));
    request.emplace("id",
                    service::JsonValue(args.intOption("--id", 1)));
    const double freq = args.numberOption("--freq", 0.0);
    if (freq > 0.0)
        request.emplace("freqGHz", service::JsonValue(freq));
    const int steps = args.intOption("--steps", 0);
    if (steps > 0)
        request.emplace("steps", service::JsonValue(steps));
    const double dt = args.numberOption("--dt", 0.0);
    if (dt > 0.0)
        request.emplace("dtSeconds", service::JsonValue(dt));
    const double proc_cap = args.numberOption("--proc-cap", 0.0);
    if (proc_cap > 0.0)
        request.emplace("procCapC", service::JsonValue(proc_cap));
    const double dram_cap = args.numberOption("--dram-cap", 0.0);
    if (dram_cap > 0.0)
        request.emplace("dramCapC", service::JsonValue(dram_cap));

    service::JsonValue::Object overrides;
    while (const auto kv = args.option("--set")) {
        const auto eq = kv->find('=');
        if (eq == std::string::npos || eq == 0)
            args.die("--set expects KEY=VALUE, got '" + *kv + "'");
        overrides.insert_or_assign(
            kv->substr(0, eq),
            service::JsonValue(kv->substr(eq + 1)));
    }
    if (!overrides.empty())
        request.emplace("config",
                        service::JsonValue(std::move(overrides)));
    args.finish();

    try {
        const service::FdGuard fd = service::connectUnix(socket_path);
        std::string frame =
            service::JsonValue(std::move(request)).dump();
        frame += '\n';
        if (!service::sendAll(fd.get(), frame)) {
            std::cerr << "error: daemon closed the connection\n";
            return 1;
        }
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        std::string line;
        const service::ReadStatus status = reader.next(line);
        if (status != service::ReadStatus::Frame) {
            std::cerr << "error: no response from daemon\n";
            return 1;
        }
        std::cout << line << "\n";
        const service::JsonValue response = service::parseJson(line);
        const service::JsonValue *ok = response.find("ok");
        return ok && ok->isBoolean() && ok->boolean() ? 0 : 1;
    } catch (const Error &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
