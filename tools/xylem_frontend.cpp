/**
 * @file
 * xylem_frontend: the scale-out router daemon. Listens on one
 * endpoint and fans requests out to N xylem_serve shards by
 * consistent-hashed scenarioKey (src/frontend/frontend.hpp), so a
 * fleet of shards answers exactly like one daemon — same wire
 * format, same typed errors, bit-identical payloads.
 *
 * Flags:
 *   --endpoint EP      listening endpoint: unix:/path, tcp:host:port
 *                      (port 0 = ephemeral, printed at startup), or a
 *                      bare path (default /tmp/xylem_frontend.sock)
 *   --shard EP         backend shard endpoint (repeat once per shard;
 *                      order defines ring identity — keep it stable
 *                      across restarts)
 *   --replicas N       virtual ring points per shard (default 64)
 *   --retries N        same-shard retries before failover (default 1)
 *   --health-interval S  shard health-probe period (default 0.5;
 *                      0 disables probing)
 *   --probe-timeout-ms MS  budget per health probe (default 1000)
 *   --write-timeout S  per-connection response write timeout
 *   --idle-timeout S   mid-frame idle (slow-loris) timeout
 *   --quiet            suppress status output
 *
 * Example (2-shard local fleet):
 *   xylem_serve --endpoint tcp:127.0.0.1:7431 &
 *   xylem_serve --endpoint tcp:127.0.0.1:7432 &
 *   xylem_frontend --endpoint tcp:127.0.0.1:7430 \
 *       --shard tcp:127.0.0.1:7431 --shard tcp:127.0.0.1:7432
 *   xylem_client --endpoint tcp:127.0.0.1:7430 --query steady --app FFT
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/signal.hpp"
#include "frontend/frontend.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    bench::Args args(
        argc, argv,
        "  --endpoint EP      listening endpoint (default "
        "/tmp/xylem_frontend.sock)\n"
        "  --shard EP         backend shard endpoint (repeatable, "
        "required)\n"
        "  --replicas N       ring points per shard (default 64)\n"
        "  --retries N        same-shard retries before failover "
        "(default 1)\n"
        "  --health-interval S  probe period (default 0.5; 0 = off)\n"
        "  --probe-timeout-ms MS  probe budget (default 1000)\n"
        "  --write-timeout S  response write timeout (default 10)\n"
        "  --idle-timeout S   mid-frame idle timeout (default 30)\n"
        "  --quiet            suppress status output\n");

    frontend::FrontendOptions opts;
    if (const auto ep = args.option("--endpoint"))
        opts.endpoint = *ep;
    while (const auto shard = args.option("--shard"))
        opts.shards.push_back(*shard);
    opts.ringReplicas = static_cast<std::size_t>(args.intOption(
        "--replicas", static_cast<int>(opts.ringReplicas)));
    opts.retriesPerShard =
        args.intOption("--retries", opts.retriesPerShard);
    opts.healthIntervalSeconds = args.numberOption(
        "--health-interval", opts.healthIntervalSeconds);
    opts.healthProbeTimeoutMs = args.numberOption(
        "--probe-timeout-ms", opts.healthProbeTimeoutMs);
    opts.writeTimeoutSeconds =
        args.numberOption("--write-timeout", opts.writeTimeoutSeconds);
    opts.idleTimeoutSeconds =
        args.numberOption("--idle-timeout", opts.idleTimeoutSeconds);
    const bool quiet = args.flag("--quiet");
    args.finish();

    setVerbose(!quiet);
    ShutdownSignal::install();
    try {
        frontend::Frontend router(opts);
        return router.run();
    } catch (const Error &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
