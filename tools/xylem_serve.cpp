/**
 * @file
 * xylem_serve: the long-lived thermal simulation daemon. Listens on a
 * Unix-domain or TCP endpoint for newline-delimited JSON requests
 * (see service/protocol.hpp for the wire format), runs them through
 * the bounded queue + dedup + retry-ladder service, and drains
 * gracefully on SIGINT/SIGTERM (in-flight requests are answered,
 * telemetry is flushed, exit status 0).
 *
 * Flags:
 *   --endpoint EP      listening endpoint: unix:/path, tcp:host:port
 *                      (port 0 = ephemeral, printed at startup), or a
 *                      bare path (default /tmp/xylem.sock)
 *   --socket PATH      alias for --endpoint (legacy)
 *   --jobs N           solver worker threads (default 2)
 *   --queue-capacity N admission-control queue bound (default 64)
 *   --max-retries N    same-rung retries before escalation (default 1)
 *   --task-timeout S   per-request cooperative deadline (default none)
 *   --max-systems N    resident StackSystem cap (default 8)
 *   --solver-threads N intra-solve thread grant when the queue is
 *                      shallow; a deep queue pins solves to 1 thread
 *                      (default 0 = disabled, requests' own
 *                      solver.threads config applies)
 *   --json PATH        write Metrics::toJson() here on drain
 *   --journal PATH     crash-safe request journal (default off); on
 *                      restart the daemon reports exactly which
 *                      admitted requests the crash lost
 *   --write-timeout S  per-connection response write timeout
 *   --idle-timeout S   mid-frame idle (slow-loris) timeout
 *   --stall-threshold S  watchdog: busy-on-one-job stall threshold
 *   --quiet            suppress status output
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/signal.hpp"
#include "service/server.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    bench::Args args(
        argc, argv,
        "  --endpoint EP      listening endpoint (unix:/path, "
        "tcp:host:port, or bare path; default /tmp/xylem.sock)\n"
        "  --socket PATH      alias for --endpoint (legacy)\n"
        "  --jobs N           solver worker threads (default 2)\n"
        "  --queue-capacity N admission-control bound (default 64)\n"
        "  --max-retries N    same-rung retries (default 1)\n"
        "  --task-timeout S   per-request deadline in seconds\n"
        "  --max-systems N    resident StackSystem cap (default 8)\n"
        "  --solver-threads N intra-solve threads on a shallow queue "
        "(default 0 = off)\n"
        "  --json PATH        write drain-time metrics JSON to PATH\n"
        "  --journal PATH     crash-safe request journal (default "
        "off)\n"
        "  --write-timeout S  response write timeout (default 10)\n"
        "  --idle-timeout S   mid-frame idle timeout (default 30)\n"
        "  --stall-threshold S  watchdog stall threshold (default "
        "30)\n"
        "  --quiet            suppress status output\n");

    service::ServerOptions opts;
    if (const auto ep = args.option("--endpoint"))
        opts.endpoint = *ep;
    if (const auto path = args.option("--socket"))
        opts.endpoint = *path;
    opts.workers = args.intOption("--jobs", opts.workers);
    opts.queueCapacity = static_cast<std::size_t>(args.intOption(
        "--queue-capacity", static_cast<int>(opts.queueCapacity)));
    opts.engine.maxRetries =
        args.intOption("--max-retries", opts.engine.maxRetries);
    opts.engine.taskTimeoutSeconds = args.numberOption(
        "--task-timeout", opts.engine.taskTimeoutSeconds);
    opts.engine.maxResidentSystems = static_cast<std::size_t>(
        args.intOption("--max-systems",
                       static_cast<int>(opts.engine.maxResidentSystems)));
    opts.engine.solverThreads =
        args.intOption("--solver-threads", opts.engine.solverThreads);
    if (const auto path = args.option("--json"))
        opts.metricsJsonPath = *path;
    if (const auto path = args.option("--journal"))
        opts.journalPath = *path;
    opts.writeTimeoutSeconds =
        args.numberOption("--write-timeout", opts.writeTimeoutSeconds);
    opts.idleTimeoutSeconds =
        args.numberOption("--idle-timeout", opts.idleTimeoutSeconds);
    opts.stallThresholdSeconds = args.numberOption(
        "--stall-threshold", opts.stallThresholdSeconds);
    const bool quiet = args.flag("--quiet");
    args.finish();

    setVerbose(!quiet);
    // SIGINT/SIGTERM request the graceful drain instead of killing the
    // process; syscalls return EINTR so the poll loops notice quickly.
    ShutdownSignal::install();
    try {
        service::Server server(opts);
        return server.run();
    } catch (const Error &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
