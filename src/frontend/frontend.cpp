#include "frontend/frontend.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/signal.hpp"
#include "runtime/metrics.hpp"
#include "service/json.hpp"

namespace xylem::frontend {

using service::CallResult;
using service::CallStatus;
using service::JsonValue;

namespace {

/** One request's remaining end-to-end budget, measured from arrival
 *  at the frontend. Returns 0 when no deadline was set. */
double
remainingMs(double deadline_ms,
            std::chrono::steady_clock::time_point arrival)
{
    if (deadline_ms <= 0.0)
        return 0.0;
    const double spent =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - arrival)
            .count();
    return deadline_ms - spent;
}

} // namespace

const char *
toString(ShardState s)
{
    switch (s) {
    case ShardState::Up:
        return "up";
    case ShardState::NotReady:
        return "not-ready";
    case ShardState::Down:
        return "down";
    }
    return "unknown";
}

Frontend::Frontend(FrontendOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.shards.size(), opts_.ringReplicas)
{
    if (opts_.shards.empty())
        raise(ErrorCode::Config,
              "frontend needs at least one --shard endpoint");
    // Validate every endpoint string now: a typo is a startup Config
    // error, not a per-request transport failure later.
    listen_endpoint_ = service::parseEndpoint(opts_.endpoint);
    shards_.reserve(opts_.shards.size());
    for (const std::string &ep : opts_.shards) {
        service::parseEndpoint(ep);
        auto shard = std::make_unique<Shard>();
        shard->endpoint = ep;
        shards_.push_back(std::move(shard));
    }
}

Frontend::~Frontend()
{
    requestStop();
    if (started_)
        drain();
}

bool
Frontend::stopRequested() const
{
    return stop_.load(std::memory_order_relaxed) ||
           ShutdownSignal::requested();
}

void
Frontend::start()
{
    if (started_)
        return;
    listener_ = service::listenEndpoint(listen_endpoint_);
    bound_endpoint_ =
        service::boundEndpoint(listener_, listen_endpoint_).str();
    prober_exit_.store(false, std::memory_order_relaxed);
    if (opts_.healthIntervalSeconds > 0.0)
        prober_ = std::thread([this] { proberLoop(); });
    started_ = true;
    inform("frontend on ", bound_endpoint_, " routing ",
           shards_.size(), " shards (", opts_.ringReplicas,
           " ring points each)");
}

int
Frontend::run()
{
    start();
    acceptLoop();
    drain();
    return 0;
}

void
Frontend::acceptLoop()
{
    auto &accepted =
        runtime::Metrics::global().counter("frontend.connections");
    while (!stopRequested()) {
        pollfd pfd = {};
        pfd.fd = listener_.get();
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            warn("frontend accept poll failed: ",
                 std::strerror(errno));
            break;
        }
        if (pr == 0) {
            reapConnections(/*join_all=*/false);
            continue;
        }
        service::FdGuard fd(
            ::accept(listener_.get(), nullptr, nullptr));
        if (!fd.valid()) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("frontend accept failed: ", std::strerror(errno));
            break;
        }
        accepted.increment();
        if (listen_endpoint_.kind == service::TransportKind::Tcp)
            service::setTcpNoDelay(fd.get());
        auto conn = std::make_shared<Connection>();
        conn->fd = std::move(fd);
        {
            std::lock_guard<std::mutex> lock(connections_mutex_);
            connections_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
}

void
Frontend::readerLoop(const std::shared_ptr<Connection> &conn)
{
    service::LineReader reader(conn->fd.get(),
                               service::kMaxFrameBytes);
    if (opts_.idleTimeoutSeconds > 0.0)
        reader.setFrameTimeout(
            static_cast<int>(opts_.idleTimeoutSeconds * 1000.0));
    std::string frame;
    for (bool open = true; open;) {
        const service::ReadStatus status =
            reader.next(frame, [this] { return stopRequested(); });
        switch (status) {
        case service::ReadStatus::Frame:
            handleFrame(conn, frame);
            break;
        case service::ReadStatus::Oversized:
            writeLine(conn,
                      service::formatErrorResponse(
                          0, ErrorCode::Protocol,
                          "request frame exceeds " +
                              std::to_string(
                                  service::kMaxFrameBytes) +
                              " bytes"));
            break;
        case service::ReadStatus::Truncated:
            writeLine(conn,
                      service::formatErrorResponse(
                          0, ErrorCode::Protocol,
                          "connection closed inside a frame "
                          "(missing newline terminator)"));
            open = false;
            break;
        case service::ReadStatus::Reset:
            runtime::Metrics::global()
                .counter("frontend.conn_reset")
                .increment();
            open = false;
            break;
        case service::ReadStatus::Idle:
            runtime::Metrics::global()
                .counter("frontend.idle_timeouts")
                .increment();
            open = false;
            break;
        case service::ReadStatus::Eof:
        case service::ReadStatus::Stopped:
        case service::ReadStatus::Error:
            open = false;
            break;
        }
    }
    conn->done.store(true, std::memory_order_release);
}

void
Frontend::handleFrame(const std::shared_ptr<Connection> &conn,
                      const std::string &frame)
{
    auto &metrics = runtime::Metrics::global();
    metrics.counter("frontend.requests").increment();
    service::Request req;
    try {
        // The same strict parse the shards run: a malformed frame is
        // rejected here with the identical typed error, and the parse
        // yields the scenarioKey the ring routes by.
        req = service::parseRequest(frame);
    } catch (const Error &e) {
        metrics.counter("frontend.protocol_errors").increment();
        writeLine(conn,
                  service::formatErrorResponse(0, e.code(), e.what()));
        return;
    } catch (const std::exception &e) {
        metrics.counter("frontend.protocol_errors").increment();
        writeLine(conn, service::formatErrorResponse(
                            0, ErrorCode::Unknown, e.what()));
        return;
    }
    if (req.query == service::QueryType::Metrics) {
        answerMetrics(conn, req.id);
        return;
    }
    if (req.query == service::QueryType::Health) {
        answerHealth(conn, req.id);
        return;
    }
    routeSolve(conn, frame, req);
}

void
Frontend::routeSolve(const std::shared_ptr<Connection> &conn,
                     const std::string &frame,
                     const service::Request &req)
{
    auto &metrics = runtime::Metrics::global();
    const auto arrival = std::chrono::steady_clock::now();
    const std::string key = service::scenarioKey(req);
    const std::vector<std::size_t> order = ring_.preference(key);

    std::string last_failure = "no shard reachable";
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        Shard &shard = *shards_[order[rank]];
        const auto state = static_cast<ShardState>(
            shard.state.load(std::memory_order_relaxed));
        if (state != ShardState::Up) {
            last_failure = "shard " + shard.endpoint + " is " +
                           std::string(toString(state));
            continue; // skipped shard: the next rank takes its keys
        }
        const double left = remainingMs(req.deadlineMs, arrival);
        if (req.deadlineMs > 0.0 && left <= 0.0) {
            metrics.counter("frontend.deadline_expired").increment();
            writeLine(conn,
                      service::formatErrorResponse(
                          req.id, ErrorCode::DeadlineExceeded,
                          "deadline expired at the frontend before a "
                          "shard answered"));
            return;
        }
        const CallResult r = callShard(shard, frame, req, left);
        if (r.status == CallStatus::Ok ||
            r.status == CallStatus::ErrorResponse) {
            if (rank != 0)
                metrics.counter("frontend.rerouted").increment();
            metrics.counter("frontend.forwarded").increment();
            // The shard's bytes, verbatim — ok payloads and typed
            // errors alike pass through unmodified.
            writeLine(conn, r.line);
            return;
        }
        if (r.status == CallStatus::BudgetExhausted) {
            metrics.counter("frontend.deadline_expired").increment();
            writeLine(conn,
                      service::formatErrorResponse(
                          req.id, ErrorCode::DeadlineExceeded,
                          "deadline expired awaiting shard " +
                              shard.endpoint));
            return;
        }
        // Transport failure after the per-shard retries: demote the
        // shard (the prober revives it) and fail over along the ring.
        shard.state.store(static_cast<int>(ShardState::Down),
                          std::memory_order_relaxed);
        metrics.counter("frontend.shard_down").increment();
        last_failure = shard.endpoint + ": " + r.message;
    }
    metrics.counter("frontend.unavailable").increment();
    writeLine(conn, service::formatErrorResponse(
                        req.id, ErrorCode::Unavailable,
                        "no backend shard available (" + last_failure +
                            ")"));
}

CallResult
Frontend::callShard(Shard &shard, const std::string &frame,
                    const service::Request &req, double remaining_ms)
{
    std::unique_ptr<service::ServiceClient> client =
        checkoutConnection(shard);
    CallResult r;
    if (req.deadlineMs <= 0.0) {
        // No deadline: forward the client's exact bytes. Nothing to
        // rewrite, so bit-identity of the whole path is trivial.
        r = client->call(frame);
    } else {
        // Re-serialize with the budget remaining at each attempt.
        // parseRequest accepted this frame, so it is a JSON object;
        // the canonical dump (sorted keys, round-trip doubles)
        // preserves the scenarioKey exactly.
        const JsonValue original = service::parseJson(frame);
        r = client->call(
            [&original](double left) {
                JsonValue::Object obj = original.object();
                obj.insert_or_assign("deadline_ms", JsonValue(left));
                return JsonValue(std::move(obj)).dump();
            },
            remaining_ms);
    }
    if (r.status == CallStatus::Ok ||
        r.status == CallStatus::ErrorResponse)
        returnConnection(shard, std::move(client));
    // Failed connections are dropped here: a stream that lost frame
    // sync must never be reused.
    return r;
}

std::unique_ptr<service::ServiceClient>
Frontend::checkoutConnection(Shard &shard)
{
    {
        std::lock_guard<std::mutex> lock(shard.poolMutex);
        if (!shard.pool.empty()) {
            auto client = std::move(shard.pool.back());
            shard.pool.pop_back();
            return client;
        }
    }
    service::ClientOptions copts;
    copts.endpoint = shard.endpoint;
    copts.retries = opts_.retriesPerShard;
    copts.backoffBaseMs = 20.0;
    copts.backoffCapMs = 500.0;
    copts.backoffSalt = fnv1a(shard.endpoint);
    copts.keepAlive = true;
    return std::make_unique<service::ServiceClient>(copts);
}

void
Frontend::returnConnection(Shard &shard,
                           std::unique_ptr<service::ServiceClient> c)
{
    std::lock_guard<std::mutex> lock(shard.poolMutex);
    shard.pool.push_back(std::move(c));
}

void
Frontend::answerMetrics(const std::shared_ptr<Connection> &conn,
                        std::uint64_t id)
{
    // Merged view: the frontend's own metrics object is the base, and
    // every counter a shard reports is summed in — so aggregate
    // counters (service.solves, service.dedup_hits, ...) read the
    // same through the frontend as the sum over the shards. Shard
    // histograms are not merged (quantiles do not sum); the
    // per-shard metrics verb remains available directly.
    JsonValue merged =
        service::parseJson(runtime::Metrics::global().toJson());
    JsonValue::Object merged_obj = merged.object();
    JsonValue::Object counters;
    if (const JsonValue *own = merged.find("counters"))
        if (own->isObject())
            counters = own->object();

    int reporting = 0;
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::unique_ptr<service::ServiceClient> client =
            checkoutConnection(shard);
        const CallResult r = client->call(
            [id](double) {
                return "{\"id\":" + std::to_string(id) +
                       ",\"query\":\"metrics\"}";
            },
            opts_.healthProbeTimeoutMs);
        if (r.status != CallStatus::Ok) {
            continue; // unreachable shard: its counters are absent
        }
        returnConnection(shard, std::move(client));
        ++reporting;
        const JsonValue resp = service::parseJson(r.line);
        const JsonValue *m = resp.find("metrics");
        const JsonValue *c = m ? m->find("counters") : nullptr;
        if (!c || !c->isObject())
            continue;
        for (const auto &[name, value] : c->object()) {
            if (!value.isNumber())
                continue;
            const auto it = counters.find(name);
            const double prior =
                it != counters.end() && it->second.isNumber()
                    ? it->second.number()
                    : 0.0;
            counters.insert_or_assign(
                name, JsonValue(prior + value.number()));
        }
    }
    merged_obj.insert_or_assign("counters",
                                JsonValue(std::move(counters)));
    merged_obj.insert_or_assign(
        "shards_reporting",
        JsonValue(static_cast<double>(reporting)));
    merged_obj.insert_or_assign(
        "shard_count",
        JsonValue(static_cast<double>(shards_.size())));
    writeLine(conn,
              service::formatMetricsResponse(
                  id, JsonValue(std::move(merged_obj)).dump()));
}

void
Frontend::answerHealth(const std::shared_ptr<Connection> &conn,
                       std::uint64_t id)
{
    // Answered from the prober's view — never by fanning out inline,
    // so a hung shard cannot block the question "is the frontend up?".
    JsonValue::Array shard_list;
    int up = 0;
    for (const auto &shard_ptr : shards_) {
        const auto state = static_cast<ShardState>(
            shard_ptr->state.load(std::memory_order_relaxed));
        up += state == ShardState::Up ? 1 : 0;
        JsonValue::Object entry;
        entry.emplace("endpoint", JsonValue(shard_ptr->endpoint));
        entry.emplace("state", JsonValue(toString(state)));
        shard_list.push_back(JsonValue(std::move(entry)));
    }
    JsonValue::Object resp;
    resp.emplace("id", JsonValue(static_cast<double>(id)));
    resp.emplace("ok", JsonValue(true));
    resp.emplace("query", JsonValue("health"));
    // Mirrors the shard health response's top-level "ready" flag, so
    // probes treat frontend and shard endpoints interchangeably.
    resp.emplace("ready", JsonValue(up > 0));
    resp.emplace("frontend", JsonValue(true));
    resp.emplace("upShards", JsonValue(static_cast<double>(up)));
    resp.emplace("shards", JsonValue(std::move(shard_list)));
    writeLine(conn, JsonValue(std::move(resp)).dump());
}

void
Frontend::proberLoop()
{
    const auto interval =
        std::chrono::duration<double>(opts_.healthIntervalSeconds);
    auto next = std::chrono::steady_clock::now();
    while (!prober_exit_.load(std::memory_order_relaxed)) {
        // Sleep in short slices so drain() never waits a full period.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next)
            continue;
        next = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(interval);
        probeAllShards();
    }
}

void
Frontend::probeAllShards()
{
    auto &metrics = runtime::Metrics::global();
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::unique_ptr<service::ServiceClient> client =
            checkoutConnection(shard);
        const CallResult r = client->call(
            [](double) {
                return std::string(
                    "{\"id\":0,\"query\":\"health\"}");
            },
            opts_.healthProbeTimeoutMs);
        ShardState state = ShardState::Down;
        if (r.status == CallStatus::Ok) {
            returnConnection(shard, std::move(client));
            const JsonValue resp = service::parseJson(r.line);
            const JsonValue *ready = resp.find("ready");
            state = ready && ready->isBoolean() && ready->boolean()
                        ? ShardState::Up
                        : ShardState::NotReady;
        } else if (r.status == CallStatus::ErrorResponse) {
            // It answers but cannot serve: alive, not routable.
            returnConnection(shard, std::move(client));
            state = ShardState::NotReady;
        } else {
            metrics.counter("frontend.probe_failures").increment();
        }
        shard.state.store(static_cast<int>(state),
                          std::memory_order_relaxed);
        metrics.counter("frontend.health_probes").increment();
    }
}

bool
Frontend::writeLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line)
{
    const int timeout_ms =
        opts_.writeTimeoutSeconds > 0.0
            ? static_cast<int>(opts_.writeTimeoutSeconds * 1000.0)
            : 0;
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    std::string framed = line;
    framed += '\n';
    const service::SendStatus status =
        service::sendAllTimed(conn->fd.get(), framed, timeout_ms);
    if (status == service::SendStatus::Ok)
        return true;
    auto &metrics = runtime::Metrics::global();
    if (status == service::SendStatus::Timeout) {
        metrics.counter("frontend.write_timeouts").increment();
        ::shutdown(conn->fd.get(), SHUT_RDWR);
    } else {
        metrics.counter("frontend.write_failures").increment();
    }
    return false;
}

void
Frontend::reapConnections(bool join_all)
{
    std::vector<std::shared_ptr<Connection>> reaped;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        auto keep = connections_.begin();
        for (auto &conn : connections_) {
            if (join_all || conn->done.load(std::memory_order_acquire))
                reaped.push_back(std::move(conn));
            else
                *keep++ = std::move(conn);
        }
        connections_.erase(keep, connections_.end());
    }
    for (auto &conn : reaped)
        if (conn->reader.joinable())
            conn->reader.join();
}

void
Frontend::drain()
{
    if (!started_)
        return;
    started_ = false;
    stop_.store(true, std::memory_order_relaxed);

    listener_.reset();
    if (listen_endpoint_.kind == service::TransportKind::Unix &&
        !listen_endpoint_.path.empty())
        ::unlink(listen_endpoint_.path.c_str());

    reapConnections(/*join_all=*/true);

    prober_exit_.store(true, std::memory_order_relaxed);
    if (prober_.joinable())
        prober_.join();

    for (const auto &shard_ptr : shards_) {
        std::lock_guard<std::mutex> lock(shard_ptr->poolMutex);
        shard_ptr->pool.clear();
    }
    auto &metrics = runtime::Metrics::global();
    inform("frontend drained: ",
           metrics.counter("frontend.forwarded").value(),
           " forwarded, ",
           metrics.counter("frontend.rerouted").value(),
           " rerouted, ",
           metrics.counter("frontend.unavailable").value(),
           " unavailable");
}

} // namespace xylem::frontend
