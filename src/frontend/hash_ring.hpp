/**
 * @file
 * Consistent-hash ring for scenario-affine sharding.
 *
 * The scale-out frontend routes each request by its scenarioKey, so
 * every shard sees a stable slice of the scenario space: its
 * StackSystem LRU, dedup map, and warm caches stay hot for exactly
 * the scenarios it owns. A plain `hash % N` would reshuffle nearly
 * every key when N changes; the consistent-hash ring moves only
 * ~1/N of the keys when a shard joins or leaves, which is what keeps
 * cache locality through resizes.
 *
 * Determinism contract: assignment is a pure function of the ordered
 * shard list and the key — FNV-1a (plus a fixed avalanche mixer) over
 * "index#replica" and over the key, no RNG, no time, no pointer
 * values — so every process
 * (frontend, tests, a future second frontend replica) computes the
 * same owner for the same key. The ring never performs I/O; shard
 * health is the frontend's concern, expressed by asking for the full
 * preference order and skipping unhealthy entries.
 */

#ifndef XYLEM_FRONTEND_HASH_RING_HPP
#define XYLEM_FRONTEND_HASH_RING_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace xylem::frontend {

/** FNV-1a 64-bit — the ring's only hash (stable across platforms). */
std::uint64_t fnv1a(std::string_view text);

class HashRing
{
  public:
    /**
     * Build a ring over shards 0..shard_count-1, each contributing
     * `replicas` virtual points (more replicas = better balance at
     * O(replicas · shards) build cost; 64 keeps the max/mean load
     * ratio under ~1.35 for 2..16 shards).
     */
    explicit HashRing(std::size_t shard_count,
                      std::size_t replicas = 64);

    std::size_t shardCount() const { return shard_count_; }

    /** The shard owning `key`: the first ring point at or clockwise
     *  of the key's hash. */
    std::size_t owner(std::string_view key) const;

    /**
     * Full failover order for `key`: the owner first, then each
     * remaining shard in the order the clockwise walk first meets
     * them. Every shard appears exactly once; the frontend takes the
     * first healthy one, so a down shard's keys spread over its ring
     * successors instead of piling onto one neighbour.
     */
    std::vector<std::size_t> preference(std::string_view key) const;

  private:
    struct Point
    {
        std::uint64_t hash;
        std::size_t shard;
    };

    /** First ring index at or clockwise of `h` (wraps past the end). */
    std::size_t firstAt(std::uint64_t h) const;

    std::size_t shard_count_;
    std::vector<Point> ring_; ///< sorted by hash
};

} // namespace xylem::frontend

#endif // XYLEM_FRONTEND_HASH_RING_HPP
