#include "frontend/hash_ring.hpp"

#include <algorithm>
#include <string>

namespace xylem::frontend {

std::uint64_t
fnv1a(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

/**
 * Finalizing mixer (splitmix64). Raw FNV-1a of short, similar strings
 * ("0#1", "0#2", ...) leaves the high bits — the ones that decide ring
 * position — strongly correlated, which clusters a shard's points and
 * ruins balance. The mixer avalanches every input bit into every
 * output bit; it is a fixed pure function, so the determinism
 * contract (same owner in every process) is unchanged.
 */
std::uint64_t
mix64(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

} // namespace

HashRing::HashRing(std::size_t shard_count, std::size_t replicas)
    : shard_count_(shard_count)
{
    if (shard_count_ == 0)
        return;
    ring_.reserve(shard_count_ * replicas);
    for (std::size_t s = 0; s < shard_count_; ++s)
        for (std::size_t r = 0; r < replicas; ++r) {
            // "index#replica": stable across processes, independent
            // of endpoint spelling (a shard keeps its keys whether it
            // listens on unix: or tcp:).
            const std::string label =
                std::to_string(s) + '#' + std::to_string(r);
            ring_.push_back(Point{mix64(fnv1a(label)), s});
        }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.shard < b.shard;
              });
}

std::size_t
HashRing::firstAt(std::uint64_t h) const
{
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t v) { return p.hash < v; });
    return it == ring_.end()
               ? 0 // wrap: the smallest point owns the top arc
               : static_cast<std::size_t>(it - ring_.begin());
}

std::size_t
HashRing::owner(std::string_view key) const
{
    return ring_.empty() ? 0
                         : ring_[firstAt(mix64(fnv1a(key)))].shard;
}

std::vector<std::size_t>
HashRing::preference(std::string_view key) const
{
    std::vector<std::size_t> order;
    if (ring_.empty())
        return order;
    order.reserve(shard_count_);
    std::vector<bool> seen(shard_count_, false);
    std::size_t i = firstAt(mix64(fnv1a(key)));
    for (std::size_t walked = 0;
         walked < ring_.size() && order.size() < shard_count_;
         ++walked, i = (i + 1) % ring_.size()) {
        const std::size_t shard = ring_[i].shard;
        if (!seen[shard]) {
            seen[shard] = true;
            order.push_back(shard);
        }
    }
    return order;
}

} // namespace xylem::frontend
