/**
 * @file
 * Scale-out frontend: a thin router that makes N xylem_serve shards
 * look like one daemon on one endpoint.
 *
 * Routing. Every solve request (steady/transient/boost) is keyed by
 * its scenarioKey and routed over the consistent-hash ring
 * (hash_ring.hpp), so a scenario always lands on the same shard —
 * that shard's dedup map, resident-StackSystem LRU, and warm caches
 * stay hot for exactly its slice of the scenario space. Because the
 * engine's determinism contract makes every shard compute
 * bit-identical results for the same request, rerouting changes
 * WHERE a request is solved, never WHAT it answers.
 *
 * Forwarding preserves bytes. A request without a deadline is
 * forwarded verbatim — the exact frame the client sent. A request
 * with deadline_ms is re-serialized once per attempt with the budget
 * REMAINING (canonical JSON: sorted keys, round-trip doubles), so the
 * shard never works past the point the client gave up. Response
 * frames travel back verbatim, typed errors included — the frontend
 * never rewrites a shard's answer.
 *
 * Shard health. A prober thread issues the `health` verb to every
 * shard on a fixed period: ok+ready = Up, ok+not-ready (draining or
 * stalled workers) = NotReady, no answer = Down. Requests skip
 * non-Up shards along the ring's preference order (counted in
 * frontend.rerouted when the owner was skipped or failed); a
 * transport failure mid-forward demotes the shard to Down on the
 * spot. When no shard can take a request, the client gets the typed
 * "unavailable" error — admitted requests are answered, never
 * silently dropped.
 *
 * Fan-out verbs. `metrics` queries every shard and answers with the
 * shard counters SUMMED plus the frontend's own counters (so a
 * counter like service.dedup_hits reads the same through the
 * frontend as the sum over shards); `health` answers from the
 * prober's view — ready iff at least one shard is Up — with a
 * per-shard state list.
 *
 * Concurrency. One accept loop, one reader thread per client
 * connection; each request is forwarded synchronously on its reader
 * thread (responses stay in request order per connection), so
 * cross-request concurrency equals client connections — the same
 * model the load generator drives. Per-shard connections are pooled
 * and checked out exclusively; any transport failure discards the
 * connection instead of risking a desynchronized frame stream.
 */

#ifndef XYLEM_FRONTEND_FRONTEND_HPP
#define XYLEM_FRONTEND_FRONTEND_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "frontend/hash_ring.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace xylem::frontend {

struct FrontendOptions
{
    /** Endpoint the frontend listens on (socket.hpp grammar). */
    std::string endpoint = "unix:/tmp/xylem_frontend.sock";
    /** Backend shard endpoints, in ring order. */
    std::vector<std::string> shards;
    /** Virtual points per shard on the consistent-hash ring. */
    std::size_t ringReplicas = 64;
    /** Same-shard retries (with backoff) before failing over. */
    int retriesPerShard = 1;
    /** Health-prober period; 0 disables probing (shards then only
     *  change state through on-path demotion). */
    double healthIntervalSeconds = 0.5;
    /** Budget for one health probe round-trip. */
    double healthProbeTimeoutMs = 1000.0;
    /** Per-connection response write timeout; 0 waits forever. */
    double writeTimeoutSeconds = 10.0;
    /** Mid-frame idle (slow-loris) timeout; 0 disables. */
    double idleTimeoutSeconds = 30.0;
};

/** Prober/on-path view of one shard. */
enum class ShardState
{
    Up,       ///< answered the probe ready (or not yet contradicted)
    NotReady, ///< answers but reports draining/stalled workers
    Down,     ///< unreachable (probe or forward failed)
};

const char *toString(ShardState s);

class Frontend
{
  public:
    explicit Frontend(FrontendOptions opts);
    ~Frontend();
    Frontend(const Frontend &) = delete;
    Frontend &operator=(const Frontend &) = delete;

    /** Bind the listener and start the health prober. Idempotent. */
    void start();

    /** Serve until requestStop(); drains and returns 0. */
    int run();

    /** Ask the accept loop to exit; run() then drains. Thread-safe. */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /** Canonical endpoint actually bound (resolves tcp port 0).
     *  Valid after start(). */
    const std::string &boundEndpoint() const { return bound_endpoint_; }

    const FrontendOptions &options() const { return opts_; }

  private:
    struct Connection
    {
        service::FdGuard fd;
        std::mutex writeMutex;
        std::thread reader;
        std::atomic<bool> done{false};
    };

    /** One backend shard: health state + exclusive connection pool. */
    struct Shard
    {
        std::string endpoint;
        std::atomic<int> state{static_cast<int>(ShardState::Up)};
        std::mutex poolMutex;
        std::vector<std::unique_ptr<service::ServiceClient>> pool;
    };

    bool stopRequested() const;
    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::string &frame);
    /** Route a solve request along the ring's preference order. */
    void routeSolve(const std::shared_ptr<Connection> &conn,
                    const std::string &frame,
                    const service::Request &req);
    /** One shard attempt (pooled connection, per-shard retries). */
    service::CallResult callShard(Shard &shard,
                                  const std::string &frame,
                                  const service::Request &req,
                                  double remaining_ms);
    void answerMetrics(const std::shared_ptr<Connection> &conn,
                       std::uint64_t id);
    void answerHealth(const std::shared_ptr<Connection> &conn,
                      std::uint64_t id);
    void proberLoop();
    void probeAllShards();
    bool writeLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);
    void reapConnections(bool join_all);
    void drain();

    std::unique_ptr<service::ServiceClient> checkoutConnection(
        Shard &shard);
    /** Return a still-healthy connection to its shard's pool. */
    void returnConnection(Shard &shard,
                          std::unique_ptr<service::ServiceClient> c);

    FrontendOptions opts_;
    HashRing ring_;
    std::vector<std::unique_ptr<Shard>> shards_;
    service::FdGuard listener_;
    service::Endpoint listen_endpoint_{};
    std::string bound_endpoint_;
    bool started_ = false;
    std::atomic<bool> stop_{false};
    std::thread prober_;
    std::atomic<bool> prober_exit_{false};

    std::mutex connections_mutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
};

} // namespace xylem::frontend

#endif // XYLEM_FRONTEND_FRONTEND_HPP
