#include "power/mcpat_lite.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace xylem::power {

double
ProcPower::coreTotal(std::size_t core) const
{
    return coreDynamic[core].total() + coreLeakage[core] +
           l2Dynamic[core] + l2Leakage[core];
}

double
ProcPower::total() const
{
    double t = busDynamic + uncoreLeakage;
    for (std::size_t c = 0; c < coreDynamic.size(); ++c)
        t += coreTotal(c);
    for (double m : mcPower)
        t += m;
    return t;
}

McPatLite::McPatLite(EnergyParams energy, LeakageParams leakage,
                     DvfsTable dvfs)
    : energy_(energy), leakage_(leakage), dvfs_(std::move(dvfs))
{
}

McPatLite
McPatLite::standard()
{
    return McPatLite(EnergyParams{}, LeakageParams{},
                     DvfsTable::standard());
}

double
McPatLite::leakageTempScale(double t_c) const
{
    const double scale =
        1.0 + leakage_.tempCoefficient * (t_c - leakage_.tNominal);
    return std::max(scale, 0.5);
}

ProcPower
McPatLite::procPower(const cpu::SimResult &sim,
                     const std::vector<double> &core_freq_ghz,
                     const std::vector<double> *core_temps_c) const
{
    const std::size_t n = sim.cores.size();
    XYLEM_ASSERT(core_freq_ghz.size() == n,
                 "one frequency per core required");
    XYLEM_ASSERT(!core_temps_c || core_temps_c->size() == n,
                 "one temperature per core required");
    XYLEM_ASSERT(sim.seconds > 0.0, "simulation produced zero runtime");

    ProcPower out;
    out.coreDynamic.resize(n);
    out.coreLeakage.resize(n);
    out.l2Dynamic.resize(n);
    out.l2Leakage.resize(n);

    const double inv_t = 1.0 / sim.seconds;
    const auto &e = energy_;

    // Voltage of the (single) uncore domain: follow the fastest core.
    double max_freq = 0.0;
    for (double f : core_freq_ghz)
        max_freq = std::max(max_freq, f);
    const double v_uncore = dvfs_.voltageAt(max_freq);
    const double uncore_vscale2 =
        (v_uncore / e.vNom) * (v_uncore / e.vNom);

    for (std::size_t c = 0; c < n; ++c) {
        const auto &a = sim.cores[c];
        const double v = dvfs_.voltageAt(core_freq_ghz[c]);
        const double vs2 = (v / e.vNom) * (v / e.vNom);
        auto rate = [&](std::uint64_t count) {
            return static_cast<double>(count) * inv_t;
        };

        CoreDynamic &d = out.coreDynamic[c];
        d.fetch = rate(a.insts) * e.fetch * vs2;
        d.bpred = rate(a.branches) * e.bpred * vs2;
        d.decode = rate(a.insts) * e.decode * vs2;
        d.iq = rate(a.insts) * e.iq * vs2;
        d.rob = rate(a.insts) * e.rob * vs2;
        d.irf = rate(a.aluOps + a.loads + a.stores) * e.irf * vs2;
        d.frf = rate(a.fpuOps) * e.frf * vs2;
        d.alu = rate(a.aluOps) * e.alu * vs2;
        d.fpu = rate(a.fpuOps) * e.fpu * vs2;
        d.lsu = rate(a.loads + a.stores) * e.lsu * vs2;
        d.l1i = rate(a.l1iAccesses) * e.l1i * vs2;
        d.l1d = rate(a.l1dAccesses) * e.l1d * vs2;
        // The clock network burns power whenever the core is clocked;
        // idle cores are clock-gated down to a residual fraction.
        const double gate = a.hasThread ? 1.0 : e.idleClockFraction;
        d.clock = core_freq_ghz[c] * 1e9 * e.clockPerCycle * vs2 * gate;

        // The L1D is write-through (Table 3): every store also writes
        // the private L2 slice, in addition to demand fills.
        out.l2Dynamic[c] =
            rate(a.l2Accesses + a.stores) * e.l2 * uncore_vscale2;

        const double vleak = v / leakage_.vNom;
        const double tleak =
            core_temps_c ? leakageTempScale((*core_temps_c)[c]) : 1.0;
        out.coreLeakage[c] = leakage_.perCore * vleak * tleak;
        out.l2Leakage[c] = leakage_.perL2Slice * vleak * tleak;
    }

    out.busDynamic = static_cast<double>(sim.busTransactions) * inv_t *
                     e.bus * uncore_vscale2;
    out.mcPower.assign(sim.mcRequests.size(), 0.0);
    for (std::size_t m = 0; m < sim.mcRequests.size(); ++m) {
        out.mcPower[m] = e.mcStaticEach +
                         static_cast<double>(sim.mcRequests[m]) * inv_t *
                             e.mc * uncore_vscale2;
    }
    out.uncoreLeakage = leakage_.uncore * (v_uncore / leakage_.vNom);
    return out;
}

} // namespace xylem::power
