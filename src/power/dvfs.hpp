/**
 * @file
 * The DVFS voltage-frequency table of the evaluated processor:
 * 2.4 GHz (default) to 3.5 GHz in 100 MHz steps (§6.2), with a linear
 * voltage ramp typical of 32 nm parts. Commercial DVFS infrastructure
 * (§5.1) is abstracted as instantaneous operating-point changes.
 */

#ifndef XYLEM_POWER_DVFS_HPP
#define XYLEM_POWER_DVFS_HPP

#include <vector>

namespace xylem::power {

/** One DVFS operating point. */
struct OperatingPoint
{
    double freqGHz;
    double voltage;
};

/** The processor's DVFS table. */
class DvfsTable
{
  public:
    /**
     * Build a linear-V table from (f_min, v_min) to (f_max, v_max)
     * in `step_ghz` increments.
     */
    DvfsTable(double f_min, double f_max, double step_ghz, double v_min,
              double v_max);

    /** The paper's table: 2.4-3.5 GHz, 0.1 GHz steps, 0.90-0.95 V. */
    static DvfsTable standard();

    const std::vector<OperatingPoint> &points() const { return points_; }

    double minFrequency() const { return points_.front().freqGHz; }
    double maxFrequency() const { return points_.back().freqGHz; }
    double stepGHz() const { return step_; }

    /** Voltage at a frequency (linear interpolation, clamped). */
    double voltageAt(double freq_ghz) const;

    /** True iff `freq_ghz` matches a table point (within 1 MHz). */
    bool isValidFrequency(double freq_ghz) const;

    /** All frequencies in ascending order. */
    std::vector<double> frequencies() const;

    /** The largest table frequency <= freq_ghz (clamped to min). */
    double floorFrequency(double freq_ghz) const;

  private:
    std::vector<OperatingPoint> points_;
    double step_;
};

} // namespace xylem::power

#endif // XYLEM_POWER_DVFS_HPP
