/**
 * @file
 * McPAT-lite: an analytical per-block power model for the 32 nm
 * 8-core processor die (§6.3 of the paper uses McPAT; we use a
 * calibrated per-event energy model validated against the paper's
 * aggregate numbers — 8-24 W processor die at 2.4 GHz, cf. the Xeon
 * E3-1260L sanity check in §6.2).
 *
 * Dynamic power: per-event energies at nominal voltage, scaled by
 * (V/V0)^2; a per-cycle clock-network term per core.
 * Leakage: per-structure, scaled linearly with V (temperature
 * dependence deliberately not closed-loop; see DESIGN.md).
 */

#ifndef XYLEM_POWER_MCPAT_LITE_HPP
#define XYLEM_POWER_MCPAT_LITE_HPP

#include <array>
#include <vector>

#include "cpu/activity.hpp"
#include "power/dvfs.hpp"

namespace xylem::power {

/** Per-event dynamic energies at nominal voltage [J]. */
struct EnergyParams
{
    double vNom = 0.90;

    double fetch = 40e-12;
    double bpred = 15e-12;
    double decode = 35e-12;
    double iq = 40e-12;
    double rob = 36e-12;
    double irf = 30e-12;
    double frf = 35e-12;
    double alu = 75e-12;
    double fpu = 210e-12;
    double lsu = 45e-12;
    double l1i = 35e-12;
    double l1d = 55e-12;
    double l2 = 250e-12;
    double bus = 300e-12;
    double mc = 200e-12;

    /** Clock tree + pipeline latches, per core cycle [J]. */
    double clockPerCycle = 135e-12;
    /** Residual clock activity of an idle (clock-gated) core. */
    double idleClockFraction = 0.3;
    /** Static power per memory controller [W]. */
    double mcStaticEach = 0.15;
};

/** Leakage at nominal voltage [W]. */
struct LeakageParams
{
    double vNom = 0.90;
    double perCore = 0.45;
    double perL2Slice = 0.18;
    double uncore = 0.50; ///< bus, clocking, I/O

    /**
     * Linear temperature sensitivity of leakage per Kelvin around
     * `tNominal`: leak(T) = leak_nom * (1 + tempCoefficient *
     * (T - tNominal)), clamped below at 0.5x. 0 disables the
     * dependence (the default; the calibrated perCore/perL2Slice
     * values are quoted at the nominal operating temperature).
     * A typical 32 nm value is 0.01-0.02 / K.
     */
    double tempCoefficient = 0.0;
    double tNominal = 90.0; ///< [°C]
};

/** Per-core dynamic power, split by micro-architectural unit [W]. */
struct CoreDynamic
{
    double fetch = 0, bpred = 0, decode = 0, iq = 0, rob = 0;
    double irf = 0, frf = 0, alu = 0, fpu = 0, lsu = 0;
    double l1i = 0, l1d = 0;
    double clock = 0;

    double total() const
    {
        return fetch + bpred + decode + iq + rob + irf + frf + alu + fpu +
               lsu + l1i + l1d + clock;
    }
};

/** The processor-die power breakdown of one simulation run. */
struct ProcPower
{
    std::vector<CoreDynamic> coreDynamic; ///< per core
    std::vector<double> coreLeakage;      ///< per core [W]
    std::vector<double> l2Dynamic;        ///< per private L2 slice [W]
    std::vector<double> l2Leakage;
    double busDynamic = 0.0;
    std::vector<double> mcPower;          ///< per memory controller [W]
    double uncoreLeakage = 0.0;

    double coreTotal(std::size_t core) const;
    double total() const;
};

/** The McPAT-lite model. */
class McPatLite
{
  public:
    McPatLite(EnergyParams energy, LeakageParams leakage, DvfsTable dvfs);

    /** Model with default calibrated parameters. */
    static McPatLite standard();

    const DvfsTable &dvfs() const { return dvfs_; }
    const EnergyParams &energyParams() const { return energy_; }
    const LeakageParams &leakageParams() const { return leakage_; }

    /**
     * Compute the processor-die power breakdown for a simulation
     * result, with per-core frequencies [GHz].
     *
     * @param core_temps_c optional per-core temperatures [°C] for the
     *        leakage-temperature feedback (used by the electrothermal
     *        fixed-point loop of StackSystem); nullptr = nominal.
     */
    ProcPower procPower(const cpu::SimResult &sim,
                        const std::vector<double> &core_freq_ghz,
                        const std::vector<double> *core_temps_c
                        = nullptr) const;

    /** Leakage scale factor at temperature t_c [°C]. */
    double leakageTempScale(double t_c) const;

  private:
    EnergyParams energy_;
    LeakageParams leakage_;
    DvfsTable dvfs_;
};

} // namespace xylem::power

#endif // XYLEM_POWER_MCPAT_LITE_HPP
