#include "power/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace xylem::power {

DvfsTable::DvfsTable(double f_min, double f_max, double step_ghz,
                     double v_min, double v_max)
    : step_(step_ghz)
{
    XYLEM_ASSERT(f_min > 0 && f_max >= f_min && step_ghz > 0,
                 "invalid DVFS frequency range");
    XYLEM_ASSERT(v_min > 0 && v_max >= v_min, "invalid DVFS voltage range");
    const int steps =
        static_cast<int>(std::round((f_max - f_min) / step_ghz));
    for (int i = 0; i <= steps; ++i) {
        const double f = f_min + i * step_ghz;
        const double frac = steps ? static_cast<double>(i) / steps : 0.0;
        points_.push_back({f, v_min + frac * (v_max - v_min)});
    }
}

DvfsTable
DvfsTable::standard()
{
    return DvfsTable(2.4, 3.5, 0.1, 0.90, 0.95);
}

double
DvfsTable::voltageAt(double freq_ghz) const
{
    if (freq_ghz <= points_.front().freqGHz)
        return points_.front().voltage;
    if (freq_ghz >= points_.back().freqGHz)
        return points_.back().voltage;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (freq_ghz <= points_[i].freqGHz) {
            const auto &lo = points_[i - 1];
            const auto &hi = points_[i];
            const double frac =
                (freq_ghz - lo.freqGHz) / (hi.freqGHz - lo.freqGHz);
            return lo.voltage + frac * (hi.voltage - lo.voltage);
        }
    }
    return points_.back().voltage;
}

bool
DvfsTable::isValidFrequency(double freq_ghz) const
{
    return std::any_of(points_.begin(), points_.end(),
                       [freq_ghz](const OperatingPoint &p) {
                           return std::abs(p.freqGHz - freq_ghz) < 1e-3;
                       });
}

std::vector<double>
DvfsTable::frequencies() const
{
    std::vector<double> fs;
    fs.reserve(points_.size());
    for (const auto &p : points_)
        fs.push_back(p.freqGHz);
    return fs;
}

double
DvfsTable::floorFrequency(double freq_ghz) const
{
    double best = points_.front().freqGHz;
    for (const auto &p : points_) {
        if (p.freqGHz <= freq_ghz + 1e-9)
            best = p.freqGHz;
    }
    return best;
}

} // namespace xylem::power
