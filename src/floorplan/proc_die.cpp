#include "floorplan/proc_die.hpp"

#include "common/logging.hpp"

namespace xylem::floorplan {

UnitKind
unitKindFromBlockName(const std::string &name)
{
    if (name.rfind("L2_", 0) == 0)
        return UnitKind::L2;
    if (name.rfind("MC", 0) == 0)
        return UnitKind::MemController;
    if (name.rfind("BUS", 0) == 0)
        return UnitKind::CoherenceBus;
    if (name == "TSVBUS")
        return UnitKind::TsvBus;

    const auto dot = name.find('.');
    XYLEM_ASSERT(dot != std::string::npos, "unparseable block name '", name,
                 "'");
    const std::string unit = name.substr(dot + 1);
    if (unit == "FETCH")
        return UnitKind::Fetch;
    if (unit == "BPRED")
        return UnitKind::BPred;
    if (unit == "DEC")
        return UnitKind::Decode;
    if (unit == "IQ")
        return UnitKind::IssueQueue;
    if (unit == "ROB")
        return UnitKind::Rob;
    if (unit == "IRF")
        return UnitKind::IntRF;
    if (unit == "FRF")
        return UnitKind::FpRF;
    if (unit == "ALU")
        return UnitKind::IntAlu;
    if (unit == "FPU")
        return UnitKind::Fpu;
    if (unit == "LSU")
        return UnitKind::Lsu;
    if (unit == "L1I")
        return UnitKind::L1I;
    if (unit == "L1D")
        return UnitKind::L1D;
    panic("unknown unit suffix in block name '", name, "'");
}

const char *
toString(UnitKind kind)
{
    switch (kind) {
      case UnitKind::Fetch: return "FETCH";
      case UnitKind::BPred: return "BPRED";
      case UnitKind::Decode: return "DEC";
      case UnitKind::IssueQueue: return "IQ";
      case UnitKind::Rob: return "ROB";
      case UnitKind::IntRF: return "IRF";
      case UnitKind::FpRF: return "FRF";
      case UnitKind::IntAlu: return "ALU";
      case UnitKind::Fpu: return "FPU";
      case UnitKind::Lsu: return "LSU";
      case UnitKind::L1I: return "L1I";
      case UnitKind::L1D: return "L1D";
      case UnitKind::L2: return "L2";
      case UnitKind::CoherenceBus: return "BUS";
      case UnitKind::MemController: return "MC";
      case UnitKind::TsvBus: return "TSVBUS";
    }
    return "?";
}

namespace {

/**
 * Lay out the internal blocks of one core.
 *
 * The core is organised in four horizontal strips; the strip with the
 * hottest units (FPU/ALU/LSU) sits at the *outer* die edge so that
 * known hotspots are spatially separated (§6.3), and the L1 caches
 * face the central LLC band.
 *
 * @param fp        floorplan to add blocks to
 * @param core_name e.g. "C3"
 * @param r         the core rectangle
 * @param outer_is_bottom true for bottom-row cores (their outer edge
 *                  is the die bottom; strips are mirrored vertically)
 * @param mirror_x  true for right-half cores: unit order within each
 *                  strip is mirrored so the FPU faces the nearer
 *                  vertical die edge (hotspots are pushed outward,
 *                  keeping them spatially separated, §6.3)
 */
void
layoutCore(Floorplan &fp, const std::string &core_name,
           const geometry::Rect &r, bool outer_is_bottom, bool mirror_x)
{
    struct Strip
    {
        double frac;
        std::vector<std::pair<const char *, double>> units;
    };
    // Strips listed from the inner edge (facing the LLC) outwards.
    // The FPU — the worst hotspot — sits centred in the outer strip,
    // away from the die corners.
    const std::vector<Strip> strips = {
        {0.30, {{"L1I", 0.5}, {"L1D", 0.5}}},
        {0.20, {{"FETCH", 0.4}, {"DEC", 0.3}, {"BPRED", 0.3}}},
        {0.25, {{"IRF", 0.2}, {"IQ", 0.3}, {"ROB", 0.25}, {"FRF", 0.25}}},
        {0.25, {{"ALU", 0.35}, {"FPU", 0.3}, {"LSU", 0.35}}},
    };

    double y_off = 0.0;
    for (const auto &strip : strips) {
        const double sh = strip.frac * r.h;
        // Inner edge is the bottom of the rect for top-row cores.
        const double sy = outer_is_bottom
                              ? r.top() - y_off - sh
                              : r.y + y_off;
        double x_off = 0.0;
        for (const auto &[unit, wf] : strip.units) {
            const double sw = wf * r.w;
            const double sx = mirror_x ? r.right() - x_off - sw
                                       : r.x + x_off;
            fp.add(core_name + "." + unit, geometry::Rect{sx, sy, sw, sh});
            x_off += sw;
        }
        y_off += sh;
    }
}

} // namespace

ProcDie
buildProcessorDie(const ProcDieSpec &spec)
{
    XYLEM_ASSERT(spec.numCores == 8,
                 "the Fig. 6 floorplan is defined for 8 cores");
    const double w = spec.dieWidth;
    const double h = spec.dieHeight;

    ProcDie die;
    die.spec = spec;
    die.plan = Floorplan("proc", geometry::Rect{0, 0, w, h});

    // I/O pad ring around the logic area.
    const double ring = spec.ioRingWidth;
    XYLEM_ASSERT(ring >= 0.0 && 2.0 * ring < std::min(w, h) / 2.0,
                 "I/O ring too wide for the die");
    if (ring > 0.0) {
        die.plan.add("IO.S", geometry::Rect{0, 0, w, ring});
        die.plan.add("IO.N", geometry::Rect{0, h - ring, w, ring});
        die.plan.add("IO.W", geometry::Rect{0, ring, ring, h - 2 * ring});
        die.plan.add("IO.E",
                     geometry::Rect{w - ring, ring, ring, h - 2 * ring});
    }
    const double iw = w - 2.0 * ring; // inner (logic) area
    const double ih = h - 2.0 * ring;

    // Vertical partition of the logic area: bottom core row, central
    // band, top core row.
    const double core_row_h = 0.325 * ih;
    const double band_h = ih - 2.0 * core_row_h;
    const double band_y = ring + core_row_h;
    die.centerBand = geometry::Rect{ring, band_y, iw, band_h};

    const double core_w = iw / 4.0;

    // Cores 1..4 on the top row, 5..8 on the bottom row.
    die.cores.resize(8);
    for (int i = 0; i < 4; ++i) {
        die.cores[i] = geometry::Rect{ring + i * core_w,
                                      h - ring - core_row_h, core_w,
                                      core_row_h};
        die.cores[4 + i] =
            geometry::Rect{ring + i * core_w, ring, core_w, core_row_h};
    }
    for (int i = 0; i < 8; ++i) {
        const bool bottom_row = i >= 4;
        const bool right_half = (i % 4) >= 2;
        layoutCore(die.plan, "C" + std::to_string(i + 1), die.cores[i],
                   bottom_row, right_half);
    }
    die.innerCores = {1, 2, 5, 6};
    die.outerCores = {0, 3, 4, 7};

    // Central band: L2 slices adjacent to their cores, and a middle
    // strip with the coherence bus, memory controllers and TSV bus.
    const double mid_h = 0.8e-3 * (h / 8e-3); // scale with die size
    const double l2_h = (band_h - mid_h) / 2.0;
    const double mid_y = band_y + l2_h;
    for (int i = 0; i < 4; ++i) {
        // L2s of the top-row cores sit directly below them...
        die.plan.add("L2_" + std::to_string(i + 1),
                     geometry::Rect{ring + i * core_w, mid_y + mid_h,
                                    core_w, l2_h});
        // ...and the bottom-row L2s directly above their cores.
        die.plan.add("L2_" + std::to_string(i + 5),
                     geometry::Rect{ring + i * core_w, band_y, core_w,
                                    l2_h});
    }

    // Middle strip: MC0 | MC1 | TSV-bus column | MC2 | MC3.
    const double bus_col_w = 0.3 * w;      // 2.4 mm
    const double mc_w = (iw - bus_col_w) / 4.0;
    const double bus_x = ring + 2.0 * mc_w;
    for (int i = 0; i < 2; ++i) {
        die.plan.add("MC" + std::to_string(i),
                     geometry::Rect{ring + i * mc_w, mid_y, mc_w, mid_h});
        die.plan.add("MC" + std::to_string(i + 2),
                     geometry::Rect{bus_x + bus_col_w + i * mc_w, mid_y,
                                    mc_w, mid_h});
    }
    // The TSV bus proper: 48 blocks of 5x5 TSVs, 100 µm each, laid out
    // 24x2 -> 2.4 mm x 0.2 mm at the very centre of the die.
    const double bus_th = 0.2e-3 * (h / 8e-3);
    const double bus_y = mid_y + (mid_h - bus_th) / 2.0;
    die.tsvBus = geometry::Rect{bus_x, bus_y, bus_col_w, bus_th};
    die.plan.add("TSVBUS", die.tsvBus);
    // Coherence-bus wiring above and below the TSV bus.
    die.plan.add("BUS0", geometry::Rect{bus_x, mid_y, bus_col_w,
                                        bus_y - mid_y});
    die.plan.add("BUS1", geometry::Rect{bus_x, bus_y + bus_th, bus_col_w,
                                        mid_y + mid_h - (bus_y + bus_th)});
    return die;
}

} // namespace xylem::floorplan
