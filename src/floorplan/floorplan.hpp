/**
 * @file
 * Block-level floorplans, in the spirit of ArchFP: a named die extent
 * plus a set of named rectangular blocks. Floorplans drive both power
 * painting (architectural blocks of the processor die, banks of the
 * DRAM dies) and conductivity painting (TSV bus, TTSV sites).
 */

#ifndef XYLEM_FLOORPLAN_FLOORPLAN_HPP
#define XYLEM_FLOORPLAN_FLOORPLAN_HPP

#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace xylem::floorplan {

/** One named rectangular block of a floorplan. */
struct Block
{
    std::string name;
    geometry::Rect rect;
};

/**
 * A die floorplan: an extent and a list of non-overlapping blocks.
 */
class Floorplan
{
  public:
    /** Create an empty floorplan covering `extent`. */
    Floorplan(std::string name, geometry::Rect extent);

    const std::string &name() const { return name_; }
    const geometry::Rect &extent() const { return extent_; }
    const std::vector<Block> &blocks() const { return blocks_; }

    /**
     * Add a block. The block must lie within the die extent
     * (within a small tolerance).
     */
    void add(std::string block_name, const geometry::Rect &rect);

    /** Find a block by exact name; nullptr if absent. */
    const Block *find(const std::string &block_name) const;

    /** Find a block by exact name; throws if absent. */
    const Block &at(const std::string &block_name) const;

    /** All blocks whose name starts with `prefix`. */
    std::vector<const Block *> withPrefix(const std::string &prefix) const;

    /** Fraction of the die extent covered by blocks. */
    double coverage() const;

    /**
     * True iff no two blocks overlap by more than `tol_area` (m²).
     * Quadratic check; floorplans here have at most a few hundred
     * blocks.
     */
    bool overlapFree(double tol_area = 1e-12) const;

  private:
    std::string name_;
    geometry::Rect extent_;
    std::vector<Block> blocks_;
};

} // namespace xylem::floorplan

#endif // XYLEM_FLOORPLAN_FLOORPLAN_HPP
