set(XYLEM_FLOORPLAN_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/floorplan.cpp
    ${CMAKE_CURRENT_LIST_DIR}/proc_die.cpp
    ${CMAKE_CURRENT_LIST_DIR}/dram_die.cpp)
