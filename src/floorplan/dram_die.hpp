/**
 * @file
 * The Wide I/O DRAM slice floorplan (Fig. 1a / Fig. 5): a 4x4 grid of
 * banks (one rank per channel, four banks per rank, one quadrant per
 * channel), peripheral-logic strips between the banks, a wider
 * peripheral stripe across the die centre holding the 1200-TSV bus,
 * and the candidate TTSV sites used by the Xylem placement schemes:
 *
 *  - 20 single-TTSV sites at the bank vertices (Bank Surround),
 *  - 4 double-TTSV sites in the centre stripe (8 TTSVs; the ones
 *    Iso Count removes),
 *  - 8 sites close to the projected processor cores (the Bank
 *    Surround Enhanced additions).
 */

#ifndef XYLEM_FLOORPLAN_DRAM_DIE_HPP
#define XYLEM_FLOORPLAN_DRAM_DIE_HPP

#include <vector>

#include "floorplan/floorplan.hpp"

namespace xylem::floorplan {

/** Parameters of a Wide I/O DRAM slice. */
struct DramDieSpec
{
    double dieWidth = 8e-3;       ///< 8 mm
    double dieHeight = 8e-3;
    double vStripWidth = 0.2e-3;  ///< vertical peripheral strips (and edges)
    double hStripHeight = 0.2e-3; ///< horizontal peripheral strips (and edges)
    double centerStripeHeight = 0.8e-3; ///< wider central stripe
};

/** The built DRAM slice: floorplan plus TTSV site candidates. */
struct DramDie
{
    Floorplan plan{"dram", geometry::Rect{0, 0, 1, 1}};
    DramDieSpec spec;

    /** 16 bank rectangles, index = channel * 4 + bank. */
    std::vector<geometry::Rect> banks;
    /** The wide peripheral stripe across the die centre. */
    geometry::Rect centerStripe;
    /** The 1200-TSV bus footprint (matches the processor die). */
    geometry::Rect tsvBus;

    /** 20 bank-vertex TTSV sites (centres), one TTSV each. */
    std::vector<geometry::Point> vertexSites;
    /** 8 centre-stripe TTSV sites (4 points x 2 TTSVs). */
    std::vector<geometry::Point> stripeSites;
    /** 8 near-core TTSV sites (the `banke` additions). */
    std::vector<geometry::Point> coreSites;
};

/** Build the Wide I/O DRAM slice floorplan. */
DramDie buildDramDie(const DramDieSpec &spec = {});

} // namespace xylem::floorplan

#endif // XYLEM_FLOORPLAN_DRAM_DIE_HPP
