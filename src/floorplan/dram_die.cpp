#include "floorplan/dram_die.hpp"

#include <string>

#include "common/logging.hpp"
#include "floorplan/proc_die.hpp"

namespace xylem::floorplan {

DramDie
buildDramDie(const DramDieSpec &spec)
{
    const double w = spec.dieWidth;
    const double h = spec.dieHeight;
    const double vs = spec.vStripWidth;
    const double hs = spec.hStripHeight;

    DramDie die;
    die.spec = spec;
    die.plan = Floorplan("dram", geometry::Rect{0, 0, w, h});

    // Horizontal partition: edge strip | 4 bank columns | edge strip,
    // with 3 interior vertical peripheral strips.
    const double bank_w = (w - 2.0 * vs - 3.0 * vs) / 4.0;
    double col_x[4];
    double vstrip_x[5]; // including both edge strips
    vstrip_x[0] = 0.0;
    {
        double x = vs;
        for (int c = 0; c < 4; ++c) {
            col_x[c] = x;
            x += bank_w;
            vstrip_x[c + 1] = x;
            if (c < 3)
                x += vs;
        }
    }

    // Vertical partition: edge strip | 2 bank rows | centre stripe |
    // 2 bank rows | edge strip, with 2 interior horizontal strips.
    const double bank_h =
        (h - 2.0 * hs - 2.0 * hs - spec.centerStripeHeight) / 4.0;
    double row_y[4];
    row_y[0] = hs;
    const double hstrip0_y = row_y[0] + bank_h;
    row_y[1] = hstrip0_y + hs;
    const double stripe_y = row_y[1] + bank_h;
    row_y[2] = stripe_y + spec.centerStripeHeight;
    const double hstrip1_y = row_y[2] + bank_h;
    row_y[3] = hstrip1_y + hs;
    const double top_edge_y = row_y[3] + bank_h;
    die.centerStripe =
        geometry::Rect{0, stripe_y, w, spec.centerStripeHeight};

    // Banks: one channel per quadrant, 2x2 banks per quadrant.
    // Channel 0 = bottom-left, 1 = bottom-right, 2 = top-left,
    // 3 = top-right. Bank b within a quadrant: bit 0 = column,
    // bit 1 = row.
    die.banks.resize(16);
    for (int ch = 0; ch < 4; ++ch) {
        const int qc = (ch & 1) ? 2 : 0;  // quadrant base column
        const int qr = (ch & 2) ? 2 : 0;  // quadrant base row
        for (int b = 0; b < 4; ++b) {
            const int c = qc + (b & 1);
            const int r = qr + ((b >> 1) & 1);
            const geometry::Rect rect{col_x[c], row_y[r], bank_w, bank_h};
            die.banks[ch * 4 + b] = rect;
            die.plan.add("CH" + std::to_string(ch) + ".B" + std::to_string(b),
                         rect);
        }
    }

    // Peripheral-logic strips. The 5 vertical strips (2 edge + 3
    // interior) run the full die height; horizontal bands are broken
    // into bank-width pieces so the plan stays overlap-free.
    for (int s = 0; s < 5; ++s) {
        die.plan.add("PERI.V" + std::to_string(s),
                     geometry::Rect{vstrip_x[s], 0, vs, h});
    }
    auto add_hband = [&](const std::string &name, double y, double sh) {
        for (int c = 0; c < 4; ++c) {
            die.plan.add(name + "." + std::to_string(c),
                         geometry::Rect{col_x[c], y, bank_w, sh});
        }
    };
    add_hband("PERI.E0", 0.0, hs);           // bottom edge strip
    add_hband("PERI.H0", hstrip0_y, hs);
    add_hband("STRIPE", stripe_y, spec.centerStripeHeight);
    add_hband("PERI.H1", hstrip1_y, hs);
    add_hband("PERI.E1", top_edge_y, hs);    // top edge strip

    // TSV bus: same 2.4 mm x 0.2 mm footprint and position as on the
    // processor die (they are vertically aligned by construction). It
    // overlaps the STRIPE pieces geometrically; it is tracked as an
    // over-paint rectangle rather than a plan block.
    const double bus_w = 0.3 * w;
    const double bus_h = 0.2e-3 * (h / 8e-3);
    die.tsvBus = geometry::Rect{(w - bus_w) / 2.0,
                                stripe_y + (spec.centerStripeHeight - bus_h) /
                                               2.0,
                                bus_w, bus_h};

    // --- TTSV candidate sites -------------------------------------
    // 20 bank-vertex singles: 5 vertex columns x 4 vertex rows
    // (the centre-stripe row is handled separately).
    const double vx[5] = {vs / 2.0, vstrip_x[1] + vs / 2.0,
                          vstrip_x[2] + vs / 2.0, vstrip_x[3] + vs / 2.0,
                          w - vs / 2.0};
    const double vy[4] = {hs / 2.0, hstrip0_y + hs / 2.0,
                          hstrip1_y + hs / 2.0, h - hs / 2.0};
    for (double y : vy)
        for (double x : vx)
            die.vertexSites.push_back({x, y});

    // 4 centre-stripe double sites (8 TTSVs), clustered towards the
    // die centre, above and below the TSV bus.
    const double stripe_mid = stripe_y + spec.centerStripeHeight / 2.0;
    const double dy = spec.centerStripeHeight * 0.3125; // 0.25 mm at 0.8 mm
    const double sx[4] = {0.375 * w, 0.45 * w, 0.55 * w, 0.625 * w};
    for (double x : sx) {
        die.stripeSites.push_back({x, stripe_mid - dy});
        die.stripeSites.push_back({x, stripe_mid + dy});
    }

    // 8 near-core sites for `banke`: in the edge peripheral strips,
    // flanking the FPUs of the *inner* cores (two TTSVs per inner
    // core). This is the co-designed placement of §4.2 — the memory
    // vendor uses the processor hotspot locations — and it is what
    // gives the inner cores their enhanced vertical conductivity,
    // which the λ-aware techniques of §5.2 exploit (the outer,
    // corner cores already sit next to the bank-vertex edge sites).
    // The FPUs sit centred in each core's outer strip (away from the
    // die corners, so hotspots are separated, §6.3). Compute the
    // inner cores' FPU x positions from the processor floorplan
    // defaults (co-design: the memory vendor knows the core layout).
    const ProcDieSpec proc;
    const double core_w = (proc.dieWidth - 2.0 * proc.ioRingWidth) / 4.0;
    const double fpu_inner_l = proc.ioRingWidth + 1.5 * core_w;
    const double fpu_inner_r = w - fpu_inner_l;
    const double flank = 0.2 * core_w;
    for (double x : {fpu_inner_l - flank, fpu_inner_l + flank,
                     fpu_inner_r - flank, fpu_inner_r + flank}) {
        die.coreSites.push_back({x, hs / 2.0});
        die.coreSites.push_back({x, h - hs / 2.0});
    }

    XYLEM_ASSERT(die.vertexSites.size() == 20 &&
                     die.stripeSites.size() == 8 && die.coreSites.size() == 8,
                 "TTSV site counts must match the paper's schemes");
    return die;
}

} // namespace xylem::floorplan
