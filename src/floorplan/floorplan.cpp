#include "floorplan/floorplan.hpp"

#include "common/logging.hpp"

namespace xylem::floorplan {

Floorplan::Floorplan(std::string name, geometry::Rect extent)
    : name_(std::move(name)), extent_(extent)
{
    XYLEM_ASSERT(extent_.area() > 0.0, "floorplan extent must be positive");
}

void
Floorplan::add(std::string block_name, const geometry::Rect &rect)
{
    XYLEM_ASSERT(rect.area() > 0.0, "block '", block_name,
                 "' must have positive area");
    // Allow a tiny tolerance for floating-point construction noise.
    const geometry::Rect slack = extent_.inflated(1e-9);
    XYLEM_ASSERT(slack.contains(rect), "block '", block_name,
                 "' exceeds die extent");
    blocks_.push_back(Block{std::move(block_name), rect});
}

const Block *
Floorplan::find(const std::string &block_name) const
{
    for (const auto &b : blocks_)
        if (b.name == block_name)
            return &b;
    return nullptr;
}

const Block &
Floorplan::at(const std::string &block_name) const
{
    const Block *b = find(block_name);
    if (!b)
        fatal("no block named '", block_name, "' in floorplan ", name_);
    return *b;
}

std::vector<const Block *>
Floorplan::withPrefix(const std::string &prefix) const
{
    std::vector<const Block *> out;
    for (const auto &b : blocks_)
        if (b.name.rfind(prefix, 0) == 0)
            out.push_back(&b);
    return out;
}

double
Floorplan::coverage() const
{
    double covered = 0.0;
    for (const auto &b : blocks_)
        covered += b.rect.intersectionArea(extent_);
    return covered / extent_.area();
}

bool
Floorplan::overlapFree(double tol_area) const
{
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
            if (blocks_[i].rect.intersectionArea(blocks_[j].rect) > tol_area)
                return false;
        }
    }
    return true;
}

} // namespace xylem::floorplan
