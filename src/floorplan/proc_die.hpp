/**
 * @file
 * The processor die floorplan of Fig. 6: eight cores on the outside
 * (two rows of four), the private L2s — the last-level cache — in a
 * central band together with the coherence bus, the four Wide I/O
 * memory controllers and the TSV bus.
 *
 * Core numbering follows the paper: cores 1-4 left-to-right on the
 * top row, cores 5-8 on the bottom row. Cores 2, 3, 6 and 7 are the
 * *inner* cores exploited by the λ-aware techniques.
 */

#ifndef XYLEM_FLOORPLAN_PROC_DIE_HPP
#define XYLEM_FLOORPLAN_PROC_DIE_HPP

#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"

namespace xylem::floorplan {

/** Micro-architectural unit kinds, used to attach power to blocks. */
enum class UnitKind
{
    Fetch,
    BPred,
    Decode,
    IssueQueue,
    Rob,
    IntRF,
    FpRF,
    IntAlu,
    Fpu,
    Lsu,
    L1I,
    L1D,
    L2,
    CoherenceBus,
    MemController,
    TsvBus,
};

/** Parse the unit kind from a block name such as "C3.FPU" or "L2_4". */
UnitKind unitKindFromBlockName(const std::string &name);

/** Printable name of a unit kind. */
const char *toString(UnitKind kind);

/** Parameters of the processor die. */
struct ProcDieSpec
{
    double dieWidth = 8e-3;   ///< 8 mm (≈64 mm², §6.2)
    double dieHeight = 8e-3;
    int numCores = 8;         ///< must currently be 8 (two rows of 4)
    /**
     * Width of the I/O pad ring around the logic: cores are inset
     * from the die rim, as in commercial floorplans.
     */
    double ioRingWidth = 0.1e-3;
};

/** The built processor die: floorplan plus navigation helpers. */
struct ProcDie
{
    Floorplan plan{"proc", geometry::Rect{0, 0, 1, 1}};
    ProcDieSpec spec;

    /** Full core rectangles, index 0..7 for cores 1..8. */
    std::vector<geometry::Rect> cores;
    /** 0-based indices of the inner cores (2, 3, 6, 7). */
    std::vector<int> innerCores;
    /** 0-based indices of the outer cores (1, 4, 5, 8). */
    std::vector<int> outerCores;
    /** The 1200-TSV Wide I/O bus footprint at the die centre. */
    geometry::Rect tsvBus;
    /** The central band holding LLC, MCs and buses. */
    geometry::Rect centerBand;
};

/** Build the Fig. 6 processor die floorplan. */
ProcDie buildProcessorDie(const ProcDieSpec &spec = {});

} // namespace xylem::floorplan

#endif // XYLEM_FLOORPLAN_PROC_DIE_HPP
