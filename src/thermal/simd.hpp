/**
 * @file
 * Vectorisation pragma for the multi-RHS kernels.
 *
 * XYLEM_SIMD_LOOP marks the inner column loop of a batched kernel as
 * dependence-free so the compiler vectorises it under XYLEM_NATIVE
 * (the cmake option defines the macro alongside -march=native). The
 * lanes are independent right-hand sides — vectorising across columns
 * never reorders any single column's arithmetic, so the pragma is
 * semantics-preserving under the bit-identity contract. Without
 * XYLEM_NATIVE the macro is empty and the kernels stay portable
 * scalar code.
 */

#ifndef XYLEM_THERMAL_SIMD_HPP
#define XYLEM_THERMAL_SIMD_HPP

#if defined(XYLEM_NATIVE)
#if defined(__clang__)
#define XYLEM_SIMD_LOOP                                                    \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define XYLEM_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define XYLEM_SIMD_LOOP
#endif
#else
#define XYLEM_SIMD_LOOP
#endif

#endif // XYLEM_THERMAL_SIMD_HPP
