/**
 * @file
 * Text rendering of temperature fields: an ASCII heatmap of one layer
 * (for the examples and for eyeballing solver output) and a CSV dump
 * for external plotting.
 */

#ifndef XYLEM_THERMAL_HEATMAP_HPP
#define XYLEM_THERMAL_HEATMAP_HPP

#include <ostream>
#include <string>

#include "thermal/temperature.hpp"

namespace xylem::thermal {

/** Rendering options. */
struct HeatmapOptions
{
    std::size_t maxCols = 64;   ///< downsample wider grids to this
    bool showScale = true;      ///< print the min/max legend
    /** Gradient from coldest to hottest, one char per bucket. */
    std::string ramp = " .:-=+*#%@";
};

/**
 * Render one layer of a temperature field as an ASCII heatmap
 * (row 0 of the grid at the bottom, like the floorplans).
 */
void renderHeatmap(std::ostream &os, const TemperatureField &field,
                   std::size_t layer, const HeatmapOptions &opts = {});

/**
 * Dump one layer as CSV (nx columns x ny rows, row 0 first) for
 * external tools. Values are formatted with std::to_chars (shortest
 * round-trippable form), so the output is identical under any global
 * or stream-imbued locale. With `header` set, the first line labels
 * the columns `x0,...,x{nx-1}`.
 */
void writeCsv(std::ostream &os, const TemperatureField &field,
              std::size_t layer, bool header = false);

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_HEATMAP_HPP
