/**
 * @file
 * The multi-RHS (batched) solver path of GridModel (DESIGN.md §15).
 *
 * Every kernel here is the column-blocked twin of a solo kernel in
 * grid_model.cpp, operating on node-major interleaved blocks
 * (MultiVector layout: entry (i, k) at data[i*K + k]) with the column
 * loop innermost. The contract is bit-identity per column: a batched
 * kernel visits nodes, blocks, and reduction partials in exactly the
 * solo order, and every per-column expression mirrors the solo
 * expression's operand order and parenthesisation — so column k of a
 * batch solve is bit-for-bit the solo solve of right-hand side k,
 * at any batch size and any thread count. The column loop is what
 * vectorises (XYLEM_SIMD_LOOP): SIMD lanes are independent RHS, which
 * never reorders a single column's arithmetic.
 *
 * The CG driver runs the columns in lockstep: one fused matvec and
 * one preconditioner application serve all K columns per iteration
 * (reading the coefficient streams once instead of K times — the
 * bandwidth amortisation that makes batching pay), while each column
 * keeps its own scalar recurrences (alpha, beta, residual norms) and
 * freezes the moment its own convergence test passes, so per-column
 * iteration counts match solo too.
 */

#include "thermal/grid_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "thermal/mg/multigrid.hpp"
#include "thermal/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define XYLEM_RESTRICT __restrict__
#else
#define XYLEM_RESTRICT
#endif

namespace xylem::thermal {

namespace {

// The same fixed block sizes as the solo kernels (grid_model.cpp):
// the block structure depends only on the problem size, and every
// reduction sums per-block partials serially in ascending block
// order, per column.
constexpr std::size_t kDotBlock = 4096;
constexpr std::size_t kRowChunk = 16;
constexpr std::size_t kColChunk = 1024;

std::size_t
blockCount(std::size_t n, std::size_t block)
{
    return (n + block - 1) / block;
}

using runtime::ThreadPool;

/** R = B (cold start); per-column Σ b² into out[0..K). */
void
blockedCopyResidualMulti(const double *XYLEM_RESTRICT b,
                         double *XYLEM_RESTRICT r, std::size_t n,
                         std::size_t K, ThreadPool *pool, double *bs,
                         double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k) {
                const double v = b[base + k];
                r[base + k] = v;
                s[k] += v * v;
            }
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/** R = B - Q (warm start); per-column Σ b² into out[0..K). */
void
blockedInitResidualMulti(const double *XYLEM_RESTRICT b,
                         const double *XYLEM_RESTRICT q,
                         double *XYLEM_RESTRICT r, std::size_t n,
                         std::size_t K, ThreadPool *pool, double *bs,
                         double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k) {
                r[base + k] = b[base + k] - q[base + k];
                s[k] += b[base + k] * b[base + k];
            }
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/** Per-column Σ v² into out[0..K). */
void
blockedSumSqMulti(const double *XYLEM_RESTRICT v, std::size_t n,
                  std::size_t K, ThreadPool *pool, double *bs, double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k)
                s[k] += v[base + k] * v[base + k];
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/**
 * Per active column k: x += α_k p; r -= α_k q; the new Σ r² into
 * out[0..K). Frozen columns (active[k] false) are left untouched, but
 * their residual is re-summed in the same fixed order — bit-identical
 * to the value at freeze time — so out[] is valid for every column.
 * `active == nullptr` means all columns are active (the fast path the
 * column loop vectorises).
 */
void
blockedAxpyResidualMulti(const double *alpha, const bool *active,
                         const double *XYLEM_RESTRICT p,
                         const double *XYLEM_RESTRICT q,
                         double *XYLEM_RESTRICT x, double *XYLEM_RESTRICT r,
                         std::size_t n, std::size_t K, ThreadPool *pool,
                         double *bs, double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        if (!active) {
            for (std::size_t i = i0; i < i1; ++i) {
                const std::size_t base = i * K;
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k) {
                    x[base + k] += alpha[k] * p[base + k];
                    const double ri = r[base + k] - alpha[k] * q[base + k];
                    r[base + k] = ri;
                    s[k] += ri * ri;
                }
            }
        } else {
            for (std::size_t i = i0; i < i1; ++i) {
                const std::size_t base = i * K;
                for (std::size_t k = 0; k < K; ++k) {
                    if (active[k]) {
                        x[base + k] += alpha[k] * p[base + k];
                        const double ri =
                            r[base + k] - alpha[k] * q[base + k];
                        r[base + k] = ri;
                        s[k] += ri * ri;
                    } else {
                        const double ri = r[base + k];
                        s[k] += ri * ri;
                    }
                }
            }
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/** Z = R .* inv_diag (Jacobi); per-column r·z into out[0..K). */
void
blockedJacobiMulti(const double *XYLEM_RESTRICT r,
                   const double *XYLEM_RESTRICT inv_diag,
                   double *XYLEM_RESTRICT z, std::size_t n, std::size_t K,
                   ThreadPool *pool, double *bs, double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            const double inv = inv_diag[i];
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k) {
                const double zi = r[base + k] * inv;
                z[base + k] = zi;
                s[k] += r[base + k] * zi;
            }
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/** P = Z + β_k P. */
void
blockedUpdateDirectionMulti(const double *beta,
                            const double *XYLEM_RESTRICT z,
                            double *XYLEM_RESTRICT p, std::size_t n,
                            std::size_t K, ThreadPool *pool)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k)
                p[base + k] = z[base + k] + beta[k] * p[base + k];
        }
    });
}

/**
 * The blocked twin of fusedApplyRow: the identical per-cell stencil
 * expression, evaluated for K interleaved columns per cell. `dot`
 * accumulates the row's per-column x·y exactly like the solo row dot
 * (zeroed by the caller per row, added to the block partial after).
 */
void
fusedApplyRowMulti(std::size_t nx, std::size_t K,
                   const double *XYLEM_RESTRICT dg,
                   const double *XYLEM_RESTRICT ed,
                   const double *XYLEM_RESTRICT xc,
                   const double *XYLEM_RESTRICT xb,
                   const double *XYLEM_RESTRICT xa,
                   const double *XYLEM_RESTRICT xs,
                   const double *XYLEM_RESTRICT xn,
                   const double *XYLEM_RESTRICT gvd,
                   const double *XYLEM_RESTRICT gvu,
                   const double *XYLEM_RESTRICT gys,
                   const double *XYLEM_RESTRICT gyn,
                   const double *XYLEM_RESTRICT gx,
                   const double *XYLEM_RESTRICT rim,
                   const double *XYLEM_RESTRICT xp,
                   double *XYLEM_RESTRICT y, double *XYLEM_RESTRICT dot)
{
    if (nx == 1) {
        XYLEM_SIMD_LOOP
        for (std::size_t k = 0; k < K; ++k) {
            const double v = (dg[0] + ed[0]) * xc[k] -
                             (gvd[0] * xb[k] + gvu[0] * xa[k] +
                              gys[0] * xs[k] + gyn[0] * xn[k] +
                              rim[0] * xp[k]);
            y[k] = v;
            dot[k] += xc[k] * v;
        }
        return;
    }
    {
        // west edge: no x-1 neighbour
        XYLEM_SIMD_LOOP
        for (std::size_t k = 0; k < K; ++k) {
            const double v = (dg[0] + ed[0]) * xc[k] -
                             (gvd[0] * xb[k] + gvu[0] * xa[k] +
                              gys[0] * xs[k] + gyn[0] * xn[k] +
                              rim[0] * xp[k] + gx[0] * xc[K + k]);
            y[k] = v;
            dot[k] += xc[k] * v;
        }
    }
    for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
        const std::size_t o = ix * K;
        XYLEM_SIMD_LOOP
        for (std::size_t k = 0; k < K; ++k) {
            const double v =
                (dg[ix] + ed[ix]) * xc[o + k] -
                (gvd[ix] * xb[o + k] + gvu[ix] * xa[o + k] +
                 gys[ix] * xs[o + k] + gyn[ix] * xn[o + k] +
                 rim[ix] * xp[k] + gx[ix - 1] * xc[o - K + k] +
                 gx[ix] * xc[o + K + k]);
            y[o + k] = v;
            dot[k] += xc[o + k] * v;
        }
    }
    {
        // east edge: no x+1 neighbour
        const std::size_t ix = nx - 1;
        const std::size_t o = ix * K;
        XYLEM_SIMD_LOOP
        for (std::size_t k = 0; k < K; ++k) {
            const double v =
                (dg[ix] + ed[ix]) * xc[o + k] -
                (gvd[ix] * xb[o + k] + gvu[ix] * xa[o + k] +
                 gys[ix] * xs[o + k] + gyn[ix] * xn[o + k] +
                 rim[ix] * xp[k] + gx[ix - 1] * xc[o - K + k]);
            y[o + k] = v;
            dot[k] += xc[o + k] * v;
        }
    }
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

void
GridModel::prepareBatch(SolverWorkspace &w, std::size_t cols) const
{
    XYLEM_ASSERT(cols >= 1 && cols <= kMaxBatchRhs,
                 "prepareBatch: column count ", cols, " outside [1, ",
                 kMaxBatchRhs, "]");
    const std::size_t need = num_nodes_ * cols;
    const std::size_t blocks =
        std::max({blockCount(num_nodes_, kDotBlock),
                  num_layers_ * blockCount(ny_, kRowChunk),
                  blockCount(cells_, kColChunk)});
    if (w.bb_.size() < need) {
        w.bb_.resize(need);
        w.bx_.resize(need);
        w.br_.resize(need);
        w.bz_.resize(need);
        w.bp_.resize(need);
        w.bq_.resize(need);
    }
    if (w.batch_block_sums_.size() < blocks * cols)
        w.batch_block_sums_.resize(blocks * cols);
    w.batch_cols_ = cols;
    if (mg_)
        mg_->prepareBatchWorkspace(w, cols);
}

void
GridModel::fusedApplyMulti(const double *x, double *y, std::size_t cols,
                           const double *extra_diag,
                           runtime::ThreadPool *pool, double *dot_out,
                           double *block_sums) const
{
    const std::size_t K = cols;
    const std::size_t row_chunks = blockCount(ny_, kRowChunk);
    const std::size_t nblocks = num_layers_ * row_chunks;
    const double *zeros = zeros_.data();
    // Solo passes x_peri = 0.0 for layers without a periphery node;
    // the batched twin needs K zero lanes for the same products.
    const double zero_cols[kMaxBatchRhs] = {};
    ThreadPool::parallelFor(pool, nblocks, [&](std::size_t blk) {
        const std::size_t l = blk / row_chunks;
        const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
        const std::size_t iy1 = std::min(ny_, iy0 + kRowChunk);
        const std::size_t base = l * cells_;
        const double *xl = x + base * K;
        const double *gx_l = lat_x_[l].data();
        const double *gy_l = lat_y_[l].data();
        const bool below = l > 0;
        const bool above = l + 1 < num_layers_;
        const double *gvd_l = below ? vert_[l - 1].data() : zeros;
        const double *xb_l = below ? x + (base - cells_) * K : x;
        const double *gvu_l = above ? vert_[l].data() : zeros;
        const double *xa_l = above ? x + (base + cells_) * K : x;
        const bool rimmed = !rim_g_[l].empty();
        const double *rim_l = rimmed ? rim_g_[l].data() : zeros;
        const double *xp =
            rimmed
                ? x + static_cast<std::size_t>(periph_node_of_layer_[l]) * K
                : zero_cols;
        double sum[kMaxBatchRhs] = {};
        double rdot[kMaxBatchRhs];
        for (std::size_t iy = iy0; iy < iy1; ++iy) {
            const std::size_t roff = iy * nx_;
            const double *gys = iy > 0 ? gy_l + roff - nx_ : zeros;
            const double *xs = iy > 0 ? xl + (roff - nx_) * K : xl;
            // lat_y_ entries of the last row are already zero.
            const double *gyn = gy_l + roff;
            const double *xn = iy + 1 < ny_ ? xl + (roff + nx_) * K : xl;
            const double *edp =
                extra_diag ? extra_diag + base + roff : zeros;
            for (std::size_t k = 0; k < K; ++k)
                rdot[k] = 0.0;
            fusedApplyRowMulti(nx_, K, diag_.data() + base + roff, edp,
                               xl + roff * K, xb_l + roff * K,
                               xa_l + roff * K, xs, xn, gvd_l + roff,
                               gvu_l + roff, gys, gyn, gx_l + roff,
                               rim_l + roff, xp, y + (base + roff) * K,
                               rdot);
            for (std::size_t k = 0; k < K; ++k)
                sum[k] += rdot[k];
        }
        if (block_sums)
            for (std::size_t k = 0; k < K; ++k)
                block_sums[blk * K + k] = sum[k];
    });

    // Periphery tail, serial and in the solo's fixed gather order.
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const auto &p = periphery_[k];
        const double *xl = x + p.layer * cells_ * K;
        const double *rim = rim_g_[p.layer].data();
        double acc[kMaxBatchRhs] = {};
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            XYLEM_SIMD_LOOP
            for (std::size_t c = 0; c < K; ++c)
                acc[c] += rim[ix] * xl[ix * K + c];
        }
        for (std::size_t iy = 1; iy + 1 < ny_; ++iy) {
            const std::size_t cw = iy * nx_;
            XYLEM_SIMD_LOOP
            for (std::size_t c = 0; c < K; ++c)
                acc[c] += rim[cw] * xl[cw * K + c];
            if (nx_ > 1) {
                const std::size_t ce = iy * nx_ + nx_ - 1;
                XYLEM_SIMD_LOOP
                for (std::size_t c = 0; c < K; ++c)
                    acc[c] += rim[ce] * xl[ce * K + c];
            }
        }
        if (ny_ > 1) {
            const std::size_t roff = (ny_ - 1) * nx_;
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                XYLEM_SIMD_LOOP
                for (std::size_t c = 0; c < K; ++c)
                    acc[c] += rim[roff + ix] * xl[(roff + ix) * K + c];
            }
        }
        double d = diag_[p.node];
        if (extra_diag)
            d += extra_diag[p.node];
        const std::size_t pbase = p.node * K;
        for (std::size_t c = 0; c < K; ++c) {
            double v = d * x[pbase + c] - acc[c];
            if (k > 0)
                v -= periph_vert_[k - 1] * x[periphery_[k - 1].node * K + c];
            if (k + 1 < periphery_.size())
                v -= periph_vert_[k] * x[periphery_[k + 1].node * K + c];
            y[pbase + c] = v;
        }
    }

    if (dot_out) {
        for (std::size_t k = 0; k < K; ++k)
            dot_out[k] = 0.0;
        for (std::size_t blk = 0; blk < nblocks; ++blk)
            for (std::size_t k = 0; k < K; ++k)
                dot_out[k] += block_sums[blk * K + k];
        for (const auto &p : periphery_)
            for (std::size_t k = 0; k < K; ++k)
                dot_out[k] += x[p.node * K + k] * y[p.node * K + k];
    }
}

void
GridModel::applyBlocked(const MultiVector &x, MultiVector &y,
                        const std::vector<double> *extra_diag) const
{
    XYLEM_ASSERT(x.nodes() == num_nodes_,
                 "applyBlocked: wrong node count");
    if (y.nodes() != num_nodes_ || y.cols() != x.cols())
        y.resize(num_nodes_, x.cols());
    fusedApplyMulti(x.data(), y.data(), x.cols(),
                    extra_diag ? extra_diag->data() : nullptr, nullptr,
                    nullptr, nullptr);
}

void
GridModel::applyLineCachedMulti(const double *r, double *z,
                                std::size_t cols, SolverWorkspace &w,
                                runtime::ThreadPool *pool,
                                double *rz_out) const
{
    const std::size_t K = cols;
    const std::size_t L = num_layers_;
    const double *XYLEM_RESTRICT cp = w.line_cp_.data();
    const double *XYLEM_RESTRICT inv = w.line_inv_denom_.data();
    const std::size_t nchunks = blockCount(cells_, kColChunk);
    double *bs = w.batch_block_sums_.data();
    ThreadPool::parallelFor(pool, nchunks, [&](std::size_t chunk) {
        const std::size_t c0 = chunk * kColChunk;
        const std::size_t c1 = std::min(cells_, c0 + kColChunk);
        // Forward sweep, layer-major (solo order).
        for (std::size_t c = c0; c < c1; ++c) {
            const double ic = inv[c];
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k)
                z[c * K + k] = r[c * K + k] * ic;
        }
        for (std::size_t l = 1; l < L; ++l) {
            const double *g = vert_[l - 1].data();
            const std::size_t off = l * cells_;
            for (std::size_t c = c0; c < c1; ++c) {
                const double gc = g[c];
                const double ic = inv[off + c];
                const std::size_t hi = (off + c) * K;
                const std::size_t lo = (off - cells_ + c) * K;
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k)
                    z[hi + k] = (r[hi + k] + gc * z[lo + k]) * ic;
            }
        }
        // Back substitution with the per-column r·z reduction fused
        // in, top layer first then descending — the solo chunk order.
        double sum[kMaxBatchRhs] = {};
        {
            const std::size_t off = (L - 1) * cells_;
            for (std::size_t c = c0; c < c1; ++c) {
                const std::size_t o = (off + c) * K;
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k)
                    sum[k] += r[o + k] * z[o + k];
            }
        }
        for (std::size_t l = L - 1; l-- > 0;) {
            const std::size_t off = l * cells_;
            for (std::size_t c = c0; c < c1; ++c) {
                const double cpc = cp[off + c];
                const std::size_t o = (off + c) * K;
                const std::size_t oa = (off + cells_ + c) * K;
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k) {
                    const double v = z[o + k] - cpc * z[oa + k];
                    z[o + k] = v;
                    sum[k] += r[o + k] * v;
                }
            }
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[chunk * K + k] = sum[k];
    });
    double rz[kMaxBatchRhs] = {};
    for (std::size_t chunk = 0; chunk < nchunks; ++chunk)
        for (std::size_t k = 0; k < K; ++k)
            rz[k] += bs[chunk * K + k];
    // Periphery nodes: plain Jacobi.
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const std::size_t node = periphery_[k].node;
        const double invp = w.periph_inv_diag_[k];
        for (std::size_t c = 0; c < K; ++c) {
            const double v = r[node * K + c] * invp;
            z[node * K + c] = v;
            rz[c] += r[node * K + c] * v;
        }
    }
    if (rz_out)
        for (std::size_t k = 0; k < K; ++k)
            rz_out[k] = rz[k];
}

void
GridModel::solveMulti(std::size_t cols,
                      const std::vector<double> *extra_diag,
                      SolverWorkspace &w, const bool *x_is_zero,
                      SolveStats *stats) const
{
    const std::size_t K = cols;
    const std::size_t n = num_nodes_;
    using Clock = std::chrono::steady_clock;
    runtime::ThreadPool *pool = poolFor(w);
    const double *ed = extra_diag ? extra_diag->data() : nullptr;
    double *bs = w.batch_block_sums_.data();
    double *rv = w.br_.data();
    double *zv = w.bz_.data();
    double *pv = w.bp_.data();
    double *qv = w.bq_.data();
    double *xv = w.bx_.data();
    const double *bv = w.bb_.data();
    w.apply_seconds_ = 0.0;
    w.precond_seconds_ = 0.0;

    // The same task-context steering as the solo solve (grid_model.cpp)
    // so an escalated batch attempt behaves exactly like escalated solo
    // attempts would.
    const TaskContext *ctx = currentTaskContext();
    SolverKind kind = opts_.kind;
    Preconditioner pre = opts_.preconditioner;
    if (ctx && ctx->alternatePreconditioner()) {
        kind = SolverKind::CG;
        if (opts_.kind == SolverKind::Multigrid ||
            opts_.preconditioner == Preconditioner::Multigrid)
            pre = Preconditioner::VerticalLine;
        else
            pre = opts_.preconditioner == Preconditioner::VerticalLine
                      ? Preconditioner::Jacobi
                      : Preconditioner::VerticalLine;
    }
    if (!mg_ && (kind == SolverKind::Multigrid ||
                 pre == Preconditioner::Multigrid)) {
        kind = SolverKind::CG;
        pre = Preconditioner::VerticalLine;
    }
    XYLEM_ASSERT(kind == SolverKind::CG,
                 "solveMulti handles CG kinds only (the standalone "
                 "multigrid kind runs columns serially)");
    const bool use_mg = pre == Preconditioner::Multigrid;
    const bool line = pre == Preconditioner::VerticalLine;
    const bool forced_nonconvergence =
        ctx && ctx->forceCgNonConvergence && !ctx->denseSolve();
    const int max_iterations =
        forced_nonconvergence ? 0 : opts_.maxIterations;

    auto flushTimings = [&] {
        auto &metrics = runtime::Metrics::global();
        metrics.addTiming("solver.apply_seconds", w.apply_seconds_);
        metrics.addTiming("solver.precond_seconds", w.precond_seconds_);
        if (use_mg && w.mg_) {
            metrics.addTiming("solver.mg.cycle_seconds",
                              w.mg_->cycle_seconds);
            metrics.counter("solver.mg.cycles").add(w.mg_->cycles);
        }
    };

    if (use_mg && w.mg_) {
        w.mg_->cycle_seconds = 0.0;
        w.mg_->cycles = 0;
    }

    // Per-column scalar state, all in the solo recurrence order.
    double b_norm2[kMaxBatchRhs];
    double target2[kMaxBatchRhs];
    double r_norm2[kMaxBatchRhs];
    double rz[kMaxBatchRhs];
    double rz_next[kMaxBatchRhs];
    double pq[kMaxBatchRhs];
    double alpha[kMaxBatchRhs];
    double beta[kMaxBatchRhs];
    bool active[kMaxBatchRhs] = {};
    bool was_active[kMaxBatchRhs] = {};
    bool zero_rhs[kMaxBatchRhs] = {};

    bool all_cold = true;
    for (std::size_t k = 0; k < K; ++k)
        all_cold = all_cold && x_is_zero[k];
    if (all_cold) {
        // A·0 = 0 exactly, so R = B bit-identically — skip the mat-vec.
        blockedCopyResidualMulti(bv, rv, n, K, pool, bs, b_norm2);
    } else {
        // Mixed or warm batch. Cold columns' X is exactly zero, so
        // their Q lanes come out +0.0 and b - 0.0 ≡ b bitwise (also
        // for b = -0.0) — still bit-identical to the solo cold path.
        const auto t0 = Clock::now();
        fusedApplyMulti(xv, qv, K, ed, pool, nullptr, nullptr);
        w.apply_seconds_ += seconds(t0);
        blockedInitResidualMulti(bv, qv, rv, n, K, pool, bs, b_norm2);
    }

    bool any_live = false;
    for (std::size_t k = 0; k < K; ++k) {
        stats[k] = SolveStats{};
        if (b_norm2[k] == 0.0) {
            // Solo returns X = 0, converged, zero iterations.
            zero_rhs[k] = true;
            for (std::size_t i = 0; i < n; ++i)
                xv[i * K + k] = 0.0;
            stats[k].converged = true;
        } else {
            any_live = true;
        }
        target2[k] = opts_.tolerance * opts_.tolerance * b_norm2[k];
    }
    if (!any_live) {
        flushTimings();
        return;
    }

    {
        const auto t0 = Clock::now();
        if (use_mg) {
            buildLineFactorization(ed, w);
            mg_->prepareSolve(extra_diag, w, pool);
        } else if (line) {
            buildLineFactorization(ed, w);
        } else {
            double *invd = w.inv_diag_.data();
            const double *dgv = diag_.data();
            ThreadPool::parallelFor(
                pool, blockCount(n, kDotBlock), [&](std::size_t blk) {
                    const std::size_t i0 = blk * kDotBlock;
                    const std::size_t i1 = std::min(n, i0 + kDotBlock);
                    for (std::size_t i = i0; i < i1; ++i) {
                        double d = dgv[i];
                        if (ed)
                            d += ed[i];
                        XYLEM_ASSERT(d > 0.0, "singular diagonal entry");
                        invd[i] = 1.0 / d;
                    }
                });
        }
        w.precond_seconds_ += seconds(t0);
    }

    auto preconditionMulti = [&](double *rz_out) {
        const auto t0 = Clock::now();
        if (use_mg)
            mg_->applyVCycleMulti(rv, zv, K, ed, w, pool, rz_out);
        else if (line)
            applyLineCachedMulti(rv, zv, K, w, pool, rz_out);
        else
            blockedJacobiMulti(rv, w.inv_diag_.data(), zv, n, K, pool, bs,
                               rz_out);
        w.precond_seconds_ += seconds(t0);
    };

    preconditionMulti(rz);
    std::copy(w.bz_.begin(), w.bz_.begin() + static_cast<std::ptrdiff_t>(
                                                 n * K),
              w.bp_.begin());
    blockedSumSqMulti(rv, n, K, pool, bs, r_norm2);

    std::size_t num_active = 0;
    for (std::size_t k = 0; k < K; ++k) {
        active[k] = !zero_rhs[k] && r_norm2[k] > target2[k];
        if (active[k])
            ++num_active;
    }

    for (int it = 0; it < max_iterations && num_active > 0; ++it) {
        if ((it & 31) == 0)
            taskCheckpoint(); // cooperative deadline/cancel point
        for (std::size_t k = 0; k < K; ++k)
            was_active[k] = active[k];
        {
            const auto t0 = Clock::now();
            fusedApplyMulti(pv, qv, K, ed, pool, pq, bs);
            w.apply_seconds_ += seconds(t0);
        }
        for (std::size_t k = 0; k < K; ++k)
            if (active[k] && !(pq[k] > 0.0))
                raise(ErrorCode::SolverBreakdown,
                      "CG breakdown: search direction lost positive "
                      "definiteness (p'Ap = ", pq[k], " at iteration ", it,
                      ", batch column ", k, ")");
        for (std::size_t k = 0; k < K; ++k)
            alpha[k] = rz[k] / pq[k];
        blockedAxpyResidualMulti(alpha,
                                 num_active == K ? nullptr : active, pv,
                                 qv, xv, rv, n, K, pool, bs, r_norm2);
        // A column freezes the moment its own test passes — exactly
        // where the solo loop's top-of-iteration check would exit.
        // The trailing precondition/beta/direction update of this
        // iteration still runs for it, as it does in the solo solve
        // (it touches neither x nor r).
        for (std::size_t k = 0; k < K; ++k)
            if (active[k] && r_norm2[k] <= target2[k]) {
                active[k] = false;
                --num_active;
            }
        preconditionMulti(rz_next);
        for (std::size_t k = 0; k < K; ++k) {
            beta[k] = rz_next[k] / rz[k];
            rz[k] = rz_next[k];
        }
        blockedUpdateDirectionMulti(beta, zv, pv, n, K, pool);
        for (std::size_t k = 0; k < K; ++k)
            if (was_active[k])
                stats[k].iterations = it + 1;
    }

    bool any_nonconverged = false;
    std::size_t first_bad = 0;
    for (std::size_t k = 0; k < K; ++k) {
        if (zero_rhs[k])
            continue;
        stats[k].relativeResidual = std::sqrt(r_norm2[k] / b_norm2[k]);
        stats[k].converged =
            !forced_nonconvergence && r_norm2[k] <= target2[k];
        if (!stats[k].converged && !any_nonconverged) {
            any_nonconverged = true;
            first_bad = k;
        }
    }
    flushTimings();
    if (any_nonconverged) {
        if (ctx && ctx->strictSolver)
            raise(ErrorCode::SolverNonConvergence,
                  "thermal CG did not converge: residual ",
                  stats[first_bad].relativeResidual, " after ",
                  stats[first_bad].iterations, " iterations (batch column ",
                  first_bad, " of ", K, ")",
                  forced_nonconvergence ? " (forced by fault injection)"
                                        : "");
        for (std::size_t k = 0; k < K; ++k)
            if (!zero_rhs[k] && !stats[k].converged)
                warn("thermal CG did not converge: residual ",
                     stats[k].relativeResidual, " after ",
                     stats[k].iterations, " iterations (batch column ", k,
                     ")");
    }
}

std::vector<TemperatureField>
GridModel::solveSteadyBatch(const std::vector<const PowerMap *> &powers,
                            std::vector<SolveStats> *stats,
                            const std::vector<const TemperatureField *>
                            *warm_starts,
                            SolverWorkspace *workspace) const
{
    const std::size_t K = powers.size();
    std::vector<TemperatureField> out;
    if (stats)
        stats->assign(K, SolveStats{});
    if (K == 0)
        return out;
    if (K > kMaxBatchRhs)
        raise(ErrorCode::Config, "solveSteadyBatch: batch of ", K,
              " right-hand sides exceeds the limit of ", kMaxBatchRhs);
    if (warm_starts)
        XYLEM_ASSERT(warm_starts->size() == K,
                     "solveSteadyBatch: warm-start list size ",
                     warm_starts->size(), " != batch size ", K);
    for (std::size_t k = 0; k < K; ++k)
        XYLEM_ASSERT(powers[k] != nullptr,
                     "solveSteadyBatch: null power map at column ", k);

    runtime::Metrics::global().counter("solver.batch_solves").increment();
    runtime::Metrics::global().counter("solver.batch_columns").add(K);

    // The standalone V-cycle iteration has no blocked driver; its
    // columns run serially through the solo path (still one call for
    // the caller, still per-column identical results).
    if (opts_.kind == SolverKind::Multigrid) {
        out.reserve(K);
        for (std::size_t k = 0; k < K; ++k) {
            SolveStats s;
            const TemperatureField *warm =
                warm_starts ? (*warm_starts)[k] : nullptr;
            out.push_back(solveSteady(*powers[k], &s, warm, workspace));
            if (stats)
                (*stats)[k] = s;
        }
        return out;
    }

    SolverWorkspace &w = workspace ? *workspace : threadLocalWorkspace();
    prepare(w);
    prepareBatch(w, K);

    // Interleave the right-hand sides (solo fillRhs, K lanes wide).
    double *bb = w.bb_.data();
    for (std::size_t l = 0; l < num_layers_; ++l) {
        for (std::size_t k = 0; k < K; ++k) {
            const auto &f = powers[k]->layer(static_cast<int>(l)).data();
            for (std::size_t c = 0; c < cells_; ++c)
                bb[(l * cells_ + c) * K + k] = f[c];
        }
    }
    for (const auto &p : periphery_)
        for (std::size_t k = 0; k < K; ++k)
            bb[p.node * K + k] = 0.0;

    // On the cold-start escalation rung a stale warm start is a prime
    // failure suspect, so drop it and solve from ambient (solo rule).
    const TaskContext *ctx = currentTaskContext();
    const bool drop_warm = ctx && ctx->coldStart();
    bool x_is_zero[kMaxBatchRhs];
    double *bx = w.bx_.data();
    for (std::size_t k = 0; k < K; ++k) {
        const TemperatureField *warm =
            (warm_starts && !drop_warm) ? (*warm_starts)[k] : nullptr;
        if (warm) {
            XYLEM_ASSERT(warm->numNodes() == num_nodes_,
                         "warm start has wrong shape");
            for (std::size_t i = 0; i < num_nodes_; ++i)
                bx[i * K + k] = warm->nodes()[i] - opts_.ambientCelsius;
            x_is_zero[k] = false;
        } else {
            for (std::size_t i = 0; i < num_nodes_; ++i)
                bx[i * K + k] = 0.0;
            x_is_zero[k] = true;
        }
    }

    SolveStats batch_stats[kMaxBatchRhs];
    solveMulti(K, nullptr, w, x_is_zero, batch_stats);

    out.reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
        TemperatureField field(num_layers_, nx_, ny_, periphery_.size(),
                               opts_.ambientCelsius);
        for (std::size_t i = 0; i < num_nodes_; ++i)
            field.nodes()[i] = bx[i * K + k] + opts_.ambientCelsius;
        out.push_back(std::move(field));
        if (stats)
            (*stats)[k] = batch_stats[k];
    }
    return out;
}

} // namespace xylem::thermal
