#include "thermal/mg/multigrid.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define XYLEM_RESTRICT __restrict__
#else
#define XYLEM_RESTRICT
#endif

namespace xylem::thermal::mg {

namespace {

using runtime::ThreadPool;

// Every level follows the GridModel blocking discipline: fixed
// problem-size-dependent blocks, per-block partials reduced serially
// in ascending order — bit-identical at any thread count. Coarse
// levels above the node-count cutoff run the same tiled kernels on
// the pool; the tiny tail levels run them inline, where the fork/join
// would cost more than the arithmetic (DESIGN.md §17).
constexpr std::size_t kDotBlock = 4096;
constexpr std::size_t kRowChunk = 16;
constexpr std::size_t kColChunk = 1024;
constexpr std::size_t kCoarseSerialCutoff = 16384;

/** The pool a coarse level of `nodes` nodes should use (may be null). */
ThreadPool *
levelPool(std::size_t nodes, ThreadPool *pool)
{
    return nodes >= kCoarseSerialCutoff ? pool : nullptr;
}

std::size_t
blockCount(std::size_t n, std::size_t block)
{
    return (n + block - 1) / block;
}

void
blockedScale(double *XYLEM_RESTRICT z, double a, std::size_t n,
             ThreadPool *pool)
{
    ThreadPool::parallelFor(pool, blockCount(n, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(n, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    z[i] *= a;
                            });
}

/** t = r - q. */
void
blockedResidual(const double *XYLEM_RESTRICT r,
                const double *XYLEM_RESTRICT q, double *XYLEM_RESTRICT t,
                std::size_t n, ThreadPool *pool)
{
    ThreadPool::parallelFor(pool, blockCount(n, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(n, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    t[i] = r[i] - q[i];
                            });
}

/** x += a s. */
void
blockedAxpy(double *XYLEM_RESTRICT x, double a,
            const double *XYLEM_RESTRICT s, std::size_t n, ThreadPool *pool)
{
    ThreadPool::parallelFor(pool, blockCount(n, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(n, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    x[i] += a * s[i];
                            });
}

/**
 * Fixed-block-order a·b. No SIMD pragma here: vectorising a solo
 * reduction would reassociate the scalar accumulation the blocked
 * batch twins replicate per column, breaking batch ≡ solo identity.
 */
double
blockedDot(const double *XYLEM_RESTRICT a, const double *XYLEM_RESTRICT b,
           std::size_t n, ThreadPool *pool, double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i)
            s += a[i] * b[i];
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

/** In-place lower Cholesky A = L Lᵀ of a row-major n×n SPD matrix. */
void
choleskyFactorInPlace(std::vector<double> &a, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j) {
        double d = a[j * n + j];
        for (std::size_t k = 0; k < j; ++k)
            d -= a[j * n + k] * a[j * n + k];
        XYLEM_ASSERT(d > 0.0, "multigrid coarsest operator lost positive "
                              "definiteness (pivot ", d, " at row ", j, ")");
        const double lj = std::sqrt(d);
        a[j * n + j] = lj;
        const double inv = 1.0 / lj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a[i * n + j];
            for (std::size_t k = 0; k < j; ++k)
                s -= a[i * n + k] * a[j * n + k];
            a[i * n + j] = s * inv;
        }
    }
}

/** x = A⁻¹ b from the in-place factor (forward + back substitution). */
void
choleskySolve(const std::vector<double> &a, std::size_t n, const double *b,
              double *x)
{
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= a[i * n + k] * x[k];
        x[i] = s / a[i * n + i];
    }
    for (std::size_t i = n; i-- > 0;) {
        double s = x[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= a[k * n + i] * x[k];
        x[i] = s / a[i * n + i];
    }
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * FNV-1a over the bytes of `v`, seeded so that an empty vector, a
 * null shift, and different hierarchies all key differently. The
 * immutable part of the coarsest operator never changes after
 * construction, so the per-solve C/Δt shift is the whole content key.
 */
std::uint64_t
factorKeyOf(std::uint64_t hierarchy_id, const double *v, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull ^ (hierarchy_id * 0x9e3779b9ull);
    h ^= n;
    h *= 1099511628211ull;
    const unsigned char *bytes = reinterpret_cast<const unsigned char *>(v);
    for (std::size_t i = 0; i < n * sizeof(double); ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    // 0 is the "no factor" sentinel; never hand it out as a real key.
    return h == 0 ? 1 : h;
}

} // namespace

// ---------------------------------------------------------------------
// Hierarchy construction
// ---------------------------------------------------------------------

Hierarchy::Src
Hierarchy::viewOf(const Level &level)
{
    Src src;
    src.nx = level.nx;
    src.ny = level.ny;
    src.layers = level.layers;
    src.cells = level.cells;
    src.vert = &level.vert;
    src.latx = &level.latx;
    src.laty = &level.laty;
    src.rim = &level.rim;
    src.ground = &level.ground;
    src.periphVert = &level.periphVert;
    src.periphNodes = level.periphNodes;
    src.periphLayers = level.periphLayer;
    return src;
}

Hierarchy::Level
Hierarchy::coarsen(const Src &src, double lateral_scale)
{
    Level out;
    out.nx = (src.nx + 1) / 2;
    out.ny = (src.ny + 1) / 2;
    out.layers = src.layers;
    out.cells = out.nx * out.ny;
    out.nperiph = src.periphNodes.size();
    out.nodes = out.layers * out.cells + out.nperiph;

    out.vert.assign(out.layers > 0 ? out.layers - 1 : 0,
                    std::vector<double>(out.cells, 0.0));
    out.latx.assign(out.layers, std::vector<double>(out.cells, 0.0));
    out.laty.assign(out.layers, std::vector<double>(out.cells, 0.0));
    out.rim.assign(out.layers, {});
    out.ground.assign(out.nodes, 0.0);
    out.diag.assign(out.nodes, 0.0);
    out.periphVert = *src.periphVert;
    out.periphLayer = src.periphLayers;
    out.periphNodeOfLayer.assign(out.layers, -1);
    out.periphNodes.resize(out.nperiph);
    for (std::size_t k = 0; k < out.nperiph; ++k) {
        out.periphNodes[k] = out.layers * out.cells + k;
        out.periphNodeOfLayer[src.periphLayers[k]] =
            static_cast<std::ptrdiff_t>(out.periphNodes[k]);
    }

    // Aggregate the conductances: each coarse coupling is the sum of
    // the fine couplings it replaces (intra-aggregate couplings drop —
    // they cancel in P'AP for piecewise-constant P). Lateral sums get
    // the per-level rescale (see Options::lateralScale); vertical,
    // rim, and ground sums are exact for both variants because the
    // aggregation is purely lateral.
    for (std::size_t l = 0; l < src.layers; ++l) {
        const bool rimmed = !(*src.rim)[l].empty();
        if (rimmed)
            out.rim[l].assign(out.cells, 0.0);
        for (std::size_t iy = 0; iy < src.ny; ++iy) {
            const std::size_t cy = iy >> 1;
            for (std::size_t ix = 0; ix < src.nx; ++ix) {
                const std::size_t fc = iy * src.nx + ix;
                const std::size_t cc = cy * out.nx + (ix >> 1);
                if (l + 1 < src.layers)
                    out.vert[l][cc] += (*src.vert)[l][fc];
                if ((ix & 1) && ix + 1 < src.nx)
                    out.latx[l][cc] += lateral_scale * (*src.latx)[l][fc];
                if ((iy & 1) && iy + 1 < src.ny)
                    out.laty[l][cc] += lateral_scale * (*src.laty)[l][fc];
                if (rimmed)
                    out.rim[l][cc] += (*src.rim)[l][fc];
                out.ground[l * out.cells + cc] +=
                    (*src.ground)[l * src.cells + fc];
            }
        }
    }
    for (std::size_t k = 0; k < out.nperiph; ++k)
        out.ground[out.periphNodes[k]] +=
            (*src.ground)[src.periphNodes[k]];

    // Assemble the diagonal from the aggregated couplings, exactly
    // mirroring GridModel::assemble.
    for (std::size_t i = 0; i < out.nodes; ++i)
        out.diag[i] = out.ground[i];
    for (std::size_t l = 0; l + 1 < out.layers; ++l)
        for (std::size_t c = 0; c < out.cells; ++c) {
            out.diag[l * out.cells + c] += out.vert[l][c];
            out.diag[(l + 1) * out.cells + c] += out.vert[l][c];
        }
    for (std::size_t l = 0; l < out.layers; ++l) {
        for (std::size_t iy = 0; iy < out.ny; ++iy)
            for (std::size_t ix = 0; ix < out.nx; ++ix) {
                const std::size_t c = iy * out.nx + ix;
                if (ix + 1 < out.nx) {
                    out.diag[l * out.cells + c] += out.latx[l][c];
                    out.diag[l * out.cells + c + 1] += out.latx[l][c];
                }
                if (iy + 1 < out.ny) {
                    out.diag[l * out.cells + c] += out.laty[l][c];
                    out.diag[l * out.cells + c + out.nx] += out.laty[l][c];
                }
            }
        if (!out.rim[l].empty()) {
            const std::size_t pn = static_cast<std::size_t>(
                out.periphNodeOfLayer[l]);
            for (std::size_t c = 0; c < out.cells; ++c) {
                out.diag[l * out.cells + c] += out.rim[l][c];
                out.diag[pn] += out.rim[l][c];
            }
        }
    }
    for (std::size_t k = 0; k + 1 < out.nperiph; ++k) {
        out.diag[out.periphNodes[k]] += out.periphVert[k];
        out.diag[out.periphNodes[k + 1]] += out.periphVert[k];
    }
    return out;
}

namespace {

/** Process-unique hierarchy ids, starting at 1 (0 = "none"). */
std::uint64_t
nextHierarchyId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

Hierarchy::Hierarchy(const GridModel &fine, Options opts)
    : fine_(&fine), opts_(opts), id_(nextHierarchyId())
{
    opts_.coarsestCells = std::max<std::size_t>(1, opts_.coarsestCells);
    opts_.preSmooth = std::max(1, opts_.preSmooth);
    opts_.postSmooth = std::max(0, opts_.postSmooth);
    for (const auto &p : fine.periphery_)
        finePeriphNodes_.push_back(p.node);

    // Count the levels first so coarse_ never reallocates while a Src
    // view still points into its back element.
    std::size_t nlev = 0;
    {
        std::size_t cx = fine.nx_, cy = fine.ny_;
        while (cx * cy > opts_.coarsestCells &&
               nlev < static_cast<std::size_t>(std::max(0, opts_.maxLevels))) {
            cx = (cx + 1) / 2;
            cy = (cy + 1) / 2;
            ++nlev;
        }
    }
    coarse_.reserve(nlev);

    Src src;
    src.nx = fine.nx_;
    src.ny = fine.ny_;
    src.layers = fine.num_layers_;
    src.cells = fine.cells_;
    src.vert = &fine.vert_;
    src.latx = &fine.lat_x_;
    src.laty = &fine.lat_y_;
    src.rim = &fine.rim_g_;
    src.ground = &fine.ground_;
    src.periphVert = &fine.periph_vert_;
    src.periphNodes = finePeriphNodes_;
    for (const auto &p : fine.periphery_)
        src.periphLayers.push_back(p.layer);

    for (std::size_t k = 0; k < nlev; ++k) {
        coarse_.push_back(coarsen(src, opts_.lateralScale));
        src = viewOf(coarse_.back());
    }

    const std::size_t coarsest_nodes =
        coarse_.empty() ? fine.num_nodes_ : coarse_.back().nodes;
    XYLEM_ASSERT(coarsest_nodes <= 8192,
                 "multigrid coarsest level too large for a dense solve (",
                 coarsest_nodes, " nodes)");
    runtime::Metrics::global().counter("solver.mg.levels").add(numLevels());
}

// ---------------------------------------------------------------------
// Per-solve preparation
// ---------------------------------------------------------------------

void
Hierarchy::prepareWorkspace(SolverWorkspace &w) const
{
    if (!w.mg_)
        w.mg_ = std::make_unique<Workspace>();
    Workspace &mw = *w.mg_;
    if (mw.sized_for == id_)
        return;
    const std::size_t n0 = fine_->num_nodes_;
    mw.t0.assign(n0, 0.0);
    mw.s0.assign(n0, 0.0);
    mw.q0.assign(n0, 0.0);
    mw.levels.assign(coarse_.size(), {});
    for (std::size_t k = 0; k < coarse_.size(); ++k) {
        const Level &L = coarse_[k];
        LevelScratch &S = mw.levels[k];
        S.x.assign(L.nodes, 0.0);
        S.b.assign(L.nodes, 0.0);
        S.r.assign(L.nodes, 0.0);
        S.t.assign(L.nodes, 0.0);
        S.extra.assign(L.nodes, 0.0);
        if (k + 1 < coarse_.size()) {
            S.lineCp.assign(L.layers * L.cells, 0.0);
            S.lineInv.assign(L.layers * L.cells, 0.0);
            S.periphInv.assign(L.nperiph, 0.0);
        }
    }
    const std::size_t nc =
        coarse_.empty() ? n0 : coarse_.back().nodes;
    mw.dense.assign(nc * nc, 0.0);
    mw.factor_key = 0; // the resize dropped any cached factor
    // Resizing replaced the per-level scratch, dropping any batch
    // buffers with it; prepareBatchWorkspace must rebuild them.
    mw.bt0.clear();
    mw.bs0.clear();
    mw.bq0.clear();
    mw.batch_cols = 0;
    mw.sized_for = id_;
}

namespace {

/**
 * Aggregation restriction src → dst level: every coarse grid cell sums
 * its (up to four) source cells in ascending (iy, ix) order; periphery
 * nodes inject 1:1.
 */
void
restrictVector(std::size_t snx, std::size_t sny, std::size_t scells,
               std::size_t layers, const std::size_t *speriph,
               std::size_t nperiph, std::size_t dnx, std::size_t dny,
               const double *XYLEM_RESTRICT src, double *XYLEM_RESTRICT dst,
               ThreadPool *pool)
{
    const std::size_t dcells = dnx * dny;
    const std::size_t row_chunks = blockCount(dny, kRowChunk);
    ThreadPool::parallelFor(
        pool, layers * row_chunks, [&](std::size_t blk) {
            const std::size_t l = blk / row_chunks;
            const std::size_t cy0 = (blk % row_chunks) * kRowChunk;
            const std::size_t cy1 = std::min(dny, cy0 + kRowChunk);
            const double *sl = src + l * scells;
            double *dl = dst + l * dcells;
            for (std::size_t cy = cy0; cy < cy1; ++cy) {
                const std::size_t iy0 = 2 * cy;
                const std::size_t iy1 = std::min(sny, iy0 + 2);
                for (std::size_t cx = 0; cx < dnx; ++cx) {
                    const std::size_t ix0 = 2 * cx;
                    const std::size_t ix1 = std::min(snx, ix0 + 2);
                    double s = 0.0;
                    for (std::size_t iy = iy0; iy < iy1; ++iy)
                        for (std::size_t ix = ix0; ix < ix1; ++ix)
                            s += sl[iy * snx + ix];
                    dl[cy * dnx + cx] = s;
                }
            }
        });
    for (std::size_t k = 0; k < nperiph; ++k)
        dst[layers * dcells + k] = src[speriph[k]];
}

/** Prolongation (the restriction transpose): piecewise-constant. */
void
prolongVector(std::size_t dnx, std::size_t dny, std::size_t dcells,
              std::size_t layers, const std::size_t *dperiph,
              std::size_t nperiph, std::size_t snx,
              const double *XYLEM_RESTRICT src, double *XYLEM_RESTRICT dst,
              ThreadPool *pool)
{
    // src is the coarse vector (snx wide); dst the finer one.
    const std::size_t scells_rows = snx; // coarse row stride
    const std::size_t row_chunks = blockCount(dny, kRowChunk);
    const std::size_t sny = (dny + 1) / 2;
    const std::size_t scells = snx * sny;
    ThreadPool::parallelFor(
        pool, layers * row_chunks, [&](std::size_t blk) {
            const std::size_t l = blk / row_chunks;
            const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
            const std::size_t iy1 = std::min(dny, iy0 + kRowChunk);
            const double *sl = src + l * scells;
            double *dl = dst + l * dcells;
            for (std::size_t iy = iy0; iy < iy1; ++iy) {
                const double *srow = sl + (iy >> 1) * scells_rows;
                for (std::size_t ix = 0; ix < dnx; ++ix)
                    dl[iy * dnx + ix] += srow[ix >> 1];
            }
        });
    for (std::size_t k = 0; k < nperiph; ++k)
        dst[dperiph[k]] += src[layers * scells + k];
}

} // namespace

void
Hierarchy::prepareSolve(const std::vector<double> *fine_extra,
                        SolverWorkspace &w, runtime::ThreadPool *pool) const
{
    prepareWorkspace(w);
    Workspace &mw = *w.mg_;
    mw.cycle_seconds = 0.0;
    mw.cycles = 0;

    // Coarsen the transient C/Δt diagonal shift down the hierarchy
    // (capacitance aggregates by summation, like ground).
    for (std::size_t k = 0; k < coarse_.size(); ++k) {
        const Level &L = coarse_[k];
        LevelScratch &S = mw.levels[k];
        if (fine_extra == nullptr) {
            std::fill(S.extra.begin(), S.extra.end(), 0.0);
            continue;
        }
        if (k == 0)
            restrictVector(fine_->nx_, fine_->ny_, fine_->cells_,
                           fine_->num_layers_, finePeriphNodes_.data(),
                           finePeriphNodes_.size(), L.nx, L.ny,
                           fine_extra->data(), S.extra.data(), pool);
        else {
            const Level &P = coarse_[k - 1];
            restrictVector(P.nx, P.ny, P.cells, P.layers,
                           P.periphNodes.data(), P.nperiph, L.nx, L.ny,
                           mw.levels[k - 1].extra.data(), S.extra.data(),
                           levelPool(P.nodes, pool));
        }
    }

    // Factor the vertical lines of every smoothed coarse level.
    for (std::size_t k = 0; k + 1 < coarse_.size(); ++k)
        levelLineFactor(coarse_[k], mw.levels[k]);

    // Dense-factor the coarsest operator — unless the cached factor
    // already matches. The operator's conductances are immutable after
    // construction; only the coarsened C/Δt shift varies per solve, so
    // its content hash keys the factor. A steady sweep (shift ≡ 0) and
    // a fixed-Δt transient run therefore refactor exactly once per
    // workspace.
    std::uint64_t key;
    if (coarse_.empty())
        key = factorKeyOf(id_, fine_extra ? fine_extra->data() : nullptr,
                          fine_extra ? fine_extra->size() : 0);
    else {
        const std::vector<double> &extra = mw.levels.back().extra;
        key = fine_extra
                  ? factorKeyOf(id_, extra.data(), extra.size())
                  : factorKeyOf(id_, nullptr, 0);
    }
    if (mw.factor_key == key) {
        runtime::Metrics::global()
            .counter("solver.mg.factor_reuses")
            .increment();
        return;
    }
    mw.factor_key = 0; // invalid while the rebuild is in progress
    if (coarse_.empty()) {
        mw.dense = fine_->denseMatrix(fine_extra);
        choleskyFactorInPlace(mw.dense, fine_->num_nodes_);
    } else {
        const Level &L = coarse_.back();
        buildLevelDense(L, mw.levels.back().extra, mw.dense);
        choleskyFactorInPlace(mw.dense, L.nodes);
    }
    mw.factor_key = key;
}

void
Hierarchy::levelLineFactor(const Level &L, LevelScratch &S)
{
    const std::size_t cells = L.cells;
    const std::size_t layers = L.layers;
    const double *extra = S.extra.data();
    for (std::size_t c = 0; c < cells; ++c) {
        const double d = L.diag[c] + extra[c];
        XYLEM_ASSERT(d > 0.0, "singular coarse diagonal entry");
        const double inv = 1.0 / d;
        S.lineInv[c] = inv;
        S.lineCp[c] = layers > 1 ? -L.vert[0][c] * inv : 0.0;
    }
    for (std::size_t l = 1; l < layers; ++l) {
        const std::size_t off = l * cells;
        for (std::size_t c = 0; c < cells; ++c) {
            const double d = L.diag[off + c] + extra[off + c];
            const double den = d + L.vert[l - 1][c] * S.lineCp[off - cells + c];
            XYLEM_ASSERT(den > 0.0,
                         "coarse line smoother lost positivity");
            const double inv = 1.0 / den;
            S.lineInv[off + c] = inv;
            S.lineCp[off + c] =
                l + 1 < layers ? -L.vert[l][c] * inv : 0.0;
        }
    }
    for (std::size_t k = 0; k < L.nperiph; ++k) {
        const std::size_t node = L.periphNodes[k];
        const double d = L.diag[node] + extra[node];
        XYLEM_ASSERT(d > 0.0, "singular coarse diagonal entry");
        S.periphInv[k] = 1.0 / d;
    }
}

void
Hierarchy::levelLineSolve(const Level &L, const LevelScratch &S,
                          const double *r, double *z, ThreadPool *pool)
{
    const std::size_t cells = L.cells;
    const std::size_t layers = L.layers;
    // Each XY column's Thomas recurrence runs along layers and never
    // reads a neighbouring column, so partitioning the columns into
    // fixed chunks leaves every element's arithmetic untouched —
    // threaded and inline sweeps are bit-identical.
    const std::size_t nchunks = blockCount(cells, kColChunk);
    const double *XYLEM_RESTRICT inv = S.lineInv.data();
    const double *XYLEM_RESTRICT cp = S.lineCp.data();
    ThreadPool::parallelFor(pool, nchunks, [&](std::size_t chunk) {
        const std::size_t c0 = chunk * kColChunk;
        const std::size_t c1 = std::min(cells, c0 + kColChunk);
        XYLEM_SIMD_LOOP
        for (std::size_t c = c0; c < c1; ++c)
            z[c] = r[c] * inv[c];
        for (std::size_t l = 1; l < layers; ++l) {
            const std::size_t off = l * cells;
            const double *g = L.vert[l - 1].data();
            XYLEM_SIMD_LOOP
            for (std::size_t c = c0; c < c1; ++c)
                z[off + c] =
                    (r[off + c] + g[c] * z[off - cells + c]) * inv[off + c];
        }
        for (std::size_t l = layers - 1; l-- > 0;) {
            const std::size_t off = l * cells;
            XYLEM_SIMD_LOOP
            for (std::size_t c = c0; c < c1; ++c)
                z[off + c] -= cp[off + c] * z[off + cells + c];
        }
    });
    for (std::size_t k = 0; k < L.nperiph; ++k)
        z[L.periphNodes[k]] = r[L.periphNodes[k]] * S.periphInv[k];
}

void
Hierarchy::levelApply(const Level &L, const std::vector<double> &extra,
                      const double *x, double *y, ThreadPool *pool)
{
    const std::size_t nx = L.nx, ny = L.ny, cells = L.cells;
    // Gather-style: every y entry is produced by exactly one tile and
    // reads only x, so the tiles are race-free and order-independent.
    const std::size_t row_chunks = blockCount(ny, kRowChunk);
    ThreadPool::parallelFor(
        pool, L.layers * row_chunks, [&](std::size_t blk) {
        const std::size_t l = blk / row_chunks;
        const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
        const std::size_t iy1 = std::min(ny, iy0 + kRowChunk);
        const std::size_t base = l * cells;
        const bool rimmed = !L.rim[l].empty();
        const double x_peri =
            rimmed ? x[static_cast<std::size_t>(L.periphNodeOfLayer[l])]
                   : 0.0;
        for (std::size_t iy = iy0; iy < iy1; ++iy)
            for (std::size_t ix = 0; ix < nx; ++ix) {
                const std::size_t c = iy * nx + ix;
                const std::size_t node = base + c;
                double v = (L.diag[node] + extra[node]) * x[node];
                if (l > 0)
                    v -= L.vert[l - 1][c] * x[node - cells];
                if (l + 1 < L.layers)
                    v -= L.vert[l][c] * x[node + cells];
                if (ix > 0)
                    v -= L.latx[l][c - 1] * x[node - 1];
                if (ix + 1 < nx)
                    v -= L.latx[l][c] * x[node + 1];
                if (iy > 0)
                    v -= L.laty[l][c - nx] * x[node - nx];
                if (iy + 1 < ny)
                    v -= L.laty[l][c] * x[node + nx];
                if (rimmed)
                    v -= L.rim[l][c] * x_peri;
                y[node] = v;
            }
    });
    for (std::size_t k = 0; k < L.nperiph; ++k) {
        const std::size_t node = L.periphNodes[k];
        const std::size_t layer = L.periphLayer[k];
        const double *xl = x + layer * cells;
        const double *rim = L.rim[layer].data();
        double acc = 0.0;
        for (std::size_t c = 0; c < cells; ++c)
            acc += rim[c] * xl[c];
        double v = (L.diag[node] + extra[node]) * x[node] - acc;
        if (k > 0)
            v -= L.periphVert[k - 1] * x[node - 1];
        if (k + 1 < L.nperiph)
            v -= L.periphVert[k] * x[node + 1];
        y[node] = v;
    }
}

void
Hierarchy::buildLevelDense(const Level &L, const std::vector<double> &extra,
                           std::vector<double> &out)
{
    const std::size_t n = L.nodes;
    out.assign(n * n, 0.0);
    auto couple = [&](std::size_t a, std::size_t b, double g) {
        out[a * n + a] += g;
        out[b * n + b] += g;
        out[a * n + b] -= g;
        out[b * n + a] -= g;
    };
    for (std::size_t i = 0; i < n; ++i)
        out[i * n + i] += L.ground[i] + extra[i];
    for (std::size_t l = 0; l + 1 < L.layers; ++l)
        for (std::size_t c = 0; c < L.cells; ++c)
            couple(l * L.cells + c, (l + 1) * L.cells + c, L.vert[l][c]);
    for (std::size_t l = 0; l < L.layers; ++l) {
        for (std::size_t iy = 0; iy < L.ny; ++iy)
            for (std::size_t ix = 0; ix < L.nx; ++ix) {
                const std::size_t c = iy * L.nx + ix;
                if (ix + 1 < L.nx)
                    couple(l * L.cells + c, l * L.cells + c + 1,
                           L.latx[l][c]);
                if (iy + 1 < L.ny)
                    couple(l * L.cells + c, l * L.cells + c + L.nx,
                           L.laty[l][c]);
            }
        if (!L.rim[l].empty()) {
            const std::size_t pn =
                static_cast<std::size_t>(L.periphNodeOfLayer[l]);
            for (std::size_t c = 0; c < L.cells; ++c)
                if (L.rim[l][c] > 0.0)
                    couple(l * L.cells + c, pn, L.rim[l][c]);
        }
    }
    for (std::size_t k = 0; k + 1 < L.nperiph; ++k)
        couple(L.periphNodes[k], L.periphNodes[k + 1], L.periphVert[k]);
}

// ---------------------------------------------------------------------
// The V-cycle
// ---------------------------------------------------------------------

void
Hierarchy::levelSmooth(const Level &L, LevelScratch &S,
                       ThreadPool *pool) const
{
    levelApply(L, S.extra, S.x.data(), S.t.data(), pool);
    blockedResidual(S.b.data(), S.t.data(), S.r.data(), L.nodes, pool);
    levelLineSolve(L, S, S.r.data(), S.t.data(), pool);
    blockedAxpy(S.x.data(), opts_.damping, S.t.data(), L.nodes, pool);
}

void
Hierarchy::coarseVCycle(std::size_t k, Workspace &mw,
                        ThreadPool *pool) const
{
    const Level &L = coarse_[k];
    LevelScratch &S = mw.levels[k];
    // Each level decides for itself whether its tiles go on the pool;
    // deeper (smaller) levels re-gate on their own node counts.
    ThreadPool *lp = levelPool(L.nodes, pool);
    if (k + 1 == coarse_.size()) {
        choleskySolve(mw.dense, L.nodes, S.b.data(), S.x.data());
        return;
    }
    // Pre-smooth from the zero initial guess: x = ω M⁻¹ b.
    levelLineSolve(L, S, S.b.data(), S.x.data(), lp);
    if (opts_.damping != 1.0)
        blockedScale(S.x.data(), opts_.damping, L.nodes, lp);
    for (int s = 1; s < opts_.preSmooth; ++s)
        levelSmooth(L, S, lp);

    // Coarse-grid correction.
    levelApply(L, S.extra, S.x.data(), S.t.data(), lp);
    blockedResidual(S.b.data(), S.t.data(), S.r.data(), L.nodes, lp);
    const Level &C = coarse_[k + 1];
    restrictVector(L.nx, L.ny, L.cells, L.layers, L.periphNodes.data(),
                   L.nperiph, C.nx, C.ny, S.r.data(),
                   mw.levels[k + 1].b.data(), lp);
    coarseVCycle(k + 1, mw, pool);
    prolongVector(L.nx, L.ny, L.cells, L.layers, L.periphNodes.data(),
                  L.nperiph, C.nx, mw.levels[k + 1].x.data(), S.x.data(),
                  lp);

    for (int s = 0; s < opts_.postSmooth; ++s)
        levelSmooth(L, S, lp);
}

double
Hierarchy::applyVCycle(const double *r, double *z, const double *fine_extra,
                       SolverWorkspace &w, runtime::ThreadPool *pool) const
{
    using Clock = std::chrono::steady_clock;
    const auto t_start = Clock::now();
    Workspace &mw = *w.mg_;
    const GridModel &F = *fine_;
    const std::size_t n = F.num_nodes_;
    double rz;
    if (coarse_.empty()) {
        // The fine grid itself is the (dense-solved) coarsest level:
        // B = A⁻¹ and CG converges in one iteration.
        choleskySolve(mw.dense, n, r, z);
        rz = blockedDot(r, z, n, pool, w.block_sums_.data());
    } else {
        // Pre-smooth from the zero initial guess: z = ω M⁻¹ r reuses
        // the fine line factorisation already cached in `w`.
        F.applyLineCached(r, z, w, pool);
        if (opts_.damping != 1.0)
            blockedScale(z, opts_.damping, n, pool);
        for (int s = 1; s < opts_.preSmooth; ++s)
            smoothFine(r, z, fine_extra, w, pool);

        // Coarse-grid correction: restrict the residual, recurse,
        // prolongate the correction back up.
        F.fusedApply(z, mw.q0.data(), fine_extra, pool, nullptr, nullptr);
        blockedResidual(r, mw.q0.data(), mw.t0.data(), n, pool);
        const Level &C = coarse_.front();
        restrictVector(F.nx_, F.ny_, F.cells_, F.num_layers_,
                       finePeriphNodes_.data(), finePeriphNodes_.size(),
                       C.nx, C.ny, mw.t0.data(), mw.levels[0].b.data(),
                       pool);
        coarseVCycle(0, mw, pool);
        prolongVector(F.nx_, F.ny_, F.cells_, F.num_layers_,
                      finePeriphNodes_.data(), finePeriphNodes_.size(),
                      C.nx, mw.levels[0].x.data(), z, pool);

        for (int s = 0; s < opts_.postSmooth; ++s)
            smoothFine(r, z, fine_extra, w, pool);
        rz = blockedDot(r, z, n, pool, w.block_sums_.data());
    }
    mw.cycle_seconds += seconds(t_start);
    ++mw.cycles;
    return rz;
}

void
Hierarchy::smoothFine(const double *r, double *z, const double *fine_extra,
                      SolverWorkspace &w, runtime::ThreadPool *pool) const
{
    Workspace &mw = *w.mg_;
    const GridModel &F = *fine_;
    const std::size_t n = F.num_nodes_;
    F.fusedApply(z, mw.q0.data(), fine_extra, pool, nullptr, nullptr);
    blockedResidual(r, mw.q0.data(), mw.t0.data(), n, pool);
    F.applyLineCached(mw.t0.data(), mw.s0.data(), w, pool);
    blockedAxpy(z, opts_.damping, mw.s0.data(), n, pool);
}

} // namespace xylem::thermal::mg
