/**
 * @file
 * Geometric multigrid for the structured stack grid (DESIGN.md §14).
 *
 * The thermal grid is fully structured — layers × rows × cols with
 * smooth lateral conductances and strong vertical coupling — which is
 * the textbook case for geometric multigrid with semicoarsening: the
 * hierarchy coarsens the lateral (x, y) dimensions by two per level
 * and never coarsens layers, so the vertical-line smoother (the PR-4
 * cached Thomas factorisation) solves the stiff direction exactly at
 * every level while the lateral error is handed down the hierarchy.
 *
 * Coarse operators are built by conductance aggregation (piecewise-
 * constant Galerkin: inter-aggregate couplings are sums of the fine
 * couplings they replace, so every coarse level is again an SPD
 * resistor network of the same structured form), with an optional
 * per-level lateral rescale that turns the aggregated operator into
 * the rediscretised 2h operator. Periphery nodes survive uncoarsened
 * as singleton aggregates. The coarsest level — a handful of lateral
 * cells times the layer count — is solved exactly with a dense
 * Cholesky factorisation that is cached across solves: the operator
 * only changes when the transient C/Δt shift does, so the factor is
 * keyed by a content hash of that shift and reused on a match
 * (counted in solver.mg.factor_reuses; see DESIGN.md §17).
 *
 * One symmetric V-cycle (damped vertical-line pre-smooth, coarse-grid
 * correction, damped vertical-line post-smooth) is exposed as a fixed
 * SPD linear operator, usable either as a CG preconditioner
 * (Preconditioner::Multigrid) or iterated standalone
 * (SolverKind::Multigrid). Determinism: the fine level reuses the
 * fused, fixed-block-order kernels of GridModel, all transfers are
 * gather-style with a fixed summation order, and the coarse levels
 * run the same fixed-tile discipline — threaded over lateral tiles
 * when a level is large enough to pay for the fork/join, inline below
 * the node-count cutoff, with the tile layout depending only on the
 * problem size — so a solve is bit-identical at any thread count,
 * exactly like the CG core (DESIGN.md §17).
 */

#ifndef XYLEM_THERMAL_MG_MULTIGRID_HPP
#define XYLEM_THERMAL_MG_MULTIGRID_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xylem::runtime {
class ThreadPool;
}

namespace xylem::thermal {
class GridModel;
class SolverWorkspace;
} // namespace xylem::thermal

namespace xylem::thermal::mg {

/** Cycle tuning knobs (defaults chosen by bench/perf_solver sweeps). */
struct Options
{
    int preSmooth = 2;        ///< damped line-smooth sweeps before CGC
    int postSmooth = 2;       ///< sweeps after CGC (keep == preSmooth)
    double damping = 0.85;     ///< smoother damping ω (ω·ρ(M⁻¹A) < 2)
    /**
     * Per-level scale of the aggregated lateral conductances. 1.0
     * keeps the exact Galerkin operator P'AP (lateral couplings twice
     * the rediscretised 2h value); 0.5 yields the rediscretised
     * coarse operator, which converges faster in practice.
     */
    double lateralScale = 0.5;
    std::size_t coarsestCells = 4; ///< stop coarsening at ≤ this many
                                   ///< lateral cells; solve dense there
    int maxLevels = 24;            ///< hierarchy depth safety cap
};

/** Per-coarse-level scratch (sized once, reused across solves). */
struct LevelScratch
{
    std::vector<double> x, b, r, t; ///< correction, rhs, residual, temp
    std::vector<double> extra;      ///< coarsened C/Δt diagonal shift
    std::vector<double> lineCp, lineInv, periphInv; ///< Thomas factors
    // Multi-RHS twins of x/b/r/t (nodes × batch columns, node-major
    // interleaved); sized by Hierarchy::prepareBatchWorkspace.
    std::vector<double> bx, bb, br, bt;
};

/**
 * Multigrid scratch memory, owned by a SolverWorkspace (one per
 * solving thread, never shared between concurrent solves).
 */
struct Workspace
{
    std::vector<double> t0, s0, q0;   ///< fine-level residual/smooth/Ax
    std::vector<LevelScratch> levels; ///< one per coarse level
    std::vector<double> dense;        ///< coarsest Cholesky factor
    /**
     * Content key of the coarsest operator `dense` currently factors
     * (a hash of the coarsened C/Δt diagonal shift — the only per-
     * solve input; 0 = no valid factor). prepareSolve skips the dense
     * rebuild + refactor when the key matches, counting the hit in
     * solver.mg.factor_reuses.
     */
    std::uint64_t factor_key = 0;
    // Multi-RHS twins of t0/s0/q0; batch_cols is the column capacity
    // every batch buffer (here and per level) is currently sized for
    // (0 = unsized; reset whenever the hierarchy buffers resize).
    std::vector<double> bt0, bs0, bq0;
    std::size_t batch_cols = 0;
    /**
     * Unique id of the hierarchy the buffers are sized for (0 =
     * none). Deliberately an id, not the Hierarchy pointer: a
     * workspace outlives models (thread-local reuse across solves),
     * and a new hierarchy allocated at a freed one's address would
     * make a pointer compare claim stale buffers fit.
     */
    std::uint64_t sized_for = 0;
    // Per-solve telemetry, flushed by GridModel::solve into
    // "solver.mg.cycle_seconds" / "solver.mg.cycles".
    double cycle_seconds = 0.0;
    std::uint64_t cycles = 0;
};

/**
 * The immutable coarse-level hierarchy of one GridModel. Built once
 * at model construction (when the options select multigrid); solves
 * are const and may run concurrently, each with its own workspace.
 */
class Hierarchy
{
  public:
    Hierarchy(const GridModel &fine, Options opts = {});

    /** Fine level plus the coarse levels (1 = fine is coarsest). */
    std::size_t numLevels() const { return coarse_.size() + 1; }
    const Options &options() const { return opts_; }

    /** Process-unique id (never 0, never reused); see Workspace. */
    std::uint64_t id() const { return id_; }

    /** Nodes at coarse level k (1-based; exposed for tests). */
    std::size_t coarseNodes(std::size_t k) const
    {
        return coarse_[k - 1].nodes;
    }

    /** Size `w`'s multigrid scratch for this hierarchy (idempotent). */
    void prepareWorkspace(SolverWorkspace &w) const;

    /**
     * Once-per-solve preparation: coarsen the transient C/Δt diagonal
     * shift down the hierarchy, factor the vertical lines of every
     * intermediate level, and Cholesky-factor the coarsest operator —
     * unless Workspace::factor_key shows the cached factor already
     * matches this solve's shift, in which case the factor is reused.
     * The fine level's own line factorisation must already be built
     * (GridModel::buildLineFactorization) — the fine smoother reuses
     * it. Resets the per-solve cycle telemetry.
     */
    void prepareSolve(const std::vector<double> *fine_extra,
                      SolverWorkspace &w,
                      runtime::ThreadPool *pool = nullptr) const;

    /**
     * z = B·r: one symmetric V-cycle from a zero initial guess — a
     * fixed SPD linear operator. Returns r·z reduced in a fixed block
     * order (bit-identical at any thread count).
     */
    double applyVCycle(const double *r, double *z,
                       const double *fine_extra, SolverWorkspace &w,
                       runtime::ThreadPool *pool) const;

    /** Size `w`'s batch scratch for `cols` columns (idempotent). */
    void prepareBatchWorkspace(SolverWorkspace &w,
                               std::size_t cols) const;

    /**
     * Z = B·R per column: the blocked V-cycle (multigrid_batch.cpp).
     * R/Z are node-major interleaved blocks of `cols` columns; each
     * column's result is bit-identical to applyVCycle on that column
     * alone. Per-column r·z lands in rz_out (when non-null).
     * prepareSolve and prepareBatchWorkspace must have run.
     */
    void applyVCycleMulti(const double *r, double *z, std::size_t cols,
                          const double *fine_extra, SolverWorkspace &w,
                          runtime::ThreadPool *pool,
                          double *rz_out) const;

  private:
    /** One coarse level: the same structured network, smaller. */
    struct Level
    {
        std::size_t nx = 0, ny = 0, layers = 0, cells = 0, nodes = 0;
        std::size_t nperiph = 0;
        // Conductances, mirroring GridModel's layout: vert[l][c]
        // couples (l,c)-(l+1,c); latx/laty couple +x/+y neighbours
        // (last column/row entries zero); rim[l] couples boundary
        // cells to the layer's periphery node (empty = no periphery).
        std::vector<std::vector<double>> vert, latx, laty, rim;
        std::vector<double> ground, diag, periphVert;
        std::vector<std::ptrdiff_t> periphNodeOfLayer;
        // Periphery node k has id layers*cells + k at every level.
        std::vector<std::size_t> periphNodes; ///< this level's node ids
        std::vector<std::size_t> periphLayer; ///< layer of node k
    };

    /** Uniform read-view over the fine model or a coarse level. */
    struct Src
    {
        std::size_t nx = 0, ny = 0, layers = 0, cells = 0;
        const std::vector<std::vector<double>> *vert = nullptr,
                                               *latx = nullptr,
                                               *laty = nullptr,
                                               *rim = nullptr;
        const std::vector<double> *ground = nullptr;
        const std::vector<double> *periphVert = nullptr;
        std::vector<std::size_t> periphNodes;  ///< source node ids
        std::vector<std::size_t> periphLayers; ///< layer of node k
    };

    static Level coarsen(const Src &src, double lateral_scale);
    static Src viewOf(const Level &level);
    static void levelLineFactor(const Level &level, LevelScratch &scratch);
    // Level kernels partition over lateral tiles whose layout depends
    // only on the level's size; a null pool runs the same tiles
    // inline, so the pool argument never changes a result.
    static void levelLineSolve(const Level &level,
                               const LevelScratch &scratch, const double *r,
                               double *z, runtime::ThreadPool *pool);
    static void levelApply(const Level &level,
                           const std::vector<double> &extra, const double *x,
                           double *y, runtime::ThreadPool *pool);
    static void buildLevelDense(const Level &level,
                                const std::vector<double> &extra,
                                std::vector<double> &out);

    void levelSmooth(const Level &level, LevelScratch &scratch,
                     runtime::ThreadPool *pool) const;
    void smoothFine(const double *r, double *z, const double *fine_extra,
                    SolverWorkspace &w, runtime::ThreadPool *pool) const;
    void coarseVCycle(std::size_t k, Workspace &mw,
                      runtime::ThreadPool *pool) const;

    // Multi-RHS twins (multigrid_batch.cpp), replicating the solo
    // kernels' per-column arithmetic order exactly.
    static void levelApplyMulti(const Level &level,
                                const std::vector<double> &extra,
                                const double *x, double *y,
                                std::size_t cols,
                                runtime::ThreadPool *pool);
    static void levelLineSolveMulti(const Level &level,
                                    const LevelScratch &scratch,
                                    const double *r, double *z,
                                    std::size_t cols,
                                    runtime::ThreadPool *pool);
    void levelSmoothMulti(const Level &level, LevelScratch &scratch,
                          std::size_t cols,
                          runtime::ThreadPool *pool) const;
    void smoothFineMulti(const double *r, double *z, std::size_t cols,
                         const double *fine_extra, SolverWorkspace &w,
                         runtime::ThreadPool *pool) const;
    void coarseVCycleMulti(std::size_t k, Workspace &mw,
                           std::size_t cols,
                           runtime::ThreadPool *pool) const;

    const GridModel *fine_;
    Options opts_;
    std::uint64_t id_; ///< from a process-global counter; see id()
    std::vector<Level> coarse_; ///< levels 1..K, fine-to-coarse
    std::vector<std::size_t> finePeriphNodes_;
};

} // namespace xylem::thermal::mg

#endif // XYLEM_THERMAL_MG_MULTIGRID_HPP
