/**
 * @file
 * The multi-RHS (batched) V-cycle (DESIGN.md §15).
 *
 * Every function here is the column-blocked twin of a solo kernel in
 * multigrid.cpp, operating on node-major interleaved blocks with the
 * column loop innermost. The contract is the same as in
 * grid_model_batch.cpp: per column, nodes, blocks, and reduction
 * partials are visited in exactly the solo order, so column k of a
 * blocked V-cycle is bit-for-bit applyVCycle() on column k alone.
 * Coefficient streams (conductances, line factors, the coarsest
 * Cholesky factor) are shared across columns and read once per sweep
 * — the bandwidth amortisation that makes batched MG-CG pay.
 */

#include "thermal/mg/multigrid.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "runtime/thread_pool.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/multivector.hpp"
#include "thermal/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define XYLEM_RESTRICT __restrict__
#else
#define XYLEM_RESTRICT
#endif

namespace xylem::thermal::mg {

namespace {

using runtime::ThreadPool;

constexpr std::size_t kDotBlock = 4096;
constexpr std::size_t kRowChunk = 16;
constexpr std::size_t kColChunk = 1024;
// Same node-count cutoff as the solo path (multigrid.cpp), but the
// batch work per node scales with the column count, so the gate is on
// nodes × columns: a level too small to thread solo can still pay for
// the fork/join when K lanes ride along.
constexpr std::size_t kCoarseSerialCutoff = 16384;

ThreadPool *
levelPoolMulti(std::size_t nodes, std::size_t K, ThreadPool *pool)
{
    return nodes * K >= kCoarseSerialCutoff ? pool : nullptr;
}

std::size_t
blockCount(std::size_t n, std::size_t block)
{
    return (n + block - 1) / block;
}

/** Z *= a over n nodes × K columns (elementwise; no reduction). */
void
blockedScaleMulti(double *XYLEM_RESTRICT z, double a, std::size_t n,
                  std::size_t K, ThreadPool *pool)
{
    const std::size_t total = n * K;
    ThreadPool::parallelFor(pool, blockCount(total, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(total, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    z[i] *= a;
                            });
}

/** T = R - Q, elementwise over n nodes × K columns. */
void
blockedResidualMulti(const double *XYLEM_RESTRICT r,
                     const double *XYLEM_RESTRICT q,
                     double *XYLEM_RESTRICT t, std::size_t n,
                     std::size_t K, ThreadPool *pool)
{
    const std::size_t total = n * K;
    ThreadPool::parallelFor(pool, blockCount(total, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(total, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    t[i] = r[i] - q[i];
                            });
}

/** X += a S, elementwise over n nodes × K columns. */
void
blockedAxpyMulti(double *XYLEM_RESTRICT x, double a,
                 const double *XYLEM_RESTRICT s, std::size_t n,
                 std::size_t K, ThreadPool *pool)
{
    const std::size_t total = n * K;
    ThreadPool::parallelFor(pool, blockCount(total, kDotBlock),
                            [&](std::size_t blk) {
                                const std::size_t i0 = blk * kDotBlock;
                                const std::size_t i1 =
                                    std::min(total, i0 + kDotBlock);
                                XYLEM_SIMD_LOOP
                                for (std::size_t i = i0; i < i1; ++i)
                                    x[i] += a * s[i];
                            });
}

/** Per-column a·b over n nodes, solo block structure, into out. */
void
blockedDotMulti(const double *XYLEM_RESTRICT a,
                const double *XYLEM_RESTRICT b, std::size_t n,
                std::size_t K, ThreadPool *pool, double *bs, double *out)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s[kMaxBatchRhs] = {};
        for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t base = i * K;
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k)
                s[k] += a[base + k] * b[base + k];
        }
        for (std::size_t k = 0; k < K; ++k)
            bs[blk * K + k] = s[k];
    });
    for (std::size_t k = 0; k < K; ++k)
        out[k] = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        for (std::size_t k = 0; k < K; ++k)
            out[k] += bs[blk * K + k];
}

/**
 * X = A⁻¹ B per column from the in-place Cholesky factor. Each
 * column runs the full forward + back substitution independently
 * (loop-carried along i), so its arithmetic order is the solo
 * choleskySolve order exactly.
 */
void
choleskySolveMulti(const std::vector<double> &a, std::size_t n,
                   const double *b, double *x, std::size_t K)
{
    for (std::size_t col = 0; col < K; ++col) {
        for (std::size_t i = 0; i < n; ++i) {
            double s = b[i * K + col];
            for (std::size_t k = 0; k < i; ++k)
                s -= a[i * n + k] * x[k * K + col];
            x[i * K + col] = s / a[i * n + i];
        }
        for (std::size_t i = n; i-- > 0;) {
            double s = x[i * K + col];
            for (std::size_t k = i + 1; k < n; ++k)
                s -= a[k * n + i] * x[k * K + col];
            x[i * K + col] = s / a[i * n + i];
        }
    }
}

/** Blocked aggregation restriction (solo restrictVector, K lanes). */
void
restrictVectorMulti(std::size_t snx, std::size_t sny, std::size_t scells,
                    std::size_t layers, const std::size_t *speriph,
                    std::size_t nperiph, std::size_t dnx, std::size_t dny,
                    const double *XYLEM_RESTRICT src,
                    double *XYLEM_RESTRICT dst, std::size_t K,
                    ThreadPool *pool)
{
    const std::size_t dcells = dnx * dny;
    const std::size_t row_chunks = blockCount(dny, kRowChunk);
    ThreadPool::parallelFor(
        pool, layers * row_chunks, [&](std::size_t blk) {
            const std::size_t l = blk / row_chunks;
            const std::size_t cy0 = (blk % row_chunks) * kRowChunk;
            const std::size_t cy1 = std::min(dny, cy0 + kRowChunk);
            const double *sl = src + l * scells * K;
            double *dl = dst + l * dcells * K;
            for (std::size_t cy = cy0; cy < cy1; ++cy) {
                const std::size_t iy0 = 2 * cy;
                const std::size_t iy1 = std::min(sny, iy0 + 2);
                for (std::size_t cx = 0; cx < dnx; ++cx) {
                    const std::size_t ix0 = 2 * cx;
                    const std::size_t ix1 = std::min(snx, ix0 + 2);
                    double s[kMaxBatchRhs] = {};
                    for (std::size_t iy = iy0; iy < iy1; ++iy)
                        for (std::size_t ix = ix0; ix < ix1; ++ix) {
                            const std::size_t o = (iy * snx + ix) * K;
                            XYLEM_SIMD_LOOP
                            for (std::size_t k = 0; k < K; ++k)
                                s[k] += sl[o + k];
                        }
                    const std::size_t d = (cy * dnx + cx) * K;
                    for (std::size_t k = 0; k < K; ++k)
                        dl[d + k] = s[k];
                }
            }
        });
    for (std::size_t p = 0; p < nperiph; ++p) {
        const std::size_t d = (layers * dcells + p) * K;
        const std::size_t s = speriph[p] * K;
        for (std::size_t k = 0; k < K; ++k)
            dst[d + k] = src[s + k];
    }
}

/** Blocked piecewise-constant prolongation (solo prolongVector). */
void
prolongVectorMulti(std::size_t dnx, std::size_t dny, std::size_t dcells,
                   std::size_t layers, const std::size_t *dperiph,
                   std::size_t nperiph, std::size_t snx,
                   const double *XYLEM_RESTRICT src,
                   double *XYLEM_RESTRICT dst, std::size_t K,
                   ThreadPool *pool)
{
    const std::size_t row_chunks = blockCount(dny, kRowChunk);
    const std::size_t sny = (dny + 1) / 2;
    const std::size_t scells = snx * sny;
    ThreadPool::parallelFor(
        pool, layers * row_chunks, [&](std::size_t blk) {
            const std::size_t l = blk / row_chunks;
            const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
            const std::size_t iy1 = std::min(dny, iy0 + kRowChunk);
            const double *sl = src + l * scells * K;
            double *dl = dst + l * dcells * K;
            for (std::size_t iy = iy0; iy < iy1; ++iy) {
                const double *srow = sl + (iy >> 1) * snx * K;
                for (std::size_t ix = 0; ix < dnx; ++ix) {
                    const std::size_t d = (iy * dnx + ix) * K;
                    const std::size_t s = (ix >> 1) * K;
                    XYLEM_SIMD_LOOP
                    for (std::size_t k = 0; k < K; ++k)
                        dl[d + k] += srow[s + k];
                }
            }
        });
    for (std::size_t p = 0; p < nperiph; ++p) {
        const std::size_t d = dperiph[p] * K;
        const std::size_t s = (layers * scells + p) * K;
        for (std::size_t k = 0; k < K; ++k)
            dst[d + k] += src[s + k];
    }
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

void
Hierarchy::prepareBatchWorkspace(SolverWorkspace &w,
                                 std::size_t cols) const
{
    XYLEM_ASSERT(cols >= 1 && cols <= kMaxBatchRhs,
                 "prepareBatchWorkspace: column count ", cols,
                 " outside [1, ", kMaxBatchRhs, "]");
    prepareWorkspace(w);
    Workspace &mw = *w.mg_;
    if (mw.batch_cols >= cols)
        return;
    const std::size_t n0 = fine_->num_nodes_;
    mw.bt0.assign(n0 * cols, 0.0);
    mw.bs0.assign(n0 * cols, 0.0);
    mw.bq0.assign(n0 * cols, 0.0);
    for (std::size_t k = 0; k < coarse_.size(); ++k) {
        const std::size_t nk = coarse_[k].nodes;
        LevelScratch &S = mw.levels[k];
        S.bx.assign(nk * cols, 0.0);
        S.bb.assign(nk * cols, 0.0);
        S.br.assign(nk * cols, 0.0);
        S.bt.assign(nk * cols, 0.0);
    }
    mw.batch_cols = cols;
}

void
Hierarchy::levelApplyMulti(const Level &L, const std::vector<double> &extra,
                           const double *x, double *y, std::size_t K,
                           ThreadPool *pool)
{
    const std::size_t nx = L.nx, ny = L.ny, cells = L.cells;
    // Gather-style partition over (layer, row-chunk) tiles: every node
    // writes only its own K lanes from values read across the tile
    // boundary, so the tiling (fixed by the level size alone) cannot
    // change any result — bit-identical at any thread count.
    const std::size_t row_chunks = blockCount(ny, kRowChunk);
    ThreadPool::parallelFor(pool, L.layers * row_chunks, [&](std::size_t blk) {
        const std::size_t l = blk / row_chunks;
        const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
        const std::size_t iy1 = std::min(ny, iy0 + kRowChunk);
        const std::size_t base = l * cells;
        const bool rimmed = !L.rim[l].empty();
        const double *xp =
            rimmed
                ? x + static_cast<std::size_t>(L.periphNodeOfLayer[l]) * K
                : nullptr;
        for (std::size_t iy = iy0; iy < iy1; ++iy)
            for (std::size_t ix = 0; ix < nx; ++ix) {
                const std::size_t c = iy * nx + ix;
                const std::size_t node = base + c;
                const double dg = L.diag[node] + extra[node];
                const std::size_t o = node * K;
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k) {
                    double v = dg * x[o + k];
                    if (l > 0)
                        v -= L.vert[l - 1][c] * x[o - cells * K + k];
                    if (l + 1 < L.layers)
                        v -= L.vert[l][c] * x[o + cells * K + k];
                    if (ix > 0)
                        v -= L.latx[l][c - 1] * x[o - K + k];
                    if (ix + 1 < nx)
                        v -= L.latx[l][c] * x[o + K + k];
                    if (iy > 0)
                        v -= L.laty[l][c - nx] * x[o - nx * K + k];
                    if (iy + 1 < ny)
                        v -= L.laty[l][c] * x[o + nx * K + k];
                    if (rimmed)
                        v -= L.rim[l][c] * xp[k];
                    y[o + k] = v;
                }
            }
    });
    for (std::size_t p = 0; p < L.nperiph; ++p) {
        const std::size_t node = L.periphNodes[p];
        const std::size_t layer = L.periphLayer[p];
        const double *xl = x + layer * cells * K;
        const double *rim = L.rim[layer].data();
        double acc[kMaxBatchRhs] = {};
        for (std::size_t c = 0; c < cells; ++c) {
            XYLEM_SIMD_LOOP
            for (std::size_t k = 0; k < K; ++k)
                acc[k] += rim[c] * xl[c * K + k];
        }
        const double dg = L.diag[node] + extra[node];
        const std::size_t o = node * K;
        for (std::size_t k = 0; k < K; ++k) {
            double v = dg * x[o + k] - acc[k];
            if (p > 0)
                v -= L.periphVert[p - 1] * x[o - K + k];
            if (p + 1 < L.nperiph)
                v -= L.periphVert[p] * x[o + K + k];
            y[o + k] = v;
        }
    }
}

void
Hierarchy::levelLineSolveMulti(const Level &L, const LevelScratch &S,
                               const double *r, double *z, std::size_t K,
                               ThreadPool *pool)
{
    const std::size_t cells = L.cells;
    const std::size_t layers = L.layers;
    // Each XY column's Thomas recurrence is loop-carried along layers
    // only, so partitioning the columns into fixed kColChunk chunks
    // never reorders any column's arithmetic: every column, in every
    // lane, runs the exact serial sweep regardless of thread count.
    ThreadPool::parallelFor(
        pool, blockCount(cells, kColChunk), [&](std::size_t blk) {
            const std::size_t c0 = blk * kColChunk;
            const std::size_t c1 = std::min(cells, c0 + kColChunk);
            for (std::size_t c = c0; c < c1; ++c) {
                const double inv = S.lineInv[c];
                XYLEM_SIMD_LOOP
                for (std::size_t k = 0; k < K; ++k)
                    z[c * K + k] = r[c * K + k] * inv;
            }
            for (std::size_t l = 1; l < layers; ++l) {
                const std::size_t off = l * cells;
                const double *g = L.vert[l - 1].data();
                for (std::size_t c = c0; c < c1; ++c) {
                    const double gc = g[c];
                    const double inv = S.lineInv[off + c];
                    const std::size_t hi = (off + c) * K;
                    const std::size_t lo = (off - cells + c) * K;
                    XYLEM_SIMD_LOOP
                    for (std::size_t k = 0; k < K; ++k)
                        z[hi + k] = (r[hi + k] + gc * z[lo + k]) * inv;
                }
            }
            for (std::size_t l = layers - 1; l-- > 0;) {
                const std::size_t off = l * cells;
                for (std::size_t c = c0; c < c1; ++c) {
                    const double cp = S.lineCp[off + c];
                    const std::size_t o = (off + c) * K;
                    const std::size_t oa = (off + cells + c) * K;
                    XYLEM_SIMD_LOOP
                    for (std::size_t k = 0; k < K; ++k)
                        z[o + k] -= cp * z[oa + k];
                }
            }
        });
    for (std::size_t p = 0; p < L.nperiph; ++p) {
        const std::size_t o = L.periphNodes[p] * K;
        const double inv = S.periphInv[p];
        for (std::size_t k = 0; k < K; ++k)
            z[o + k] = r[o + k] * inv;
    }
}

void
Hierarchy::levelSmoothMulti(const Level &L, LevelScratch &S,
                            std::size_t K, ThreadPool *pool) const
{
    levelApplyMulti(L, S.extra, S.bx.data(), S.bt.data(), K, pool);
    blockedResidualMulti(S.bb.data(), S.bt.data(), S.br.data(), L.nodes,
                         K, pool);
    levelLineSolveMulti(L, S, S.br.data(), S.bt.data(), K, pool);
    blockedAxpyMulti(S.bx.data(), opts_.damping, S.bt.data(), L.nodes, K,
                     pool);
}

void
Hierarchy::coarseVCycleMulti(std::size_t k, Workspace &mw,
                             std::size_t K, ThreadPool *pool) const
{
    const Level &L = coarse_[k];
    LevelScratch &S = mw.levels[k];
    // Each level decides for itself whether its tiles go on the pool;
    // deeper (smaller) levels re-gate on their own node counts.
    ThreadPool *lp = levelPoolMulti(L.nodes, K, pool);
    if (k + 1 == coarse_.size()) {
        choleskySolveMulti(mw.dense, L.nodes, S.bb.data(), S.bx.data(), K);
        return;
    }
    // Pre-smooth from the zero initial guess: x = ω M⁻¹ b.
    levelLineSolveMulti(L, S, S.bb.data(), S.bx.data(), K, lp);
    if (opts_.damping != 1.0)
        blockedScaleMulti(S.bx.data(), opts_.damping, L.nodes, K, lp);
    for (int s = 1; s < opts_.preSmooth; ++s)
        levelSmoothMulti(L, S, K, lp);

    // Coarse-grid correction.
    levelApplyMulti(L, S.extra, S.bx.data(), S.bt.data(), K, lp);
    blockedResidualMulti(S.bb.data(), S.bt.data(), S.br.data(), L.nodes,
                         K, lp);
    const Level &C = coarse_[k + 1];
    restrictVectorMulti(L.nx, L.ny, L.cells, L.layers,
                        L.periphNodes.data(), L.nperiph, C.nx, C.ny,
                        S.br.data(), mw.levels[k + 1].bb.data(), K, lp);
    coarseVCycleMulti(k + 1, mw, K, pool);
    prolongVectorMulti(L.nx, L.ny, L.cells, L.layers,
                       L.periphNodes.data(), L.nperiph, C.nx,
                       mw.levels[k + 1].bx.data(), S.bx.data(), K, lp);

    for (int s = 0; s < opts_.postSmooth; ++s)
        levelSmoothMulti(L, S, K, lp);
}

void
Hierarchy::smoothFineMulti(const double *r, double *z, std::size_t K,
                           const double *fine_extra, SolverWorkspace &w,
                           runtime::ThreadPool *pool) const
{
    Workspace &mw = *w.mg_;
    const GridModel &F = *fine_;
    const std::size_t n = F.num_nodes_;
    F.fusedApplyMulti(z, mw.bq0.data(), K, fine_extra, pool, nullptr,
                      nullptr);
    blockedResidualMulti(r, mw.bq0.data(), mw.bt0.data(), n, K, pool);
    F.applyLineCachedMulti(mw.bt0.data(), mw.bs0.data(), K, w, pool,
                           nullptr);
    blockedAxpyMulti(z, opts_.damping, mw.bs0.data(), n, K, pool);
}

void
Hierarchy::applyVCycleMulti(const double *r, double *z, std::size_t K,
                            const double *fine_extra, SolverWorkspace &w,
                            runtime::ThreadPool *pool,
                            double *rz_out) const
{
    using Clock = std::chrono::steady_clock;
    const auto t_start = Clock::now();
    Workspace &mw = *w.mg_;
    const GridModel &F = *fine_;
    const std::size_t n = F.num_nodes_;
    XYLEM_ASSERT(mw.batch_cols >= K,
                 "applyVCycleMulti: batch workspace sized for ",
                 mw.batch_cols, " columns, need ", K);
    double rz[kMaxBatchRhs];
    if (coarse_.empty()) {
        // The fine grid itself is the (dense-solved) coarsest level.
        choleskySolveMulti(mw.dense, n, r, z, K);
        blockedDotMulti(r, z, n, K, pool, w.batch_block_sums_.data(), rz);
    } else {
        // Pre-smooth from the zero initial guess: z = ω M⁻¹ r reuses
        // the fine line factorisation already cached in `w`.
        F.applyLineCachedMulti(r, z, K, w, pool, nullptr);
        if (opts_.damping != 1.0)
            blockedScaleMulti(z, opts_.damping, n, K, pool);
        for (int s = 1; s < opts_.preSmooth; ++s)
            smoothFineMulti(r, z, K, fine_extra, w, pool);

        // Coarse-grid correction: restrict the residual, recurse,
        // prolongate the correction back up.
        F.fusedApplyMulti(z, mw.bq0.data(), K, fine_extra, pool, nullptr,
                          nullptr);
        blockedResidualMulti(r, mw.bq0.data(), mw.bt0.data(), n, K, pool);
        const Level &C = coarse_.front();
        restrictVectorMulti(F.nx_, F.ny_, F.cells_, F.num_layers_,
                            finePeriphNodes_.data(),
                            finePeriphNodes_.size(), C.nx, C.ny,
                            mw.bt0.data(), mw.levels[0].bb.data(), K,
                            pool);
        coarseVCycleMulti(0, mw, K, pool);
        prolongVectorMulti(F.nx_, F.ny_, F.cells_, F.num_layers_,
                           finePeriphNodes_.data(),
                           finePeriphNodes_.size(), C.nx,
                           mw.levels[0].bx.data(), z, K, pool);

        for (int s = 0; s < opts_.postSmooth; ++s)
            smoothFineMulti(r, z, K, fine_extra, w, pool);
        blockedDotMulti(r, z, n, K, pool, w.batch_block_sums_.data(), rz);
    }
    mw.cycle_seconds += seconds(t_start);
    mw.cycles += K;
    if (rz_out)
        for (std::size_t k = 0; k < K; ++k)
            rz_out[k] = rz[k];
}

} // namespace xylem::thermal::mg
