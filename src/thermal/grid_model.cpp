#include "thermal/grid_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "thermal/mg/multigrid.hpp"
#include "thermal/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define XYLEM_RESTRICT __restrict__
#else
#define XYLEM_RESTRICT
#endif

namespace xylem::thermal {

namespace {

// Deterministic block sizes for the partitioned kernels. The block
// structure depends only on the problem size — never on the thread
// count — and every reduction sums its per-block partials serially in
// ascending block order, so a solve is bit-identical whether the
// blocks run inline (threads = 1) or on a pool (threads = N).
constexpr std::size_t kDotBlock = 4096; ///< flat vector-kernel block
constexpr std::size_t kRowChunk = 16;   ///< grid rows per apply block
constexpr std::size_t kColChunk = 1024; ///< XY columns per line chunk

// SIMD discipline (DESIGN.md §17): XYLEM_SIMD_LOOP goes only on loops
// with no floating-point reduction — elementwise updates and
// independent-column sweeps. Never on the fused dot/norm loops below:
// vectorising a reduction reassociates the scalar accumulation the
// batch twins replicate per column, breaking batch ≡ solo identity.

std::size_t
blockCount(std::size_t n, std::size_t block)
{
    return (n + block - 1) / block;
}

using runtime::ThreadPool;

/** r = b (cold start: A·0 = 0 exactly); returns Σ b². */
double
blockedCopyResidual(const double *XYLEM_RESTRICT b, double *XYLEM_RESTRICT r,
                    std::size_t n, ThreadPool *pool, double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
            r[i] = b[i];
            s += b[i] * b[i];
        }
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

/** r = b - q (warm start); returns Σ b². */
double
blockedInitResidual(const double *XYLEM_RESTRICT b,
                    const double *XYLEM_RESTRICT q,
                    double *XYLEM_RESTRICT r, std::size_t n,
                    ThreadPool *pool, double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
            r[i] = b[i] - q[i];
            s += b[i] * b[i];
        }
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

double
blockedSumSq(const double *XYLEM_RESTRICT v, std::size_t n,
             ThreadPool *pool, double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i)
            s += v[i] * v[i];
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

/** x += α p;  r -= α q;  returns the new Σ r². */
double
blockedAxpyResidual(double alpha, const double *XYLEM_RESTRICT p,
                    const double *XYLEM_RESTRICT q,
                    double *XYLEM_RESTRICT x, double *XYLEM_RESTRICT r,
                    std::size_t n, ThreadPool *pool, double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
            x[i] += alpha * p[i];
            const double ri = r[i] - alpha * q[i];
            r[i] = ri;
            s += ri * ri;
        }
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

/** z = r .* inv_diag (Jacobi), fused with the r·z reduction. */
double
blockedJacobi(const double *XYLEM_RESTRICT r,
              const double *XYLEM_RESTRICT inv_diag,
              double *XYLEM_RESTRICT z, std::size_t n, ThreadPool *pool,
              double *bs)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
            const double zi = r[i] * inv_diag[i];
            z[i] = zi;
            s += r[i] * zi;
        }
        bs[blk] = s;
    });
    double total = 0.0;
    for (std::size_t blk = 0; blk < nb; ++blk)
        total += bs[blk];
    return total;
}

/** p = z + β p. */
void
blockedUpdateDirection(double beta, const double *XYLEM_RESTRICT z,
                       double *XYLEM_RESTRICT p, std::size_t n,
                       ThreadPool *pool)
{
    const std::size_t nb = blockCount(n, kDotBlock);
    ThreadPool::parallelFor(pool, nb, [&](std::size_t blk) {
        const std::size_t i0 = blk * kDotBlock;
        const std::size_t i1 = std::min(n, i0 + kDotBlock);
        XYLEM_SIMD_LOOP
        for (std::size_t i = i0; i < i1; ++i)
            p[i] = z[i] + beta * p[i];
    });
}

/**
 * The fused per-row stencil: for every cell of one grid row,
 *   y = (diag + extra) x  -  Σ g_neighbour x_neighbour
 * gathering the vertical (below/above), lateral (west/east,
 * south/north), and periphery-rim legs in a single pass. Absent
 * neighbours arrive as an all-zero coefficient stream paired with any
 * in-bounds dummy x pointer (0 · x = 0), so the loop body is
 * branch-free. Only y is written, so the many read streams may alias
 * each other freely under restrict.
 *
 * Returns Σ x·y over the row (the caller's fused dot product).
 */
double
fusedApplyRow(std::size_t nx, const double *XYLEM_RESTRICT dg,
              const double *XYLEM_RESTRICT ed,
              const double *XYLEM_RESTRICT xc,
              const double *XYLEM_RESTRICT xb,
              const double *XYLEM_RESTRICT xa,
              const double *XYLEM_RESTRICT xs,
              const double *XYLEM_RESTRICT xn,
              const double *XYLEM_RESTRICT gvd,
              const double *XYLEM_RESTRICT gvu,
              const double *XYLEM_RESTRICT gys,
              const double *XYLEM_RESTRICT gyn,
              const double *XYLEM_RESTRICT gx,
              const double *XYLEM_RESTRICT rim, double x_peri,
              double *XYLEM_RESTRICT y)
{
    if (nx == 1) {
        const double v = (dg[0] + ed[0]) * xc[0] -
                         (gvd[0] * xb[0] + gvu[0] * xa[0] +
                          gys[0] * xs[0] + gyn[0] * xn[0] +
                          rim[0] * x_peri);
        y[0] = v;
        return xc[0] * v;
    }
    // The stencil pass writes only y[ix] from independent reads, so
    // the interior loop vectorises freely; the x·y reduction runs as
    // a separate scalar pass in ascending ix — the exact accumulation
    // order the batch twins replicate per column, which a vectorised
    // reduction would reassociate.
    {
        // west edge: no x-1 neighbour
        y[0] = (dg[0] + ed[0]) * xc[0] -
               (gvd[0] * xb[0] + gvu[0] * xa[0] + gys[0] * xs[0] +
                gyn[0] * xn[0] + rim[0] * x_peri + gx[0] * xc[1]);
    }
    XYLEM_SIMD_LOOP
    for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
        y[ix] = (dg[ix] + ed[ix]) * xc[ix] -
                (gvd[ix] * xb[ix] + gvu[ix] * xa[ix] +
                 gys[ix] * xs[ix] + gyn[ix] * xn[ix] +
                 rim[ix] * x_peri + gx[ix - 1] * xc[ix - 1] +
                 gx[ix] * xc[ix + 1]);
    }
    {
        // east edge: no x+1 neighbour
        const std::size_t ix = nx - 1;
        y[ix] = (dg[ix] + ed[ix]) * xc[ix] -
                (gvd[ix] * xb[ix] + gvu[ix] * xa[ix] +
                 gys[ix] * xs[ix] + gyn[ix] * xn[ix] +
                 rim[ix] * x_peri + gx[ix - 1] * xc[ix - 1]);
    }
    double dot = 0.0;
    for (std::size_t ix = 0; ix < nx; ++ix)
        dot += xc[ix] * y[ix];
    return dot;
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SolverWorkspace::SolverWorkspace() = default;
SolverWorkspace::~SolverWorkspace() = default;

const char *
toString(Preconditioner p)
{
    switch (p) {
    case Preconditioner::Jacobi:
        return "jacobi";
    case Preconditioner::VerticalLine:
        return "line";
    case Preconditioner::Multigrid:
        return "mg";
    }
    return "jacobi";
}

const char *
toString(SolverKind k)
{
    return k == SolverKind::Multigrid ? "mg" : "cg";
}

GridModel::GridModel(const stack::BuiltStack &stk, SolverOptions opts)
    : stack_(&stk), opts_(opts)
{
    XYLEM_ASSERT(opts_.convectionResistance > 0.0,
                 "convection resistance must be positive");
    assemble();
    // Build the multigrid hierarchy eagerly (solves are const and may
    // run concurrently; there must be no lazy mutable setup).
    if (opts_.kind == SolverKind::Multigrid ||
        opts_.preconditioner == Preconditioner::Multigrid)
        mg_ = std::make_unique<mg::Hierarchy>(*this);
}

GridModel::~GridModel() = default;

void
GridModel::addGround(std::size_t node, double g)
{
    ground_[node] += g;
    diag_[node] += g;
}

void
GridModel::assemble()
{
    const auto &stk = *stack_;
    const auto &grid = stk.grid;
    num_layers_ = stk.layers.size();
    nx_ = grid.nx();
    ny_ = grid.ny();
    cells_ = grid.cells();

    // Periphery nodes come after the layer-major grid nodes.
    std::size_t next_node = num_layers_ * cells_;
    periphery_.clear();
    for (std::size_t l = 0; l < num_layers_; ++l) {
        if (stk.layers[l].fullSide > 0.0) {
            Periphery p;
            p.layer = l;
            p.node = next_node++;
            periphery_.push_back(p);
        }
    }
    num_nodes_ = next_node;

    vert_.assign(num_layers_ > 0 ? num_layers_ - 1 : 0,
                 std::vector<double>(cells_, 0.0));
    lat_x_.assign(num_layers_, std::vector<double>(cells_, 0.0));
    lat_y_.assign(num_layers_, std::vector<double>(cells_, 0.0));
    ground_.assign(num_nodes_, 0.0);
    diag_.assign(num_nodes_, 0.0);
    capacity_.assign(num_nodes_, 0.0);
    periph_vert_.assign(periphery_.empty() ? 0 : periphery_.size() - 1, 0.0);
    rim_g_.assign(num_layers_, {});
    periph_node_of_layer_.assign(num_layers_, -1);
    zeros_.assign(cells_, 0.0);

    const double dx = grid.cellWidth();
    const double dy = grid.cellHeight();
    const double cell_area = grid.cellArea();
    const double die_area = grid.extent().area();
    const double die_side = std::sqrt(die_area);

    // --- vertical conductances between stacked cells ----------------
    for (std::size_t l = 0; l + 1 < num_layers_; ++l) {
        const auto &lo = stk.layers[l];
        const auto &hi = stk.layers[l + 1];
        for (std::size_t c = 0; c < cells_; ++c) {
            const double r = 0.5 * lo.thickness / lo.conductivity.data()[c] +
                             0.5 * hi.thickness / hi.conductivity.data()[c];
            const double g = cell_area / r;
            vert_[l][c] = g;
            diag_[l * cells_ + c] += g;
            diag_[(l + 1) * cells_ + c] += g;
        }
    }

    // --- lateral conductances within each layer ----------------------
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &layer = stk.layers[l];
        const auto &lam = layer.conductivity.data();
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                const std::size_t c = iy * nx_ + ix;
                if (ix + 1 < nx_) {
                    const double r = 0.5 * dx / (lam[c] * layer.thickness *
                                                 dy) +
                                     0.5 * dx / (lam[c + 1] *
                                                 layer.thickness * dy);
                    const double g = 1.0 / r;
                    lat_x_[l][c] = g;
                    diag_[l * cells_ + c] += g;
                    diag_[l * cells_ + c + 1] += g;
                }
                if (iy + 1 < ny_) {
                    const double r = 0.5 * dy / (lam[c] * layer.thickness *
                                                 dx) +
                                     0.5 * dy / (lam[c + nx_] *
                                                 layer.thickness * dx);
                    const double g = 1.0 / r;
                    lat_y_[l][c] = g;
                    diag_[l * cells_ + c] += g;
                    diag_[l * cells_ + c + nx_] += g;
                }
            }
        }
    }

    // --- per-cell capacitance ----------------------------------------
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &layer = stk.layers[l];
        const auto &cap = layer.heatCapacity.data();
        for (std::size_t c = 0; c < cells_; ++c)
            capacity_[l * cells_ + c] = cap[c] * cell_area * layer.thickness;
    }

    // --- periphery nodes of the extended layers -----------------------
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        auto &p = periphery_[k];
        const auto &layer = stk.layers[p.layer];
        const double side = layer.fullSide;
        XYLEM_ASSERT(side * side > die_area,
                     "extended layer must be larger than the die");
        const double annulus_area = side * side - die_area;
        const double spread_dist = (side - die_side) / 4.0;
        const double lambda = layer.conductivity.data()[0];
        p.edgeG = lambda * layer.thickness *
                  ((dx + dy) / 2.0) / spread_dist;
        // Boundary edges: attach one edgeG per die-rim cell edge.
        // (The diag of the boundary cells and of the periphery node
        //  both grow by edgeG per edge.) rim_g_ keeps the same
        //  coupling as a dense per-cell array so the fused sweep can
        //  gather it branch-free.
        periph_node_of_layer_[p.layer] =
            static_cast<std::ptrdiff_t>(p.node);
        rim_g_[p.layer].assign(cells_, 0.0);
        std::size_t num_edges = 0;
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                std::size_t edges = 0;
                if (ix == 0 || ix + 1 == nx_)
                    ++edges;
                if (iy == 0 || iy + 1 == ny_)
                    ++edges;
                if (!edges)
                    continue;
                const std::size_t node = p.layer * cells_ + iy * nx_ + ix;
                diag_[node] += p.edgeG * static_cast<double>(edges);
                rim_g_[p.layer][iy * nx_ + ix] =
                    p.edgeG * static_cast<double>(edges);
                num_edges += edges;
            }
        }
        diag_[p.node] += p.edgeG * static_cast<double>(num_edges);
        p.capacity = layer.heatCapacity.data()[0] * annulus_area *
                     layer.thickness;
        capacity_[p.node] = p.capacity;

        // Vertical coupling with the next extended layer (IHS -> sink)
        // over their shared annular overlap.
        if (k + 1 < periphery_.size()) {
            const auto &q_layer = stk.layers[periphery_[k + 1].layer];
            XYLEM_ASSERT(periphery_[k + 1].layer == p.layer + 1,
                         "extended layers must be adjacent");
            const double overlap =
                std::min(side, q_layer.fullSide) *
                    std::min(side, q_layer.fullSide) -
                die_area;
            const double r =
                0.5 * layer.thickness / lambda +
                0.5 * q_layer.thickness / q_layer.conductivity.data()[0];
            periph_vert_[k] = overlap / r;
            diag_[p.node] += periph_vert_[k];
            diag_[periphery_[k + 1].node] += periph_vert_[k];
        }
    }

    // --- convection boundary at the heat-sink top ----------------------
    XYLEM_ASSERT(stk.heatSink >= 0, "stack must end in a heat sink");
    const auto &sink = stk.layers[static_cast<std::size_t>(stk.heatSink)];
    const double sink_area = sink.fullSide > 0.0
                                 ? sink.fullSide * sink.fullSide
                                 : die_area;
    const double g_total = 1.0 / opts_.convectionResistance;
    const double lambda_sink = sink.conductivity.data()[0];
    // Centre cells: series of half-thickness conduction + area share
    // of the lumped convection conductance.
    for (std::size_t c = 0; c < cells_; ++c) {
        const double g_conv = g_total * cell_area / sink_area;
        const double g_half = cell_area / (0.5 * sink.thickness /
                                           lambda_sink);
        const double g = 1.0 / (1.0 / g_conv + 1.0 / g_half);
        addGround(static_cast<std::size_t>(stk.heatSink) * cells_ + c, g);
    }
    // Sink periphery: the remaining convection area.
    for (const auto &p : periphery_) {
        if (static_cast<int>(p.layer) != stk.heatSink)
            continue;
        const double conv_area = sink_area - die_area;
        const double g_conv = g_total * conv_area / sink_area;
        const double g_half = conv_area / (0.5 * sink.thickness /
                                           lambda_sink);
        addGround(p.node, 1.0 / (1.0 / g_conv + 1.0 / g_half));
    }
}

void
GridModel::fusedApply(const double *x, double *y, const double *extra_diag,
                      runtime::ThreadPool *pool, double *dot_out,
                      double *block_sums) const
{
    // One gather sweep per grid row: every node's value is produced by
    // exactly one block, so the blocks are race-free by construction
    // and the kernel writes y exactly once per node.
    const std::size_t row_chunks = blockCount(ny_, kRowChunk);
    const std::size_t nblocks = num_layers_ * row_chunks;
    const double *zeros = zeros_.data();
    ThreadPool::parallelFor(pool, nblocks, [&](std::size_t blk) {
        const std::size_t l = blk / row_chunks;
        const std::size_t iy0 = (blk % row_chunks) * kRowChunk;
        const std::size_t iy1 = std::min(ny_, iy0 + kRowChunk);
        const std::size_t base = l * cells_;
        const double *xl = x + base;
        const double *gx_l = lat_x_[l].data();
        const double *gy_l = lat_y_[l].data();
        const bool below = l > 0;
        const bool above = l + 1 < num_layers_;
        const double *gvd_l = below ? vert_[l - 1].data() : zeros;
        const double *xb_l = below ? x + base - cells_ : x;
        const double *gvu_l = above ? vert_[l].data() : zeros;
        const double *xa_l = above ? x + base + cells_ : x;
        const bool rimmed = !rim_g_[l].empty();
        const double *rim_l = rimmed ? rim_g_[l].data() : zeros;
        const double x_peri =
            rimmed ? x[periph_node_of_layer_[l]] : 0.0;
        double sum = 0.0;
        for (std::size_t iy = iy0; iy < iy1; ++iy) {
            const std::size_t roff = iy * nx_;
            const double *gys = iy > 0 ? gy_l + roff - nx_ : zeros;
            const double *xs = iy > 0 ? xl + roff - nx_ : xl;
            // lat_y_ entries of the last row are already zero.
            const double *gyn = gy_l + roff;
            const double *xn = iy + 1 < ny_ ? xl + roff + nx_ : xl;
            const double *edp =
                extra_diag ? extra_diag + base + roff : zeros;
            sum += fusedApplyRow(nx_, diag_.data() + base + roff, edp,
                                 xl + roff, xb_l + roff, xa_l + roff, xs,
                                 xn, gvd_l + roff, gvu_l + roff, gys, gyn,
                                 gx_l + roff, rim_l + roff, x_peri,
                                 y + base + roff);
        }
        if (block_sums)
            block_sums[blk] = sum;
    });

    // Periphery tail, serial and in fixed order: each node gathers its
    // rim coupling (boundary cells visited row 0, then the two edge
    // columns of the middle rows, then the last row) plus the vertical
    // legs to the neighbouring periphery nodes.
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const auto &p = periphery_[k];
        const double *xl = x + p.layer * cells_;
        const double *rim = rim_g_[p.layer].data();
        double acc = 0.0;
        for (std::size_t ix = 0; ix < nx_; ++ix)
            acc += rim[ix] * xl[ix];
        for (std::size_t iy = 1; iy + 1 < ny_; ++iy) {
            acc += rim[iy * nx_] * xl[iy * nx_];
            if (nx_ > 1)
                acc += rim[iy * nx_ + nx_ - 1] * xl[iy * nx_ + nx_ - 1];
        }
        if (ny_ > 1) {
            const std::size_t roff = (ny_ - 1) * nx_;
            for (std::size_t ix = 0; ix < nx_; ++ix)
                acc += rim[roff + ix] * xl[roff + ix];
        }
        double d = diag_[p.node];
        if (extra_diag)
            d += extra_diag[p.node];
        double v = d * x[p.node] - acc;
        if (k > 0)
            v -= periph_vert_[k - 1] * x[periphery_[k - 1].node];
        if (k + 1 < periphery_.size())
            v -= periph_vert_[k] * x[periphery_[k + 1].node];
        y[p.node] = v;
    }

    if (dot_out) {
        double dot = 0.0;
        for (std::size_t blk = 0; blk < nblocks; ++blk)
            dot += block_sums[blk];
        for (const auto &p : periphery_)
            dot += x[p.node] * y[p.node];
        *dot_out = dot;
    }
}

void
GridModel::apply(const std::vector<double> &x, std::vector<double> &y,
                 const std::vector<double> *extra_diag) const
{
    XYLEM_ASSERT(x.size() == num_nodes_, "apply: wrong vector size");
    y.resize(num_nodes_);
    fusedApply(x.data(), y.data(),
               extra_diag ? extra_diag->data() : nullptr, nullptr, nullptr,
               nullptr);
}

std::vector<double>
GridModel::denseMatrix(const std::vector<double> *extra_diag) const
{
    const std::size_t n = num_nodes_;
    // 6144 nodes is already a 300 MB matrix; anything bigger is a bug
    // in the calling test, not a use case.
    XYLEM_ASSERT(n <= 6144, "denseMatrix: grid too large for a dense "
                            "assembly (", n, " nodes)");
    std::vector<double> m(n * n, 0.0);
    auto diag = [&](std::size_t i, double g) { m[i * n + i] += g; };
    auto couple = [&](std::size_t a, std::size_t b, double g) {
        m[a * n + a] += g;
        m[b * n + b] += g;
        m[a * n + b] -= g;
        m[b * n + a] -= g;
    };

    for (std::size_t i = 0; i < n; ++i) {
        diag(i, ground_[i]);
        if (extra_diag)
            diag(i, (*extra_diag)[i]);
    }
    for (std::size_t l = 0; l + 1 < num_layers_; ++l)
        for (std::size_t c = 0; c < cells_; ++c)
            couple(l * cells_ + c, (l + 1) * cells_ + c, vert_[l][c]);
    for (std::size_t l = 0; l < num_layers_; ++l) {
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                const std::size_t c = iy * nx_ + ix;
                if (ix + 1 < nx_)
                    couple(l * cells_ + c, l * cells_ + c + 1,
                           lat_x_[l][c]);
                if (iy + 1 < ny_)
                    couple(l * cells_ + c, l * cells_ + c + nx_,
                           lat_y_[l][c]);
            }
        }
    }
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const auto &p = periphery_[k];
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                double edges = 0.0;
                if (ix == 0 || ix + 1 == nx_)
                    edges += 1.0;
                if (iy == 0 || iy + 1 == ny_)
                    edges += 1.0;
                if (edges > 0.0)
                    couple(p.layer * cells_ + iy * nx_ + ix, p.node,
                           p.edgeG * edges);
            }
        }
        if (k + 1 < periphery_.size())
            couple(p.node, periphery_[k + 1].node, periph_vert_[k]);
    }
    return m;
}

void
GridModel::buildLineFactorization(const double *extra_diag,
                                  SolverWorkspace &w) const
{
    // Invariant: the factorisation depends only on diag_ + extra_diag.
    // diag_ is immutable after assemble(), and extra_diag is constant
    // for the duration of one solve (it is the transient C/Δt shift,
    // built once per step), so this runs ONCE per solve and every CG
    // iteration reuses w.line_cp_ / w.line_inv_denom_ — the historic
    // per-iteration Thomas refactorisation (with its two heap
    // allocations and two divisions per node) is gone.
    const std::size_t L = num_layers_;
    const std::size_t nchunks = blockCount(cells_, kColChunk);
    double *XYLEM_RESTRICT cp = w.line_cp_.data();
    double *XYLEM_RESTRICT inv = w.line_inv_denom_.data();
    const double *dgv = diag_.data();
    const double *zeros = zeros_.data();
    ThreadPool::parallelFor(nullptr, nchunks, [&](std::size_t chunk) {
        const std::size_t c0 = chunk * kColChunk;
        const std::size_t c1 = std::min(cells_, c0 + kColChunk);
        const double *g0 = L > 1 ? vert_[0].data() : zeros;
        for (std::size_t c = c0; c < c1; ++c) {
            double d = dgv[c];
            if (extra_diag)
                d += extra_diag[c];
            XYLEM_ASSERT(d > 0.0, "singular diagonal entry");
            const double i = 1.0 / d;
            inv[c] = i;
            cp[c] = -g0[c] * i;
        }
        for (std::size_t l = 1; l < L; ++l) {
            const double *g = vert_[l - 1].data();
            const double *gu = l + 1 < L ? vert_[l].data() : zeros;
            const std::size_t off = l * cells_;
            for (std::size_t c = c0; c < c1; ++c) {
                double d = dgv[off + c];
                if (extra_diag)
                    d += extra_diag[off + c];
                // denom = d - off·cp_prev with off = -g: the Thomas
                // pivot; SPD assembly keeps it positive.
                const double den = d + g[c] * cp[off - cells_ + c];
                XYLEM_ASSERT(den > 0.0,
                             "line preconditioner lost positivity");
                const double i = 1.0 / den;
                inv[off + c] = i;
                cp[off + c] = -gu[c] * i;
            }
        }
    });
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const std::size_t node = periphery_[k].node;
        double d = diag_[node];
        if (extra_diag)
            d += extra_diag[node];
        XYLEM_ASSERT(d > 0.0, "singular diagonal entry");
        w.periph_inv_diag_[k] = 1.0 / d;
    }
}

double
GridModel::applyLineCached(const double *r, double *z, SolverWorkspace &w,
                           runtime::ThreadPool *pool) const
{
    const std::size_t L = num_layers_;
    const double *XYLEM_RESTRICT cp = w.line_cp_.data();
    const double *XYLEM_RESTRICT inv = w.line_inv_denom_.data();
    const std::size_t nchunks = blockCount(cells_, kColChunk);
    double *bs = w.block_sums_.data();
    ThreadPool::parallelFor(pool, nchunks, [&](std::size_t chunk) {
        const std::size_t c0 = chunk * kColChunk;
        const std::size_t c1 = std::min(cells_, c0 + kColChunk);
        // Forward sweep, layer-major so each pass streams contiguous
        // memory: dp is written straight into z. Each XY column's
        // recurrence is carried along layers only, so vectorising
        // across columns never reorders a column's arithmetic.
        XYLEM_SIMD_LOOP
        for (std::size_t c = c0; c < c1; ++c)
            z[c] = r[c] * inv[c];
        for (std::size_t l = 1; l < L; ++l) {
            const double *g = vert_[l - 1].data();
            const std::size_t off = l * cells_;
            XYLEM_SIMD_LOOP
            for (std::size_t c = c0; c < c1; ++c)
                z[off + c] =
                    (r[off + c] + g[c] * z[off - cells_ + c]) * inv[off + c];
        }
        // Back substitution with the r·z reduction fused in: top layer
        // first, then descending — a fixed order per chunk. No SIMD
        // pragma: the fused sum is a reduction (see the discipline
        // note at the top of this file).
        double sum = 0.0;
        {
            const std::size_t off = (L - 1) * cells_;
            for (std::size_t c = c0; c < c1; ++c)
                sum += r[off + c] * z[off + c];
        }
        for (std::size_t l = L - 1; l-- > 0;) {
            const std::size_t off = l * cells_;
            for (std::size_t c = c0; c < c1; ++c) {
                const double v = z[off + c] - cp[off + c] * z[off + cells_ + c];
                z[off + c] = v;
                sum += r[off + c] * v;
            }
        }
        bs[chunk] = sum;
    });
    double rz = 0.0;
    for (std::size_t chunk = 0; chunk < nchunks; ++chunk)
        rz += bs[chunk];
    // Periphery nodes: plain Jacobi.
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const std::size_t node = periphery_[k].node;
        const double v = r[node] * w.periph_inv_diag_[k];
        z[node] = v;
        rz += r[node] * v;
    }
    return rz;
}

void
GridModel::applyLinePreconditioner(const std::vector<double> &r,
                                   std::vector<double> &z,
                                   const std::vector<double> *extra_diag)
    const
{
    XYLEM_ASSERT(r.size() == num_nodes_,
                 "applyLinePreconditioner: wrong vector size");
    z.resize(num_nodes_);
    SolverWorkspace &w = threadLocalWorkspace();
    prepare(w);
    buildLineFactorization(extra_diag ? extra_diag->data() : nullptr, w);
    applyLineCached(r.data(), z.data(), w, nullptr);
}

SolverWorkspace &
GridModel::threadLocalWorkspace()
{
    thread_local SolverWorkspace ws;
    return ws;
}

void
GridModel::prepare(SolverWorkspace &w) const
{
    const std::size_t n = num_nodes_;
    const std::size_t line_n = num_layers_ * cells_;
    const std::size_t blocks =
        std::max({blockCount(n, kDotBlock),
                  num_layers_ * blockCount(ny_, kRowChunk),
                  blockCount(cells_, kColChunk)});
    if (w.sized_for_ == n && w.line_cp_.size() == line_n &&
        w.periph_inv_diag_.size() == periphery_.size() &&
        w.block_sums_.size() >= blocks &&
        (!mg_ || (w.mg_ && w.mg_->sized_for == mg_->id()))) {
        runtime::Metrics::global().counter("solver.workspace_reuses")
            .increment();
        return;
    }
    w.r_.resize(n);
    w.z_.resize(n);
    w.p_.resize(n);
    w.q_.resize(n);
    w.inv_diag_.resize(n);
    w.b_.resize(n);
    w.x_.resize(n);
    w.extra_.resize(n);
    w.line_cp_.resize(line_n);
    w.line_inv_denom_.resize(line_n);
    w.periph_inv_diag_.resize(periphery_.size());
    w.block_sums_.resize(blocks);
    w.sized_for_ = n;
    if (mg_)
        mg_->prepareWorkspace(w);
}

runtime::ThreadPool *
GridModel::poolFor(SolverWorkspace &w) const
{
    // The ambient task context may override the configured thread
    // count (the service's load-adaptive policy: deep queue ⇒ 1
    // thread per solve, shallow queue ⇒ threaded solves) without any
    // plumbing through StackSystem. 0 = no override. Thread count
    // never changes results (DESIGN.md §17), only speed.
    const TaskContext *tctx = currentTaskContext();
    const int requested = (tctx && tctx->solverThreads > 0)
                              ? tctx->solverThreads
                              : opts_.threads;
    const int want = runtime::ThreadPool::resolveJobs(requested);
    if (want <= 1)
        return nullptr;
    if (!w.pool_ || w.pool_threads_ != want) {
        w.pool_ = std::make_unique<runtime::ThreadPool>(want);
        w.pool_threads_ = want;
    }
    return w.pool_.get();
}

SolveStats
GridModel::solve(const std::vector<double> &b, std::vector<double> &x,
                 const std::vector<double> *extra_diag, SolverWorkspace &w,
                 bool x_is_zero) const
{
    SolveStats stats;
    const std::size_t n = num_nodes_;
    XYLEM_ASSERT(b.size() == n && x.size() == n, "solve: wrong vector size");

    using Clock = std::chrono::steady_clock;
    runtime::ThreadPool *pool = poolFor(w);
    const double *ed = extra_diag ? extra_diag->data() : nullptr;
    double *bs = w.block_sums_.data();
    double *rv = w.r_.data();
    double *zv = w.z_.data();
    double *pv = w.p_.data();
    double *qv = w.q_.data();
    double *xv = x.data();
    const double *bv = b.data();
    w.apply_seconds_ = 0.0;
    w.precond_seconds_ = 0.0;

    // The fault-tolerance layer steers the solver through the ambient
    // task context. On the alternate-method rung a multigrid
    // configuration falls back to line-CG (the PR-3 ladder thus reads
    // MG-CG → cold MG-CG → line-CG → dense reference) and the classic
    // preconditioners flip Jacobi <-> VerticalLine; a forced-non-
    // convergence fault skips the iteration loop so the attempt
    // reliably misses tolerance, and strict mode turns non-convergence
    // into a typed error the sweep runner can escalate.
    const TaskContext *ctx = currentTaskContext();
    SolverKind kind = opts_.kind;
    Preconditioner pre = opts_.preconditioner;
    if (ctx && ctx->alternatePreconditioner()) {
        kind = SolverKind::CG;
        if (opts_.kind == SolverKind::Multigrid ||
            opts_.preconditioner == Preconditioner::Multigrid)
            pre = Preconditioner::VerticalLine;
        else
            pre = opts_.preconditioner == Preconditioner::VerticalLine
                      ? Preconditioner::Jacobi
                      : Preconditioner::VerticalLine;
    }
    if (!mg_ && (kind == SolverKind::Multigrid ||
                 pre == Preconditioner::Multigrid)) {
        // No hierarchy built (options changed behind our back); the
        // line preconditioner is the closest safe fallback.
        kind = SolverKind::CG;
        pre = Preconditioner::VerticalLine;
    }
    const bool use_mg = kind == SolverKind::Multigrid ||
                        pre == Preconditioner::Multigrid;
    const bool line = pre == Preconditioner::VerticalLine;
    const bool forced_nonconvergence =
        ctx && ctx->forceCgNonConvergence && !ctx->denseSolve();
    const int max_iterations =
        forced_nonconvergence ? 0 : opts_.maxIterations;

    auto flushTimings = [&] {
        auto &metrics = runtime::Metrics::global();
        metrics.addTiming("solver.apply_seconds", w.apply_seconds_);
        metrics.addTiming("solver.precond_seconds", w.precond_seconds_);
        if (use_mg && w.mg_) {
            // cycle_seconds is the V-cycle share of precond_seconds.
            metrics.addTiming("solver.mg.cycle_seconds",
                              w.mg_->cycle_seconds);
            metrics.counter("solver.mg.cycles").add(w.mg_->cycles);
        }
    };

    if (use_mg && w.mg_) {
        // Reset the per-solve cycle telemetry up front so an early
        // return below cannot flush a previous solve's numbers.
        w.mg_->cycle_seconds = 0.0;
        w.mg_->cycles = 0;
    }

    double b_norm2;
    if (x_is_zero) {
        // A·0 = 0 exactly, so r = b bit-identically — skip the mat-vec.
        b_norm2 = blockedCopyResidual(bv, rv, n, pool, bs);
    } else {
        const auto t0 = Clock::now();
        fusedApply(xv, qv, ed, pool, nullptr, nullptr);
        w.apply_seconds_ += seconds(t0);
        b_norm2 = blockedInitResidual(bv, qv, rv, n, pool, bs);
    }
    if (b_norm2 == 0.0) {
        x.assign(n, 0.0);
        stats.converged = true;
        flushTimings();
        return stats;
    }
    const double target2 = opts_.tolerance * opts_.tolerance * b_norm2;

    {
        const auto t0 = Clock::now();
        if (use_mg) {
            // The fine-level smoother reuses the cached line
            // factorisation; the hierarchy then coarsens the C/Δt
            // shift and factors its own levels.
            buildLineFactorization(ed, w);
            mg_->prepareSolve(extra_diag, w, pool);
        } else if (line) {
            buildLineFactorization(ed, w);
        } else {
            double *invd = w.inv_diag_.data();
            const double *dgv = diag_.data();
            ThreadPool::parallelFor(
                pool, blockCount(n, kDotBlock), [&](std::size_t blk) {
                    const std::size_t i0 = blk * kDotBlock;
                    const std::size_t i1 = std::min(n, i0 + kDotBlock);
                    for (std::size_t i = i0; i < i1; ++i) {
                        double d = dgv[i];
                        if (ed)
                            d += ed[i];
                        XYLEM_ASSERT(d > 0.0, "singular diagonal entry");
                        invd[i] = 1.0 / d;
                    }
                });
        }
        w.precond_seconds_ += seconds(t0);
    }

    // z = M⁻¹ r (or B r for multigrid) with the r·z reduction fused
    // into the same sweep.
    auto precondition = [&]() -> double {
        const auto t0 = Clock::now();
        const double rz =
            use_mg ? mg_->applyVCycle(rv, zv, ed, w, pool)
            : line ? applyLineCached(rv, zv, w, pool)
                   : blockedJacobi(rv, w.inv_diag_.data(), zv, n, pool, bs);
        w.precond_seconds_ += seconds(t0);
        return rz;
    };

    double r_norm2;
    if (kind == SolverKind::Multigrid) {
        // Standalone V-cycle iteration: x += B r, r = b - A x. The
        // update reuses the CG z/q buffers (free in this mode).
        r_norm2 = blockedSumSq(rv, n, pool, bs);
        for (int it = 0; it < max_iterations && r_norm2 > target2; ++it) {
            if ((it & 7) == 0)
                taskCheckpoint(); // cooperative deadline/cancel point
            precondition();
            {
                const auto t0 = Clock::now();
                fusedApply(zv, qv, ed, pool, nullptr, nullptr);
                w.apply_seconds_ += seconds(t0);
            }
            r_norm2 =
                blockedAxpyResidual(1.0, zv, qv, xv, rv, n, pool, bs);
            stats.iterations = it + 1;
        }
    } else {
        double rz = precondition();
        std::copy(w.z_.begin(), w.z_.end(), w.p_.begin());
        r_norm2 = blockedSumSq(rv, n, pool, bs);

        for (int it = 0; it < max_iterations && r_norm2 > target2; ++it) {
            if ((it & 31) == 0)
                taskCheckpoint(); // cooperative deadline/cancel point
            double pq;
            {
                const auto t0 = Clock::now();
                fusedApply(pv, qv, ed, pool, &pq, bs);
                w.apply_seconds_ += seconds(t0);
            }
            if (!(pq > 0.0))
                raise(ErrorCode::SolverBreakdown,
                      "CG breakdown: search direction lost positive "
                      "definiteness (p'Ap = ", pq, " at iteration ", it,
                      ")");
            const double alpha = rz / pq;
            r_norm2 =
                blockedAxpyResidual(alpha, pv, qv, xv, rv, n, pool, bs);
            const double rz_next = precondition();
            const double beta = rz_next / rz;
            rz = rz_next;
            blockedUpdateDirection(beta, zv, pv, n, pool);
            stats.iterations = it + 1;
        }
    }
    stats.relativeResidual = std::sqrt(r_norm2 / b_norm2);
    stats.converged = !forced_nonconvergence && r_norm2 <= target2;
    flushTimings();
    if (!stats.converged) {
        if (ctx && ctx->strictSolver)
            raise(ErrorCode::SolverNonConvergence,
                  "thermal CG did not converge: residual ",
                  stats.relativeResidual, " after ", stats.iterations,
                  " iterations",
                  forced_nonconvergence ? " (forced by fault injection)"
                                        : "");
        warn("thermal CG did not converge: residual ",
             stats.relativeResidual, " after ", stats.iterations,
             " iterations");
    }
    return stats;
}

void
GridModel::fillRhs(const PowerMap &power, double *b) const
{
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &f = power.layer(static_cast<int>(l)).data();
        for (std::size_t c = 0; c < cells_; ++c)
            b[l * cells_ + c] = f[c];
    }
    for (const auto &p : periphery_)
        b[p.node] = 0.0;
}

TemperatureField
GridModel::solveSteady(const PowerMap &power, SolveStats *stats,
                       const TemperatureField *warm_start,
                       SolverWorkspace *workspace) const
{
    SolverWorkspace &w = workspace ? *workspace : threadLocalWorkspace();
    prepare(w);
    fillRhs(power, w.b_.data());
    // On the cold-start escalation rung a stale warm start is a prime
    // failure suspect, so drop it and solve from ambient.
    const TaskContext *ctx = currentTaskContext();
    if (ctx && ctx->coldStart())
        warm_start = nullptr;
    bool x_is_zero = true;
    if (warm_start) {
        XYLEM_ASSERT(warm_start->numNodes() == num_nodes_,
                     "warm start has wrong shape");
        for (std::size_t i = 0; i < num_nodes_; ++i)
            w.x_[i] = warm_start->nodes()[i] - opts_.ambientCelsius;
        x_is_zero = false;
    } else {
        std::fill(w.x_.begin(), w.x_.end(), 0.0);
    }
    const SolveStats s = solve(w.b_, w.x_, nullptr, w, x_is_zero);
    if (stats)
        *stats = s;

    TemperatureField out(num_layers_, nx_, ny_, periphery_.size(),
                         opts_.ambientCelsius);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out.nodes()[i] = w.x_[i] + opts_.ambientCelsius;
    return out;
}

TemperatureField
GridModel::stepTransient(const TemperatureField &current,
                         const PowerMap &power, double dt,
                         SolveStats *stats, SolverWorkspace *workspace) const
{
    XYLEM_ASSERT(dt > 0.0, "transient step needs positive dt");
    XYLEM_ASSERT(current.numNodes() == num_nodes_,
                 "transient state has wrong shape");
    SolverWorkspace &w = workspace ? *workspace : threadLocalWorkspace();
    prepare(w);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        w.extra_[i] = capacity_[i] / dt;

    fillRhs(power, w.b_.data());
    for (std::size_t i = 0; i < num_nodes_; ++i) {
        const double dT = current.nodes()[i] - opts_.ambientCelsius;
        w.b_[i] += w.extra_[i] * dT;
        w.x_[i] = dT; // warm-start from the current state
    }

    const SolveStats s = solve(w.b_, w.x_, &w.extra_, w, false);
    if (stats)
        *stats = s;

    TemperatureField out(num_layers_, nx_, ny_, periphery_.size(),
                         opts_.ambientCelsius);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out.nodes()[i] = w.x_[i] + opts_.ambientCelsius;
    return out;
}

TemperatureField
GridModel::ambientField() const
{
    return TemperatureField(num_layers_, nx_, ny_, periphery_.size(),
                            opts_.ambientCelsius);
}

double
GridModel::heatOutflow(const TemperatureField &field) const
{
    double out = 0.0;
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out += ground_[i] * (field.nodes()[i] - opts_.ambientCelsius);
    return out;
}

} // namespace xylem::thermal
