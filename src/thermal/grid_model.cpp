#include "thermal/grid_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"

namespace xylem::thermal {

GridModel::GridModel(const stack::BuiltStack &stk, SolverOptions opts)
    : stack_(&stk), opts_(opts)
{
    XYLEM_ASSERT(opts_.convectionResistance > 0.0,
                 "convection resistance must be positive");
    assemble();
}

void
GridModel::addGround(std::size_t node, double g)
{
    ground_[node] += g;
    diag_[node] += g;
}

void
GridModel::assemble()
{
    const auto &stk = *stack_;
    const auto &grid = stk.grid;
    num_layers_ = stk.layers.size();
    nx_ = grid.nx();
    ny_ = grid.ny();
    cells_ = grid.cells();

    // Periphery nodes come after the layer-major grid nodes.
    std::size_t next_node = num_layers_ * cells_;
    periphery_.clear();
    for (std::size_t l = 0; l < num_layers_; ++l) {
        if (stk.layers[l].fullSide > 0.0) {
            Periphery p;
            p.layer = l;
            p.node = next_node++;
            periphery_.push_back(p);
        }
    }
    num_nodes_ = next_node;

    vert_.assign(num_layers_ > 0 ? num_layers_ - 1 : 0,
                 std::vector<double>(cells_, 0.0));
    lat_x_.assign(num_layers_, std::vector<double>(cells_, 0.0));
    lat_y_.assign(num_layers_, std::vector<double>(cells_, 0.0));
    ground_.assign(num_nodes_, 0.0);
    diag_.assign(num_nodes_, 0.0);
    capacity_.assign(num_nodes_, 0.0);
    periph_vert_.assign(periphery_.empty() ? 0 : periphery_.size() - 1, 0.0);

    const double dx = grid.cellWidth();
    const double dy = grid.cellHeight();
    const double cell_area = grid.cellArea();
    const double die_area = grid.extent().area();
    const double die_side = std::sqrt(die_area);

    // --- vertical conductances between stacked cells ----------------
    for (std::size_t l = 0; l + 1 < num_layers_; ++l) {
        const auto &lo = stk.layers[l];
        const auto &hi = stk.layers[l + 1];
        for (std::size_t c = 0; c < cells_; ++c) {
            const double r = 0.5 * lo.thickness / lo.conductivity.data()[c] +
                             0.5 * hi.thickness / hi.conductivity.data()[c];
            const double g = cell_area / r;
            vert_[l][c] = g;
            diag_[l * cells_ + c] += g;
            diag_[(l + 1) * cells_ + c] += g;
        }
    }

    // --- lateral conductances within each layer ----------------------
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &layer = stk.layers[l];
        const auto &lam = layer.conductivity.data();
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                const std::size_t c = iy * nx_ + ix;
                if (ix + 1 < nx_) {
                    const double r = 0.5 * dx / (lam[c] * layer.thickness *
                                                 dy) +
                                     0.5 * dx / (lam[c + 1] *
                                                 layer.thickness * dy);
                    const double g = 1.0 / r;
                    lat_x_[l][c] = g;
                    diag_[l * cells_ + c] += g;
                    diag_[l * cells_ + c + 1] += g;
                }
                if (iy + 1 < ny_) {
                    const double r = 0.5 * dy / (lam[c] * layer.thickness *
                                                 dx) +
                                     0.5 * dy / (lam[c + nx_] *
                                                 layer.thickness * dx);
                    const double g = 1.0 / r;
                    lat_y_[l][c] = g;
                    diag_[l * cells_ + c] += g;
                    diag_[l * cells_ + c + nx_] += g;
                }
            }
        }
    }

    // --- per-cell capacitance ----------------------------------------
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &layer = stk.layers[l];
        const auto &cap = layer.heatCapacity.data();
        for (std::size_t c = 0; c < cells_; ++c)
            capacity_[l * cells_ + c] = cap[c] * cell_area * layer.thickness;
    }

    // --- periphery nodes of the extended layers -----------------------
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        auto &p = periphery_[k];
        const auto &layer = stk.layers[p.layer];
        const double side = layer.fullSide;
        XYLEM_ASSERT(side * side > die_area,
                     "extended layer must be larger than the die");
        const double annulus_area = side * side - die_area;
        const double spread_dist = (side - die_side) / 4.0;
        const double lambda = layer.conductivity.data()[0];
        p.edgeG = lambda * layer.thickness *
                  ((dx + dy) / 2.0) / spread_dist;
        // Boundary edges: attach one edgeG per die-rim cell edge.
        // (The diag of the boundary cells and of the periphery node
        //  both grow by edgeG per edge.)
        std::size_t num_edges = 0;
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                std::size_t edges = 0;
                if (ix == 0 || ix + 1 == nx_)
                    ++edges;
                if (iy == 0 || iy + 1 == ny_)
                    ++edges;
                if (!edges)
                    continue;
                const std::size_t node = p.layer * cells_ + iy * nx_ + ix;
                diag_[node] += p.edgeG * static_cast<double>(edges);
                num_edges += edges;
            }
        }
        diag_[p.node] += p.edgeG * static_cast<double>(num_edges);
        p.capacity = layer.heatCapacity.data()[0] * annulus_area *
                     layer.thickness;
        capacity_[p.node] = p.capacity;

        // Vertical coupling with the next extended layer (IHS -> sink)
        // over their shared annular overlap.
        if (k + 1 < periphery_.size()) {
            const auto &q_layer = stk.layers[periphery_[k + 1].layer];
            XYLEM_ASSERT(periphery_[k + 1].layer == p.layer + 1,
                         "extended layers must be adjacent");
            const double overlap =
                std::min(side, q_layer.fullSide) *
                    std::min(side, q_layer.fullSide) -
                die_area;
            const double r =
                0.5 * layer.thickness / lambda +
                0.5 * q_layer.thickness / q_layer.conductivity.data()[0];
            periph_vert_[k] = overlap / r;
            diag_[p.node] += periph_vert_[k];
            diag_[periphery_[k + 1].node] += periph_vert_[k];
        }
    }

    // --- convection boundary at the heat-sink top ----------------------
    XYLEM_ASSERT(stk.heatSink >= 0, "stack must end in a heat sink");
    const auto &sink = stk.layers[static_cast<std::size_t>(stk.heatSink)];
    const double sink_area = sink.fullSide > 0.0
                                 ? sink.fullSide * sink.fullSide
                                 : die_area;
    const double g_total = 1.0 / opts_.convectionResistance;
    const double lambda_sink = sink.conductivity.data()[0];
    // Centre cells: series of half-thickness conduction + area share
    // of the lumped convection conductance.
    for (std::size_t c = 0; c < cells_; ++c) {
        const double g_conv = g_total * cell_area / sink_area;
        const double g_half = cell_area / (0.5 * sink.thickness /
                                           lambda_sink);
        const double g = 1.0 / (1.0 / g_conv + 1.0 / g_half);
        addGround(static_cast<std::size_t>(stk.heatSink) * cells_ + c, g);
    }
    // Sink periphery: the remaining convection area.
    for (const auto &p : periphery_) {
        if (static_cast<int>(p.layer) != stk.heatSink)
            continue;
        const double conv_area = sink_area - die_area;
        const double g_conv = g_total * conv_area / sink_area;
        const double g_half = conv_area / (0.5 * sink.thickness /
                                           lambda_sink);
        addGround(p.node, 1.0 / (1.0 / g_conv + 1.0 / g_half));
    }
}

void
GridModel::apply(const std::vector<double> &x, std::vector<double> &y,
                 const std::vector<double> *extra_diag) const
{
    XYLEM_ASSERT(x.size() == num_nodes_, "apply: wrong vector size");
    y.assign(num_nodes_, 0.0);

    // Ground legs (convection) and optional extra diagonal.
    for (std::size_t i = 0; i < num_nodes_; ++i) {
        double d = ground_[i];
        if (extra_diag)
            d += (*extra_diag)[i];
        y[i] = d * x[i];
    }

    // Vertical legs.
    for (std::size_t l = 0; l + 1 < num_layers_; ++l) {
        const double *g = vert_[l].data();
        const double *xa = x.data() + l * cells_;
        const double *xb = x.data() + (l + 1) * cells_;
        double *ya = y.data() + l * cells_;
        double *yb = y.data() + (l + 1) * cells_;
        for (std::size_t c = 0; c < cells_; ++c) {
            const double f = g[c] * (xa[c] - xb[c]);
            ya[c] += f;
            yb[c] -= f;
        }
    }

    // Lateral legs.
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const double *gx = lat_x_[l].data();
        const double *gy = lat_y_[l].data();
        const double *xl = x.data() + l * cells_;
        double *yl = y.data() + l * cells_;
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            const std::size_t row = iy * nx_;
            for (std::size_t ix = 0; ix + 1 < nx_; ++ix) {
                const std::size_t c = row + ix;
                const double f = gx[c] * (xl[c] - xl[c + 1]);
                yl[c] += f;
                yl[c + 1] -= f;
            }
        }
        for (std::size_t iy = 0; iy + 1 < ny_; ++iy) {
            const std::size_t row = iy * nx_;
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                const std::size_t c = row + ix;
                const double f = gy[c] * (xl[c] - xl[c + nx_]);
                yl[c] += f;
                yl[c + nx_] -= f;
            }
        }
    }

    // Periphery legs.
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const auto &p = periphery_[k];
        const double *xl = x.data() + p.layer * cells_;
        double *yl = y.data() + p.layer * cells_;
        double acc = 0.0;
        auto couple = [&](std::size_t c, double mult) {
            const double f = p.edgeG * mult * (xl[c] - x[p.node]);
            yl[c] += f;
            acc -= f;
        };
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                double edges = 0.0;
                if (ix == 0 || ix + 1 == nx_)
                    edges += 1.0;
                if (iy == 0 || iy + 1 == ny_)
                    edges += 1.0;
                if (edges > 0.0)
                    couple(iy * nx_ + ix, edges);
            }
        }
        y[p.node] += acc;
        if (k + 1 < periphery_.size()) {
            const double f = periph_vert_[k] *
                             (x[p.node] - x[periphery_[k + 1].node]);
            y[p.node] += f;
            y[periphery_[k + 1].node] -= f;
        }
    }
}

std::vector<double>
GridModel::denseMatrix(const std::vector<double> *extra_diag) const
{
    const std::size_t n = num_nodes_;
    // 6144 nodes is already a 300 MB matrix; anything bigger is a bug
    // in the calling test, not a use case.
    XYLEM_ASSERT(n <= 6144, "denseMatrix: grid too large for a dense "
                            "assembly (", n, " nodes)");
    std::vector<double> m(n * n, 0.0);
    auto diag = [&](std::size_t i, double g) { m[i * n + i] += g; };
    auto couple = [&](std::size_t a, std::size_t b, double g) {
        m[a * n + a] += g;
        m[b * n + b] += g;
        m[a * n + b] -= g;
        m[b * n + a] -= g;
    };

    for (std::size_t i = 0; i < n; ++i) {
        diag(i, ground_[i]);
        if (extra_diag)
            diag(i, (*extra_diag)[i]);
    }
    for (std::size_t l = 0; l + 1 < num_layers_; ++l)
        for (std::size_t c = 0; c < cells_; ++c)
            couple(l * cells_ + c, (l + 1) * cells_ + c, vert_[l][c]);
    for (std::size_t l = 0; l < num_layers_; ++l) {
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                const std::size_t c = iy * nx_ + ix;
                if (ix + 1 < nx_)
                    couple(l * cells_ + c, l * cells_ + c + 1,
                           lat_x_[l][c]);
                if (iy + 1 < ny_)
                    couple(l * cells_ + c, l * cells_ + c + nx_,
                           lat_y_[l][c]);
            }
        }
    }
    for (std::size_t k = 0; k < periphery_.size(); ++k) {
        const auto &p = periphery_[k];
        for (std::size_t iy = 0; iy < ny_; ++iy) {
            for (std::size_t ix = 0; ix < nx_; ++ix) {
                double edges = 0.0;
                if (ix == 0 || ix + 1 == nx_)
                    edges += 1.0;
                if (iy == 0 || iy + 1 == ny_)
                    edges += 1.0;
                if (edges > 0.0)
                    couple(p.layer * cells_ + iy * nx_ + ix, p.node,
                           p.edgeG * edges);
            }
        }
        if (k + 1 < periphery_.size())
            couple(p.node, periphery_[k + 1].node, periph_vert_[k]);
    }
    return m;
}

void
GridModel::applyLinePrecond(const std::vector<double> &r,
                            std::vector<double> &z,
                            const std::vector<double> *extra_diag) const
{
    const std::size_t L = num_layers_;
    // Thomas algorithm per XY column over the layer dimension.
    // Scratch buffers are per-call (solve() is const and re-entrant).
    std::vector<double> cp(L), dp(L);
    for (std::size_t c = 0; c < cells_; ++c) {
        auto d_at = [&](std::size_t l) {
            const std::size_t node = l * cells_ + c;
            double d = diag_[node];
            if (extra_diag)
                d += (*extra_diag)[node];
            return d;
        };
        // Forward sweep. Off-diagonal between layers l and l+1 is
        // -vert_[l][c].
        double denom = d_at(0);
        cp[0] = (L > 1) ? -vert_[0][c] / denom : 0.0;
        dp[0] = r[c] / denom;
        for (std::size_t l = 1; l < L; ++l) {
            const double off = -vert_[l - 1][c];
            denom = d_at(l) - off * cp[l - 1];
            cp[l] = (l + 1 < L) ? -vert_[l][c] / denom : 0.0;
            dp[l] = (r[l * cells_ + c] - off * dp[l - 1]) / denom;
        }
        // Back substitution.
        z[(L - 1) * cells_ + c] = dp[L - 1];
        for (std::size_t l = L - 1; l-- > 0;)
            z[l * cells_ + c] = dp[l] - cp[l] * z[(l + 1) * cells_ + c];
    }
    // Periphery nodes: plain Jacobi.
    for (const auto &p : periphery_) {
        double d = diag_[p.node];
        if (extra_diag)
            d += (*extra_diag)[p.node];
        z[p.node] = r[p.node] / d;
    }
}

SolveStats
GridModel::solve(const std::vector<double> &b, std::vector<double> &x,
                 const std::vector<double> *extra_diag) const
{
    SolveStats stats;
    const std::size_t n = num_nodes_;
    XYLEM_ASSERT(b.size() == n && x.size() == n, "solve: wrong vector size");

    std::vector<double> r(n), z(n), p(n), q(n);
    apply(x, q, extra_diag);
    double b_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - q[i];
        b_norm2 += b[i] * b[i];
    }
    if (b_norm2 == 0.0) {
        x.assign(n, 0.0);
        stats.converged = true;
        return stats;
    }
    const double target2 = opts_.tolerance * opts_.tolerance * b_norm2;

    std::vector<double> inv_diag(n);
    for (std::size_t i = 0; i < n; ++i) {
        double d = diag_[i];
        if (extra_diag)
            d += (*extra_diag)[i];
        XYLEM_ASSERT(d > 0.0, "singular diagonal entry");
        inv_diag[i] = 1.0 / d;
    }
    // The fault-tolerance layer steers the solver through the ambient
    // task context: a task on the alternate-preconditioner rung flips
    // Jacobi <-> VerticalLine, a forced-non-convergence fault skips
    // the iteration loop so the attempt reliably misses tolerance, and
    // strict mode turns non-convergence into a typed error the sweep
    // runner can escalate instead of a warning.
    const TaskContext *ctx = currentTaskContext();
    bool line = opts_.preconditioner == Preconditioner::VerticalLine;
    if (ctx && ctx->alternatePreconditioner())
        line = !line;
    const bool forced_nonconvergence =
        ctx && ctx->forceCgNonConvergence && !ctx->denseSolve();
    const int max_iterations =
        forced_nonconvergence ? 0 : opts_.maxIterations;
    auto precondition = [&]() {
        if (line) {
            applyLinePrecond(r, z, extra_diag);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                z[i] = r[i] * inv_diag[i];
        }
    };

    precondition();
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        rz += r[i] * z[i];
    p = z;

    double r_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        r_norm2 += r[i] * r[i];

    for (int it = 0; it < max_iterations && r_norm2 > target2; ++it) {
        if ((it & 31) == 0)
            taskCheckpoint(); // cooperative deadline/cancel point
        apply(p, q, extra_diag);
        double pq = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            pq += p[i] * q[i];
        if (!(pq > 0.0))
            raise(ErrorCode::SolverBreakdown,
                  "CG breakdown: search direction lost positive "
                  "definiteness (p'Ap = ", pq, " at iteration ", it, ")");
        const double alpha = rz / pq;
        r_norm2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
            r_norm2 += r[i] * r[i];
        }
        precondition();
        double rz_next = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            rz_next += r[i] * z[i];
        const double beta = rz_next / rz;
        rz = rz_next;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
        stats.iterations = it + 1;
    }
    stats.relativeResidual = std::sqrt(r_norm2 / b_norm2);
    stats.converged = !forced_nonconvergence && r_norm2 <= target2;
    if (!stats.converged) {
        if (ctx && ctx->strictSolver)
            raise(ErrorCode::SolverNonConvergence,
                  "thermal CG did not converge: residual ",
                  stats.relativeResidual, " after ", stats.iterations,
                  " iterations",
                  forced_nonconvergence ? " (forced by fault injection)"
                                        : "");
        warn("thermal CG did not converge: residual ",
             stats.relativeResidual, " after ", stats.iterations,
             " iterations");
    }
    return stats;
}

std::vector<double>
GridModel::rhsFromPower(const PowerMap &power) const
{
    std::vector<double> b(num_nodes_, 0.0);
    for (std::size_t l = 0; l < num_layers_; ++l) {
        const auto &f = power.layer(static_cast<int>(l)).data();
        for (std::size_t c = 0; c < cells_; ++c)
            b[l * cells_ + c] = f[c];
    }
    return b;
}

TemperatureField
GridModel::solveSteady(const PowerMap &power, SolveStats *stats,
                       const TemperatureField *warm_start) const
{
    const std::vector<double> b = rhsFromPower(power);
    std::vector<double> x(num_nodes_, 0.0);
    // On the cold-start escalation rung a stale warm start is a prime
    // failure suspect, so drop it and solve from ambient.
    const TaskContext *ctx = currentTaskContext();
    if (ctx && ctx->coldStart())
        warm_start = nullptr;
    if (warm_start) {
        XYLEM_ASSERT(warm_start->numNodes() == num_nodes_,
                     "warm start has wrong shape");
        for (std::size_t i = 0; i < num_nodes_; ++i)
            x[i] = warm_start->nodes()[i] - opts_.ambientCelsius;
    }
    const SolveStats s = solve(b, x, nullptr);
    if (stats)
        *stats = s;

    TemperatureField out(num_layers_, nx_, ny_, periphery_.size(),
                         opts_.ambientCelsius);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out.nodes()[i] = x[i] + opts_.ambientCelsius;
    return out;
}

TemperatureField
GridModel::stepTransient(const TemperatureField &current,
                         const PowerMap &power, double dt,
                         SolveStats *stats) const
{
    XYLEM_ASSERT(dt > 0.0, "transient step needs positive dt");
    XYLEM_ASSERT(current.numNodes() == num_nodes_,
                 "transient state has wrong shape");
    std::vector<double> extra(num_nodes_);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        extra[i] = capacity_[i] / dt;

    std::vector<double> b = rhsFromPower(power);
    for (std::size_t i = 0; i < num_nodes_; ++i) {
        b[i] += extra[i] * (current.nodes()[i] - opts_.ambientCelsius);
    }
    // Warm-start from the current state.
    std::vector<double> x(num_nodes_);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        x[i] = current.nodes()[i] - opts_.ambientCelsius;

    const SolveStats s = solve(b, x, &extra);
    if (stats)
        *stats = s;

    TemperatureField out(num_layers_, nx_, ny_, periphery_.size(),
                         opts_.ambientCelsius);
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out.nodes()[i] = x[i] + opts_.ambientCelsius;
    return out;
}

TemperatureField
GridModel::ambientField() const
{
    return TemperatureField(num_layers_, nx_, ny_, periphery_.size(),
                            opts_.ambientCelsius);
}

double
GridModel::heatOutflow(const TemperatureField &field) const
{
    double out = 0.0;
    for (std::size_t i = 0; i < num_nodes_; ++i)
        out += ground_[i] * (field.nodes()[i] - opts_.ambientCelsius);
    return out;
}

} // namespace xylem::thermal
