/**
 * @file
 * A block of right-hand sides / solutions for the multi-RHS solver
 * path (DESIGN.md §15).
 *
 * Layout is node-major interleaved: entry (node i, column k) lives at
 * data[i * cols + k]. The K columns of one node are contiguous, so
 * the batched kernels put the column loop innermost — the SIMD lanes
 * are independent right-hand sides, every per-column arithmetic
 * sequence visits nodes in exactly the order the solo kernels do, and
 * vectorising the column loop cannot reorder any column's additions.
 * That is the invariant behind the batch ≡ solo bit-identity contract
 * (tests/batch_equivalence_test.cpp).
 */

#ifndef XYLEM_THERMAL_MULTIVECTOR_HPP
#define XYLEM_THERMAL_MULTIVECTOR_HPP

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace xylem::thermal {

/**
 * Hard cap on the columns of one block solve. The batched kernels
 * keep per-column accumulators in fixed-size stack arrays, and the
 * service clamps batch formation to this bound, so it is a structural
 * limit rather than a tuning knob.
 */
inline constexpr std::size_t kMaxBatchRhs = 64;

class MultiVector
{
  public:
    MultiVector() = default;
    MultiVector(std::size_t nodes, std::size_t cols) { resize(nodes, cols); }

    void resize(std::size_t nodes, std::size_t cols)
    {
        XYLEM_ASSERT(cols >= 1 && cols <= kMaxBatchRhs,
                     "MultiVector: column count ", cols,
                     " outside [1, ", kMaxBatchRhs, "]");
        nodes_ = nodes;
        cols_ = cols;
        data_.assign(nodes * cols, 0.0);
    }

    std::size_t nodes() const { return nodes_; }
    std::size_t cols() const { return cols_; }

    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    double &at(std::size_t node, std::size_t col)
    {
        return data_[node * cols_ + col];
    }
    double at(std::size_t node, std::size_t col) const
    {
        return data_[node * cols_ + col];
    }

    /** Scatter a length-nodes() vector into column `col`. */
    void setColumn(std::size_t col, const double *src)
    {
        for (std::size_t i = 0; i < nodes_; ++i)
            data_[i * cols_ + col] = src[i];
    }

    /** Gather column `col` into a length-nodes() vector. */
    void getColumn(std::size_t col, double *dst) const
    {
        for (std::size_t i = 0; i < nodes_; ++i)
            dst[i] = data_[i * cols_ + col];
    }

  private:
    std::size_t nodes_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_MULTIVECTOR_HPP
