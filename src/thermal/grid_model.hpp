/**
 * @file
 * The 3D RC thermal grid model (HotSpot-style "grid mode" with
 * heterogeneous per-cell conductivities, extended to the full
 * processor-memory stack).
 *
 * Every stack layer is discretised on the common die grid. Adjacent
 * cells are connected with lateral conductances, adjacent layers with
 * vertical conductances (half-thickness series model). Layers that
 * extend beyond the die footprint (IHS, heat sink) get one extra
 * "periphery" node each that models lateral spreading into the
 * overhang; the heat-sink top is tied to ambient through a lumped
 * convection resistance distributed over the sink area.
 *
 * The steady-state problem  G · ΔT = P  (ΔT = rise above ambient) is
 * solved with Jacobi-preconditioned conjugate gradients (the matrix is
 * symmetric positive definite). The transient problem uses implicit
 * Euler:  (C/Δt + G) · ΔT' = C/Δt · ΔT + P, reusing the same CG core.
 */

#ifndef XYLEM_THERMAL_GRID_MODEL_HPP
#define XYLEM_THERMAL_GRID_MODEL_HPP

#include <cstddef>
#include <vector>

#include "stack/stack.hpp"
#include "thermal/power_map.hpp"
#include "thermal/temperature.hpp"

namespace xylem::thermal {

/** CG preconditioner choice. */
enum class Preconditioner
{
    Jacobi,       ///< diagonal scaling (default; cheapest per iteration)
    VerticalLine, ///< exact tridiagonal solve per XY column
};

/** Boundary/solver parameters. */
struct SolverOptions
{
    double ambientCelsius = 40.0;     ///< air temperature at the sink
    double convectionResistance = 0.10; ///< lumped sink-to-air R [K/W] (active)
    double tolerance = 1e-6;          ///< relative residual target
    int maxIterations = 50000;        ///< CG iteration cap
    Preconditioner preconditioner = Preconditioner::Jacobi;
};

/** Convergence report of one solve. */
struct SolveStats
{
    int iterations = 0;
    double relativeResidual = 0.0;
    bool converged = false;
};

/**
 * The assembled conductance network for one built stack.
 *
 * The model is immutable after construction; solves are const and can
 * run concurrently from multiple threads.
 */
class GridModel
{
  public:
    GridModel(const stack::BuiltStack &stk, SolverOptions opts = {});

    const stack::BuiltStack &stackRef() const { return *stack_; }
    const SolverOptions &options() const { return opts_; }

    std::size_t numLayers() const { return num_layers_; }
    std::size_t cellsPerLayer() const { return cells_; }
    /** Grid nodes plus periphery nodes. */
    std::size_t numNodes() const { return num_nodes_; }

    /**
     * Solve the steady state for a power map.
     *
     * @param power      per-layer power map [W per cell]
     * @param stats      optional convergence report
     * @param warm_start optional previous solution to start from
     */
    TemperatureField solveSteady(const PowerMap &power,
                                 SolveStats *stats = nullptr,
                                 const TemperatureField *warm_start
                                 = nullptr) const;

    /**
     * Advance a transient solution by `dt` seconds with implicit
     * Euler, holding `power` constant over the step.
     */
    TemperatureField stepTransient(const TemperatureField &current,
                                   const PowerMap &power, double dt,
                                   SolveStats *stats = nullptr) const;

    /** An all-ambient field (transient initial condition). */
    TemperatureField ambientField() const;

    /**
     * Sum over all ground (convection) conductances of
     * g * ΔT(node): the total heat leaving through the sink [W].
     * Used by energy-balance tests.
     */
    double heatOutflow(const TemperatureField &field) const;

    /**
     * Apply the conductance matrix: y = G x (+ extra_diag .* x).
     * Exposed for tests.
     */
    void apply(const std::vector<double> &x, std::vector<double> &y,
               const std::vector<double> *extra_diag = nullptr) const;

    /**
     * Assemble G (+ optional extra diagonal) as a dense row-major
     * numNodes() x numNodes() matrix. O(n²) storage — intended for
     * the verification subsystem's direct reference solver on small
     * grids, where an independent factorisation cross-checks CG.
     */
    std::vector<double>
    denseMatrix(const std::vector<double> *extra_diag = nullptr) const;

    /** Per-node thermal capacitance [J/K] (transient verification). */
    const std::vector<double> &capacities() const { return capacity_; }

    /** Per-node ground (convection) conductance [W/K]. */
    const std::vector<double> &groundConductances() const { return ground_; }

    /**
     * The right-hand-side vector (watts per node) for a power map,
     * exposed so verification code can measure achieved residuals
     * against exactly the system the solver saw.
     */
    std::vector<double> powerVector(const PowerMap &power) const
    {
        return rhsFromPower(power);
    }

  private:
    void assemble();
    void addGround(std::size_t node, double g);

    /** CG on (G + extra_diag) x = b. Returns stats. */
    SolveStats solve(const std::vector<double> &b, std::vector<double> &x,
                     const std::vector<double> *extra_diag) const;

    /**
     * Vertical-line preconditioner: solve, for every XY column, the
     * tridiagonal system formed by the column's diagonal and vertical
     * conductances (Thomas algorithm); periphery nodes use plain
     * Jacobi. The stack is strongly anisotropic (thin, highly coupled
     * layers), so this cuts CG iterations by an order of magnitude
     * compared with Jacobi.
     */
    void applyLinePrecond(const std::vector<double> &r,
                          std::vector<double> &z,
                          const std::vector<double> *extra_diag) const;

    std::vector<double> rhsFromPower(const PowerMap &power) const;

    const stack::BuiltStack *stack_;
    SolverOptions opts_;

    std::size_t num_layers_ = 0;
    std::size_t nx_ = 0, ny_ = 0, cells_ = 0;
    std::size_t num_nodes_ = 0;

    // Structured conductances.
    // vert_[l][c]: between (l, c) and (l+1, c), size (L-1) x cells.
    std::vector<std::vector<double>> vert_;
    // lat_x_[l][c]: between (ix, iy) and (ix+1, iy); entries with
    // ix == nx-1 are zero. Similarly lat_y_ for +y neighbours.
    std::vector<std::vector<double>> lat_x_;
    std::vector<std::vector<double>> lat_y_;
    // Ground (ambient) conductance per node (convection path).
    std::vector<double> ground_;
    // Periphery coupling: for extended layer l, conductance between
    // each boundary-edge cell and the layer's periphery node.
    struct Periphery
    {
        std::size_t layer;      ///< layer index
        std::size_t node;       ///< global node id
        double edgeG;           ///< conductance per boundary cell edge
        double capacity;        ///< thermal capacitance [J/K]
    };
    std::vector<Periphery> periphery_;
    // vertical conductances between consecutive periphery nodes
    std::vector<double> periph_vert_;

    // Precomputed diagonal of G and per-node capacitance.
    std::vector<double> diag_;
    std::vector<double> capacity_;
};

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_GRID_MODEL_HPP
