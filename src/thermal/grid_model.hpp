/**
 * @file
 * The 3D RC thermal grid model (HotSpot-style "grid mode" with
 * heterogeneous per-cell conductivities, extended to the full
 * processor-memory stack).
 *
 * Every stack layer is discretised on the common die grid. Adjacent
 * cells are connected with lateral conductances, adjacent layers with
 * vertical conductances (half-thickness series model). Layers that
 * extend beyond the die footprint (IHS, heat sink) get one extra
 * "periphery" node each that models lateral spreading into the
 * overhang; the heat-sink top is tied to ambient through a lumped
 * convection resistance distributed over the sink area.
 *
 * The steady-state problem  G · ΔT = P  (ΔT = rise above ambient) is
 * solved with preconditioned conjugate gradients (the matrix is
 * symmetric positive definite). The transient problem uses implicit
 * Euler:  (C/Δt + G) · ΔT' = C/Δt · ΔT + P, reusing the same CG core.
 *
 * The CG hot path is built for memory-bandwidth-bound performance
 * (DESIGN.md §12): the mat-vec is one fused layer-major gather sweep
 * (ground + vertical + lateral + periphery rim in a single pass per
 * row), the vertical-line preconditioner factorisation is computed
 * once per solve and applied allocation- and division-free, every
 * solve runs out of a reusable SolverWorkspace (thread-local by
 * default, caller-providable), and `SolverOptions::threads` opts into
 * intra-solve parallelism whose fixed-order block-sum reductions keep
 * results bit-identical at any thread count.
 */

#ifndef XYLEM_THERMAL_GRID_MODEL_HPP
#define XYLEM_THERMAL_GRID_MODEL_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "stack/stack.hpp"
#include "thermal/multivector.hpp"
#include "thermal/power_map.hpp"
#include "thermal/temperature.hpp"

namespace xylem::runtime {
class ThreadPool;
}

namespace xylem::thermal {

namespace mg {
class Hierarchy;
struct Workspace;
} // namespace mg

/** CG preconditioner choice. */
enum class Preconditioner
{
    Jacobi,       ///< diagonal scaling (cheapest per iteration)
    VerticalLine, ///< exact tridiagonal solve per XY column
    Multigrid,    ///< semicoarsened V-cycle (default; DESIGN.md §14)
};

/** Outer iteration choice. */
enum class SolverKind
{
    CG,        ///< preconditioned conjugate gradients (default)
    Multigrid, ///< V-cycle iteration (no Krylov acceleration)
};

/** Config-file spellings ("jacobi"/"line"/"mg", "cg"/"mg"). */
const char *toString(Preconditioner p);
const char *toString(SolverKind k);

/** Boundary/solver parameters. */
struct SolverOptions
{
    double ambientCelsius = 40.0;     ///< air temperature at the sink
    double convectionResistance = 0.10; ///< lumped sink-to-air R [K/W] (active)
    double tolerance = 1e-6;          ///< relative residual target
    int maxIterations = 50000;        ///< CG iteration cap
    Preconditioner preconditioner = Preconditioner::Multigrid;
    SolverKind kind = SolverKind::CG;

    /**
     * Intra-solve worker threads. 1 (the default) runs serially; 0
     * resolves through XYLEM_JOBS like the experiment runtime; N > 1
     * partitions every kernel into fixed, thread-count-independent
     * blocks executed on a runtime::ThreadPool owned by the
     * workspace. All reductions sum per-block partials in a fixed
     * order, so the solution is bit-identical at any thread count.
     */
    int threads = 1;
};

/** Convergence report of one solve. */
struct SolveStats
{
    int iterations = 0;
    double relativeResidual = 0.0;
    bool converged = false;
};

/**
 * Reusable scratch memory for one solver call chain: the CG vectors,
 * the cached preconditioner factorisation, the block-sum reduction
 * buffer, and (when SolverOptions::threads > 1) the intra-solve
 * thread pool.
 *
 * Every solve entry point takes an optional workspace; passing none
 * uses a thread-local instance, so repeated solves allocate nothing
 * after the first. A workspace may be reused across models (it
 * resizes as needed) and across steady/transient solves freely, but
 * it must not be used by two solves running concurrently — give each
 * thread its own (the thread-local default does exactly that).
 */
class SolverWorkspace
{
  public:
    SolverWorkspace();
    ~SolverWorkspace();
    SolverWorkspace(const SolverWorkspace &) = delete;
    SolverWorkspace &operator=(const SolverWorkspace &) = delete;

  private:
    friend class GridModel;
    friend class mg::Hierarchy;

    // CG vectors (residual, preconditioned residual, search
    // direction, mat-vec product), sized to numNodes().
    std::vector<double> r_, z_, p_, q_;
    // Jacobi: 1 / (diag + extra_diag), rebuilt once per solve.
    std::vector<double> inv_diag_;
    // Steady/transient driver buffers (rhs, solution, C/dt diagonal).
    std::vector<double> b_, x_, extra_;
    // Cached vertical-line factorisation (see
    // GridModel::buildLineFactorization), rebuilt once per solve.
    std::vector<double> line_cp_, line_inv_denom_, periph_inv_diag_;
    // Per-block partial sums of the deterministic reductions.
    std::vector<double> block_sums_;
    // Multi-RHS buffers (numNodes() × batch columns, node-major
    // interleaved; see MultiVector) and the per-block × per-column
    // reduction partials. Sized on first batch solve.
    std::vector<double> bb_, bx_, br_, bz_, bp_, bq_;
    std::vector<double> batch_block_sums_;
    std::size_t batch_cols_ = 0; ///< columns the batch buffers hold
    // Lazily created intra-solve pool (threads > 1 only).
    std::unique_ptr<runtime::ThreadPool> pool_;
    int pool_threads_ = 0;
    // Per-solve kernel-time accumulators, folded into
    // runtime::Metrics ("solver.apply_seconds" /
    // "solver.precond_seconds") once per solve.
    double apply_seconds_ = 0.0;
    double precond_seconds_ = 0.0;
    // Multigrid scratch (per-level vectors, coarsest dense factor);
    // created on first use by a multigrid-configured model.
    std::unique_ptr<mg::Workspace> mg_;
    // numNodes() the buffers are currently sized for (0 = unsized).
    std::size_t sized_for_ = 0;
};

/**
 * The assembled conductance network for one built stack.
 *
 * The model is immutable after construction; solves are const and can
 * run concurrently from multiple threads (each solve uses its own
 * workspace — the thread-local default or an explicit argument).
 */
class GridModel
{
  public:
    GridModel(const stack::BuiltStack &stk, SolverOptions opts = {});
    ~GridModel();
    GridModel(const GridModel &) = delete;
    GridModel &operator=(const GridModel &) = delete;

    const stack::BuiltStack &stackRef() const { return *stack_; }
    const SolverOptions &options() const { return opts_; }

    /**
     * The multigrid hierarchy, built at construction when the options
     * select SolverKind::Multigrid or Preconditioner::Multigrid;
     * nullptr otherwise. Exposed for tests and bench telemetry.
     */
    const mg::Hierarchy *multigrid() const { return mg_.get(); }

    std::size_t numLayers() const { return num_layers_; }
    std::size_t cellsPerLayer() const { return cells_; }
    /** Grid nodes plus periphery nodes. */
    std::size_t numNodes() const { return num_nodes_; }

    /**
     * Solve the steady state for a power map.
     *
     * @param power      per-layer power map [W per cell]
     * @param stats      optional convergence report
     * @param warm_start optional previous solution to start from
     * @param workspace  optional reusable scratch memory; defaults to
     *                   a thread-local workspace
     */
    TemperatureField solveSteady(const PowerMap &power,
                                 SolveStats *stats = nullptr,
                                 const TemperatureField *warm_start
                                 = nullptr,
                                 SolverWorkspace *workspace
                                 = nullptr) const;

    /**
     * Solve the steady state for a block of power maps in one
     * multi-RHS sweep (DESIGN.md §15). Every column's result is
     * bit-identical to the solo solveSteady of the same power map
     * with the same (optional) warm start: the batched kernels visit
     * nodes in the solo order with the column loop innermost, and a
     * column freezes the moment its own convergence test passes, so
     * per-column iteration counts match too.
     *
     * `powers` holds 1..kMaxBatchRhs maps (an empty batch returns an
     * empty vector; a larger one raises ErrorCode::Config).
     * `warm_starts`, when given, must match `powers` in size; null
     * entries mean a cold start for that column. SolverKind::Multigrid
     * (standalone V-cycle iteration) runs the columns serially — only
     * the CG kinds have a blocked path.
     */
    std::vector<TemperatureField>
    solveSteadyBatch(const std::vector<const PowerMap *> &powers,
                     std::vector<SolveStats> *stats = nullptr,
                     const std::vector<const TemperatureField *>
                     *warm_starts = nullptr,
                     SolverWorkspace *workspace = nullptr) const;

    /**
     * Apply the conductance matrix to every column: Y = G X
     * (+ extra_diag .* X). Exposed for the differential tests that
     * prove the blocked matvec matches per-column apply() bitwise.
     */
    void applyBlocked(const MultiVector &x, MultiVector &y,
                      const std::vector<double> *extra_diag
                      = nullptr) const;

    /**
     * Advance a transient solution by `dt` seconds with implicit
     * Euler, holding `power` constant over the step.
     */
    TemperatureField stepTransient(const TemperatureField &current,
                                   const PowerMap &power, double dt,
                                   SolveStats *stats = nullptr,
                                   SolverWorkspace *workspace
                                   = nullptr) const;

    /** An all-ambient field (transient initial condition). */
    TemperatureField ambientField() const;

    /**
     * Sum over all ground (convection) conductances of
     * g * ΔT(node): the total heat leaving through the sink [W].
     * Used by energy-balance tests.
     */
    double heatOutflow(const TemperatureField &field) const;

    /**
     * Apply the conductance matrix: y = G x (+ extra_diag .* x).
     * Exposed for tests.
     */
    void apply(const std::vector<double> &x, std::vector<double> &y,
               const std::vector<double> *extra_diag = nullptr) const;

    /**
     * Apply the vertical-line preconditioner: z = M⁻¹ r, where M is
     * the block-diagonal matrix of per-column vertical tridiagonals
     * (periphery nodes use plain Jacobi). Exposed for tests — the
     * equivalence suite checks the cached factorisation against a
     * naive per-application Thomas reference.
     */
    void applyLinePreconditioner(const std::vector<double> &r,
                                 std::vector<double> &z,
                                 const std::vector<double> *extra_diag
                                 = nullptr) const;

    /**
     * Assemble G (+ optional extra diagonal) as a dense row-major
     * numNodes() x numNodes() matrix. O(n²) storage — intended for
     * the verification subsystem's direct reference solver on small
     * grids, where an independent factorisation cross-checks CG.
     */
    std::vector<double>
    denseMatrix(const std::vector<double> *extra_diag = nullptr) const;

    /** Per-node thermal capacitance [J/K] (transient verification). */
    const std::vector<double> &capacities() const { return capacity_; }

    /** Per-node ground (convection) conductance [W/K]. */
    const std::vector<double> &groundConductances() const { return ground_; }

    /**
     * The right-hand-side vector (watts per node) for a power map,
     * exposed so verification code can measure achieved residuals
     * against exactly the system the solver saw.
     */
    std::vector<double> powerVector(const PowerMap &power) const
    {
        std::vector<double> b(num_nodes_, 0.0);
        fillRhs(power, b.data());
        return b;
    }

  private:
    friend class mg::Hierarchy;

    void assemble();
    void addGround(std::size_t node, double g);

    /**
     * CG on (G + extra_diag) x = b using `w` for every buffer.
     * `x_is_zero` marks a cold start (x all-zero), which skips the
     * initial mat-vec (A·0 = 0 exactly, so r = b bit-identically).
     */
    SolveStats solve(const std::vector<double> &b, std::vector<double> &x,
                     const std::vector<double> *extra_diag,
                     SolverWorkspace &w, bool x_is_zero) const;

    /** Thread-local fallback when the caller passes no workspace. */
    static SolverWorkspace &threadLocalWorkspace();

    /** Size `w` for this model; counts solver.workspace_reuses. */
    void prepare(SolverWorkspace &w) const;

    /** The workspace's pool per opts_.threads (null = serial). */
    runtime::ThreadPool *poolFor(SolverWorkspace &w) const;

    /**
     * y = (G + extra_diag) x as one fused layer-major gather sweep.
     * With `dot_out` non-null, also computes x·y: per-block partials
     * land in `block_sums`, the periphery tail is added serially, and
     * the fixed-order total is written to *dot_out.
     */
    void fusedApply(const double *x, double *y, const double *extra_diag,
                    runtime::ThreadPool *pool, double *dot_out,
                    double *block_sums) const;

    /**
     * Factor the vertical-line preconditioner into w.line_cp_ /
     * w.line_inv_denom_ / w.periph_inv_diag_. The factorisation
     * depends only on diag_ + extra_diag: diag_ is immutable after
     * assembly and extra_diag is constant for the duration of one
     * solve (the transient C/Δt shift), so one factorisation serves
     * every CG iteration of that solve — this is the invariant that
     * lets applyLineCached() run allocation- and division-free.
     */
    void buildLineFactorization(const double *extra_diag,
                                SolverWorkspace &w) const;

    /**
     * z = M⁻¹ r from the cached factorisation; returns r·z reduced in
     * fixed column-chunk order (deterministic at any thread count).
     */
    double applyLineCached(const double *r, double *z, SolverWorkspace &w,
                           runtime::ThreadPool *pool) const;

    // --- multi-RHS (batched) kernels, grid_model_batch.cpp ----------
    // All operate on node-major interleaved blocks of `cols` columns
    // and replicate the corresponding solo kernel's per-column
    // arithmetic order exactly (the bit-identity contract).

    /** Size the workspace's batch buffers for `cols` columns. */
    void prepareBatch(SolverWorkspace &w, std::size_t cols) const;

    /**
     * Y = (G + extra_diag) X, blocked. With `dot_out` non-null, also
     * the per-column dot X·Y (cols values) via `block_sums`
     * (nblocks × cols partials).
     */
    void fusedApplyMulti(const double *x, double *y, std::size_t cols,
                         const double *extra_diag,
                         runtime::ThreadPool *pool, double *dot_out,
                         double *block_sums) const;

    /**
     * Z = M⁻¹ R per column from the cached line factorisation; when
     * `rz_out` is non-null, the per-column r·z reductions land there.
     */
    void applyLineCachedMulti(const double *r, double *z,
                              std::size_t cols, SolverWorkspace &w,
                              runtime::ThreadPool *pool,
                              double *rz_out) const;

    /**
     * Lockstep multi-RHS CG on (G + extra_diag) X = B using the
     * workspace's batch buffers (w.bb_/w.bx_ as input/output).
     * `x_is_zero[k]` marks cold columns. Fills `stats[k]` per column.
     */
    void solveMulti(std::size_t cols, const std::vector<double> *extra_diag,
                    SolverWorkspace &w, const bool *x_is_zero,
                    SolveStats *stats) const;

    void fillRhs(const PowerMap &power, double *b) const;

    const stack::BuiltStack *stack_;
    SolverOptions opts_;

    std::size_t num_layers_ = 0;
    std::size_t nx_ = 0, ny_ = 0, cells_ = 0;
    std::size_t num_nodes_ = 0;

    // Structured conductances.
    // vert_[l][c]: between (l, c) and (l+1, c), size (L-1) x cells.
    std::vector<std::vector<double>> vert_;
    // lat_x_[l][c]: between (ix, iy) and (ix+1, iy); entries with
    // ix == nx-1 are zero. Similarly lat_y_ for +y neighbours.
    std::vector<std::vector<double>> lat_x_;
    std::vector<std::vector<double>> lat_y_;
    // Ground (ambient) conductance per node (convection path).
    std::vector<double> ground_;
    // Periphery coupling: for extended layer l, conductance between
    // each boundary-edge cell and the layer's periphery node.
    struct Periphery
    {
        std::size_t layer;      ///< layer index
        std::size_t node;       ///< global node id
        double edgeG;           ///< conductance per boundary cell edge
        double capacity;        ///< thermal capacitance [J/K]
    };
    std::vector<Periphery> periphery_;
    // vertical conductances between consecutive periphery nodes
    std::vector<double> periph_vert_;
    // rim_g_[l][c] = edgeG * (number of boundary edges of cell c) for
    // extended layers, so the fused sweep can gather the rim coupling
    // branch-free; empty for layers without a periphery node.
    std::vector<std::vector<double>> rim_g_;
    // Periphery node id per layer (-1 = none), for the fused sweep.
    std::vector<std::ptrdiff_t> periph_node_of_layer_;
    // All-zero length-cells_ array: boundary rows/layers point their
    // absent-neighbour conductance stream here, keeping the fused
    // kernels branch-free (coefficient 0 × any in-bounds value = 0).
    std::vector<double> zeros_;

    // Precomputed diagonal of G and per-node capacitance.
    std::vector<double> diag_;
    std::vector<double> capacity_;

    // The semicoarsened V-cycle hierarchy (DESIGN.md §14), built
    // eagerly at construction when the options select multigrid so
    // concurrent const solves never race on lazy setup.
    std::unique_ptr<mg::Hierarchy> mg_;
};

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_GRID_MODEL_HPP
