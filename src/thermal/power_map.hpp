/**
 * @file
 * Per-layer power maps: how many watts are dissipated in each grid
 * cell of each (heat-source) layer of the stack.
 */

#ifndef XYLEM_THERMAL_POWER_MAP_HPP
#define XYLEM_THERMAL_POWER_MAP_HPP

#include <vector>

#include "geometry/grid.hpp"
#include "stack/stack.hpp"

namespace xylem::thermal {

/**
 * A power assignment for a built stack: one scalar field (watts per
 * cell) per layer. Non-source layers simply stay at zero.
 */
class PowerMap
{
  public:
    /** All-zero power map for `stk`. */
    explicit PowerMap(const stack::BuiltStack &stk);

    /** Field of layer `layer_idx` (watts per cell). */
    geometry::Field2D &layer(int layer_idx);
    const geometry::Field2D &layer(int layer_idx) const;

    std::size_t numLayers() const { return fields_.size(); }

    /**
     * Deposit `watts` uniformly over `rect` in layer `layer_idx`
     * (area-proportional across cells).
     */
    void deposit(int layer_idx, const geometry::Rect &rect, double watts);

    /** Total power over all layers [W]. */
    double totalPower() const;

    /** Power in one layer [W]. */
    double layerPower(int layer_idx) const;

  private:
    std::vector<geometry::Field2D> fields_;
};

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_POWER_MAP_HPP
