#include "thermal/power_map.hpp"

#include "common/logging.hpp"

namespace xylem::thermal {

PowerMap::PowerMap(const stack::BuiltStack &stk)
{
    fields_.reserve(stk.layers.size());
    for (std::size_t l = 0; l < stk.layers.size(); ++l)
        fields_.emplace_back(stk.grid, 0.0);
}

geometry::Field2D &
PowerMap::layer(int layer_idx)
{
    XYLEM_ASSERT(layer_idx >= 0 &&
                     static_cast<std::size_t>(layer_idx) < fields_.size(),
                 "layer index out of range");
    return fields_[static_cast<std::size_t>(layer_idx)];
}

const geometry::Field2D &
PowerMap::layer(int layer_idx) const
{
    XYLEM_ASSERT(layer_idx >= 0 &&
                     static_cast<std::size_t>(layer_idx) < fields_.size(),
                 "layer index out of range");
    return fields_[static_cast<std::size_t>(layer_idx)];
}

void
PowerMap::deposit(int layer_idx, const geometry::Rect &rect, double watts)
{
    layer(layer_idx).deposit(rect, watts);
}

double
PowerMap::totalPower() const
{
    double total = 0.0;
    for (const auto &f : fields_)
        total += f.sum();
    return total;
}

double
PowerMap::layerPower(int layer_idx) const
{
    return layer(layer_idx).sum();
}

} // namespace xylem::thermal
