#include "thermal/heatmap.hpp"

#include <algorithm>
#include <charconv>
#include <iomanip>

#include "common/logging.hpp"

namespace xylem::thermal {

void
renderHeatmap(std::ostream &os, const TemperatureField &field,
              std::size_t layer, const HeatmapOptions &opts)
{
    XYLEM_ASSERT(layer < field.numLayers(), "layer out of range");
    XYLEM_ASSERT(!opts.ramp.empty(), "gradient ramp must not be empty");
    const std::size_t nx = field.nx();
    const std::size_t ny = field.ny();
    const std::size_t step =
        std::max<std::size_t>(1, (nx + opts.maxCols - 1) / opts.maxCols);

    double lo = 1e30, hi = -1e30;
    for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
            const double t = field.at(layer, ix, iy);
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
    }
    const double span = std::max(hi - lo, 1e-9);
    const auto buckets = static_cast<double>(opts.ramp.size() - 1);

    // Print top row first so north is up.
    for (std::size_t iy = ny; iy-- > 0;) {
        if (iy % step)
            continue;
        for (std::size_t ix = 0; ix < nx; ix += step) {
            // Average over the downsampling block.
            double sum = 0.0;
            int cnt = 0;
            for (std::size_t dy = 0; dy < step && iy + dy < ny; ++dy) {
                for (std::size_t dx = 0; dx < step && ix + dx < nx;
                     ++dx) {
                    sum += field.at(layer, ix + dx, iy + dy);
                    ++cnt;
                }
            }
            const double t = sum / cnt;
            const auto idx = static_cast<std::size_t>(
                (t - lo) / span * buckets + 0.5);
            os << opts.ramp[std::min<std::size_t>(idx,
                                                  opts.ramp.size() - 1)];
        }
        os << "\n";
    }
    if (opts.showScale) {
        os << "scale: '" << opts.ramp.front() << "' = " << std::fixed
           << std::setprecision(1) << lo << " C ... '" << opts.ramp.back()
           << "' = " << hi << " C\n";
        os.unsetf(std::ios::fixed);
    }
}

void
writeCsv(std::ostream &os, const TemperatureField &field,
         std::size_t layer, bool header)
{
    XYLEM_ASSERT(layer < field.numLayers(), "layer out of range");
    // Bypass the stream's locale/precision state: plots diffed across
    // machines must not depend on LC_NUMERIC or a previous writer
    // leaving std::fixed behind on the stream.
    char buf[64];
    auto put = [&](double v) {
        const auto res = std::to_chars(buf, buf + sizeof buf, v);
        os.write(buf, res.ptr - buf);
    };
    if (header) {
        for (std::size_t ix = 0; ix < field.nx(); ++ix) {
            if (ix)
                os << ',';
            os << 'x' << ix;
        }
        os << '\n';
    }
    for (std::size_t iy = 0; iy < field.ny(); ++iy) {
        for (std::size_t ix = 0; ix < field.nx(); ++ix) {
            if (ix)
                os << ',';
            put(field.at(layer, ix, iy));
        }
        os << '\n';
    }
}

} // namespace xylem::thermal
