/**
 * @file
 * Temperature fields produced by the thermal solvers, with hotspot
 * queries per layer / per region.
 */

#ifndef XYLEM_THERMAL_TEMPERATURE_HPP
#define XYLEM_THERMAL_TEMPERATURE_HPP

#include <cstddef>
#include <vector>

#include "geometry/rect.hpp"

namespace xylem::thermal {

/**
 * A solved temperature field: one value per grid node (layer-major),
 * plus the trailing periphery nodes of the extended layers.
 * Values are absolute degrees Celsius.
 */
class TemperatureField
{
  public:
    TemperatureField(std::size_t num_layers, std::size_t nx, std::size_t ny,
                     std::size_t num_extra, double initial_celsius);

    std::size_t numLayers() const { return num_layers_; }
    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t cellsPerLayer() const { return nx_ * ny_; }
    std::size_t numNodes() const { return nodes_.size(); }

    std::vector<double> &nodes() { return nodes_; }
    const std::vector<double> &nodes() const { return nodes_; }

    /** Temperature of cell (ix, iy) in a layer [°C]. */
    double at(std::size_t layer, std::size_t ix, std::size_t iy) const;
    double &at(std::size_t layer, std::size_t ix, std::size_t iy);

    /** Maximum temperature anywhere in a layer [°C]. */
    double maxOfLayer(std::size_t layer) const;

    /** Mean temperature of a layer [°C]. */
    double meanOfLayer(std::size_t layer) const;

    /**
     * Maximum temperature of the cells whose centre lies inside
     * `rect` (die coordinates); `die_extent` supplies the grid
     * geometry. Returns the layer max if no cell centre is inside.
     */
    double maxInRect(std::size_t layer, const geometry::Rect &rect,
                     const geometry::Rect &die_extent) const;

    /** Location (ix, iy) of the hottest cell of a layer. */
    void hotspot(std::size_t layer, std::size_t &ix, std::size_t &iy) const;

  private:
    std::size_t num_layers_;
    std::size_t nx_;
    std::size_t ny_;
    std::vector<double> nodes_;
};

} // namespace xylem::thermal

#endif // XYLEM_THERMAL_TEMPERATURE_HPP
