#include "thermal/temperature.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace xylem::thermal {

TemperatureField::TemperatureField(std::size_t num_layers, std::size_t nx,
                                   std::size_t ny, std::size_t num_extra,
                                   double initial_celsius)
    : num_layers_(num_layers),
      nx_(nx),
      ny_(ny),
      nodes_(num_layers * nx * ny + num_extra, initial_celsius)
{
    XYLEM_ASSERT(num_layers_ > 0 && nx_ > 0 && ny_ > 0,
                 "temperature field needs positive dimensions");
}

double
TemperatureField::at(std::size_t layer, std::size_t ix, std::size_t iy) const
{
    XYLEM_ASSERT(layer < num_layers_ && ix < nx_ && iy < ny_,
                 "temperature index out of range");
    return nodes_[layer * cellsPerLayer() + iy * nx_ + ix];
}

double &
TemperatureField::at(std::size_t layer, std::size_t ix, std::size_t iy)
{
    XYLEM_ASSERT(layer < num_layers_ && ix < nx_ && iy < ny_,
                 "temperature index out of range");
    return nodes_[layer * cellsPerLayer() + iy * nx_ + ix];
}

double
TemperatureField::maxOfLayer(std::size_t layer) const
{
    XYLEM_ASSERT(layer < num_layers_, "layer out of range");
    const auto begin = nodes_.begin() +
                       static_cast<std::ptrdiff_t>(layer * cellsPerLayer());
    return *std::max_element(begin,
                             begin + static_cast<std::ptrdiff_t>(
                                         cellsPerLayer()));
}

double
TemperatureField::meanOfLayer(std::size_t layer) const
{
    XYLEM_ASSERT(layer < num_layers_, "layer out of range");
    const std::size_t base = layer * cellsPerLayer();
    double sum = 0.0;
    for (std::size_t c = 0; c < cellsPerLayer(); ++c)
        sum += nodes_[base + c];
    return sum / static_cast<double>(cellsPerLayer());
}

double
TemperatureField::maxInRect(std::size_t layer, const geometry::Rect &rect,
                            const geometry::Rect &die_extent) const
{
    const double dx = die_extent.w / static_cast<double>(nx_);
    const double dy = die_extent.h / static_cast<double>(ny_);
    double best = -1e30;
    bool found = false;
    for (std::size_t iy = 0; iy < ny_; ++iy) {
        for (std::size_t ix = 0; ix < nx_; ++ix) {
            const geometry::Point center{
                die_extent.x + (static_cast<double>(ix) + 0.5) * dx,
                die_extent.y + (static_cast<double>(iy) + 0.5) * dy};
            if (rect.contains(center)) {
                best = std::max(best, at(layer, ix, iy));
                found = true;
            }
        }
    }
    return found ? best : maxOfLayer(layer);
}

void
TemperatureField::hotspot(std::size_t layer, std::size_t &ix,
                          std::size_t &iy) const
{
    double best = -1e30;
    for (std::size_t y = 0; y < ny_; ++y) {
        for (std::size_t x = 0; x < nx_; ++x) {
            const double t = at(layer, x, y);
            if (t > best) {
                best = t;
                ix = x;
                iy = y;
            }
        }
    }
}

} // namespace xylem::thermal
