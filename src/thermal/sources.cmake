set(XYLEM_THERMAL_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/power_map.cpp
    ${CMAKE_CURRENT_LIST_DIR}/temperature.cpp
    ${CMAKE_CURRENT_LIST_DIR}/grid_model.cpp
    ${CMAKE_CURRENT_LIST_DIR}/grid_model_batch.cpp
    ${CMAKE_CURRENT_LIST_DIR}/mg/multigrid.cpp
    ${CMAKE_CURRENT_LIST_DIR}/mg/multigrid_batch.cpp
    ${CMAKE_CURRENT_LIST_DIR}/heatmap.cpp)
