/**
 * @file
 * Human-readable statistics report of a simulation run, in the spirit
 * of gem5's stats.txt: per-core pipeline/cache counters with derived
 * rates, plus DRAM and interconnect aggregates.
 */

#ifndef XYLEM_CPU_STATS_REPORT_HPP
#define XYLEM_CPU_STATS_REPORT_HPP

#include <ostream>

#include "cpu/activity.hpp"

namespace xylem::cpu {

/** Report verbosity. */
struct ReportOptions
{
    bool perCore = true;   ///< one block per core (else aggregate only)
    bool dram = true;      ///< DRAM bank/refresh/bandwidth section
};

/**
 * Write the report. All derived rates (IPC, miss ratios, bandwidth)
 * are computed here from the raw counters, so the report is
 * consistent with the SimResult by construction.
 */
void printReport(std::ostream &os, const SimResult &result,
                 const ReportOptions &opts = {});

} // namespace xylem::cpu

#endif // XYLEM_CPU_STATS_REPORT_HPP
