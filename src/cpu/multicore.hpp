/**
 * @file
 * The 8-core chip-multiprocessor simulator (our SESC stand-in):
 * 4-issue out-of-order cores abstracted by an interval/stall model,
 * private L1I/L1D and private coherent L2s, a bus-based snoopy MESI
 * protocol, four Wide I/O memory controllers and the DRAM stack
 * timing model (Table 3).
 *
 * Cores advance on local clocks and synchronise through a global
 * event queue at every L2-level transaction, which is where the
 * shared resources (snoop bus, DRAM channels) live. Each core may run
 * at its own frequency — needed for λ-aware frequency boosting.
 */

#ifndef XYLEM_CPU_MULTICORE_HPP
#define XYLEM_CPU_MULTICORE_HPP

#include <cstdint>
#include <vector>

#include "cpu/activity.hpp"
#include "dram/config.hpp"
#include "workloads/profile.hpp"

namespace xylem::cpu {

/** Architectural parameters (defaults follow Table 3). */
struct MulticoreConfig
{
    int numCores = 8;
    /** Per-core frequency [GHz]; resized/filled to numCores. */
    std::vector<double> coreFreqGHz = std::vector<double>(8, 2.4);

    int issueWidth = 4;
    double mispredictPenaltyCycles = 14.0;
    double l1HitCycles = 2.0;    ///< pipelined; not a stall source
    double l2HitCycles = 10.0;   ///< round trip (Table 3)
    double l2StallFactor = 0.5;  ///< exposed fraction of L2 latency
    double c2cCycles = 24.0;     ///< cache-to-cache intervention
    double busOccupancyNs = 2.5; ///< 512-bit snoop bus, uncore clock

    std::uint32_t l1iBytes = 32u << 10;
    std::uint32_t l1iWays = 2;
    std::uint32_t l1dBytes = 32u << 10;
    std::uint32_t l1dWays = 2;
    std::uint32_t l2Bytes = 256u << 10;
    std::uint32_t l2Ways = 8;
    std::uint32_t lineBytes = 64;

    dram::DramConfig dram;

    std::uint64_t instsPerThread = 300000;
    /**
     * Instructions per thread executed before measurement starts, to
     * warm caches, row buffers and coherence state. Statistics and
     * clocks are reset after the warm-up.
     */
    std::uint64_t warmupInsts = 400000;
    std::uint64_t seed = 12345;

    /** Set a single frequency for all cores. */
    void setUniformFrequency(double freq_ghz);
};

/** A software thread pinned to a core. */
struct ThreadSpec
{
    const workloads::Profile *profile;
    int core;
};

/**
 * Convenience: all 8 threads of `profile` pinned to cores 0..7.
 */
std::vector<ThreadSpec> allCoresRunning(const workloads::Profile &profile,
                                        int num_cores = 8);

/** Run one simulation. */
SimResult simulate(const MulticoreConfig &config,
                   const std::vector<ThreadSpec> &threads);

} // namespace xylem::cpu

#endif // XYLEM_CPU_MULTICORE_HPP
