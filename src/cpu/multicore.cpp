#include "cpu/multicore.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/logging.hpp"
#include "cpu/cache.hpp"
#include "dram/wideio.hpp"
#include "workloads/stream.hpp"

namespace xylem::cpu {

std::uint64_t
SimResult::totalInsts() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.insts;
    return total;
}

double
SimResult::ips() const
{
    return seconds > 0.0 ? static_cast<double>(totalInsts()) / seconds : 0.0;
}

double
SimResult::dramAveragePowerW() const
{
    return seconds > 0.0 ? dramEnergyJ / seconds : 0.0;
}

void
MulticoreConfig::setUniformFrequency(double freq_ghz)
{
    coreFreqGHz.assign(static_cast<std::size_t>(numCores), freq_ghz);
}

std::vector<ThreadSpec>
allCoresRunning(const workloads::Profile &profile, int num_cores)
{
    std::vector<ThreadSpec> threads;
    for (int c = 0; c < num_cores; ++c)
        threads.push_back({&profile, c});
    return threads;
}

namespace {

using workloads::Op;

/** Per-core simulation context. */
struct CoreCtx
{
    CoreCtx(const MulticoreConfig &cfg)
        : l1i(cfg.l1iBytes, cfg.l1iWays, cfg.lineBytes),
          l1d(cfg.l1dBytes, cfg.l1dWays, cfg.lineBytes),
          l2(cfg.l2Bytes, cfg.l2Ways, cfg.lineBytes)
    {
    }

    /** An L2-level transaction waiting to execute at timeNs. */
    struct PendingMem
    {
        bool active = false;
        std::uint64_t addr = 0;
        bool isStore = false;
    };

    bool active = false;      ///< has a thread and is not finished
    bool hasThread = false;
    std::unique_ptr<workloads::ThreadStream> stream;
    PendingMem pending;
    std::uint64_t remaining = 0;
    double freqGHz = 2.4;
    double timeNs = 0.0;
    double measureStartNs = 0.0; ///< set when the warm-up phase ends
    CoreActivity act;
    Cache l1i, l1d, l2;
};

/** The shared snoop bus. */
struct Bus
{
    double freeAtNs = 0.0;
    std::uint64_t transactions = 0;

    /** Arbitrate at `now`; returns the transfer completion time. */
    double
    acquire(double now, double occupancy_ns)
    {
        const double grant = std::max(now, freeAtNs);
        freeAtNs = grant + occupancy_ns;
        ++transactions;
        return freeAtNs;
    }
};

/** The full simulation engine. */
class Engine
{
  public:
    Engine(const MulticoreConfig &cfg,
           const std::vector<ThreadSpec> &threads)
        : cfg_(cfg), dram_(cfg.dram)
    {
        XYLEM_ASSERT(cfg_.numCores > 0, "need at least one core");
        XYLEM_ASSERT(static_cast<int>(cfg_.coreFreqGHz.size()) ==
                         cfg_.numCores,
                     "coreFreqGHz must have one entry per core");
        cores_.reserve(static_cast<std::size_t>(cfg_.numCores));
        for (int c = 0; c < cfg_.numCores; ++c) {
            cores_.emplace_back(cfg_);
            cores_.back().freqGHz = cfg_.coreFreqGHz[
                static_cast<std::size_t>(c)];
        }
        int thread_id = 0;
        for (const auto &t : threads) {
            XYLEM_ASSERT(t.core >= 0 && t.core < cfg_.numCores,
                         "thread pinned to invalid core ", t.core);
            CoreCtx &core = cores_[static_cast<std::size_t>(t.core)];
            XYLEM_ASSERT(!core.hasThread, "core ", t.core,
                         " already has a thread");
            XYLEM_ASSERT(t.profile, "thread needs a profile");
            core.stream = std::make_unique<workloads::ThreadStream>(
                *t.profile, thread_id, cfg_.seed);
            core.hasThread = true;
            core.act.hasThread = true;
            ++thread_id;
        }
        mc_requests_.assign(
            static_cast<std::size_t>(cfg_.dram.geometry.channels), 0);
    }

    SimResult run();

  private:
    /** Run every active thread for `insts` further instructions. */
    void runPhase(std::uint64_t insts);

    /** Advance one core until its next L2-level event (or the end). */
    void runCore(std::size_t core_idx);

    /**
     * One L2-level data transaction (demand miss path); returns the
     * stall applied to the core [ns].
     */
    double l2Transaction(CoreCtx &core, std::size_t core_idx,
                         std::uint64_t addr, bool is_store, double now_ns);

    const MulticoreConfig &cfg_;
    std::vector<CoreCtx> cores_;
    Bus bus_;
    dram::WideIoDram dram_;
    std::vector<std::uint64_t> mc_requests_;
};

double
Engine::l2Transaction(CoreCtx &core, std::size_t core_idx,
                      std::uint64_t addr, bool is_store, double now_ns)
{
    const double f = core.freqGHz;
    ++core.act.l2Accesses;

    const Mesi own = core.l2.access(addr);
    if (own != Mesi::Invalid) {
        // L2 hit. Stores need ownership.
        if (is_store) {
            if (own == Mesi::Shared) {
                // Upgrade: bus transaction, invalidate other copies.
                bus_.acquire(now_ns, cfg_.busOccupancyNs);
                for (std::size_t o = 0; o < cores_.size(); ++o) {
                    if (o != core_idx)
                        cores_[o].l2.invalidate(addr);
                }
                ++core.act.upgrades;
            }
            core.l2.setState(addr, Mesi::Modified);
            return 0.0; // stores retire via the write buffer
        }
        return cfg_.l2HitCycles * cfg_.l2StallFactor / f;
    }

    // L2 miss: evict, arbitrate for the bus, snoop, then memory.
    ++core.act.l2Misses;
    const double bus_done = bus_.acquire(now_ns, cfg_.busOccupancyNs);

    // Snoop the other caches.
    int owner = -1;
    bool shared_elsewhere = false;
    for (std::size_t o = 0; o < cores_.size(); ++o) {
        if (o == core_idx)
            continue;
        const Mesi st = cores_[o].l2.probe(addr);
        if (st == Mesi::Modified || st == Mesi::Exclusive) {
            owner = static_cast<int>(o);
            break;
        }
        if (st == Mesi::Shared)
            shared_elsewhere = true;
    }

    double data_ready;
    Mesi fill_state;
    if (owner >= 0) {
        // Cache-to-cache intervention.
        data_ready = bus_done + cfg_.c2cCycles / f;
        ++core.act.c2cTransfers;
        if (is_store) {
            cores_[static_cast<std::size_t>(owner)].l2.invalidate(addr);
            fill_state = Mesi::Modified;
        } else {
            cores_[static_cast<std::size_t>(owner)].l2.setState(
                addr, Mesi::Shared);
            fill_state = Mesi::Shared;
        }
    } else {
        // Fetch from the DRAM stack.
        const auto decoded = dram::decodeAddress(cfg_.dram.geometry, addr);
        ++mc_requests_[static_cast<std::size_t>(decoded.channel)];
        ++core.act.dramAccesses;
        data_ready = dram_.access(bus_done, addr, false);
        core.act.dramLatencyNs += data_ready - now_ns;
        if (is_store) {
            for (std::size_t o = 0; o < cores_.size(); ++o) {
                if (o != core_idx)
                    cores_[o].l2.invalidate(addr);
            }
            fill_state = Mesi::Modified;
        } else {
            fill_state = shared_elsewhere ? Mesi::Shared : Mesi::Exclusive;
        }
    }
    if (is_store && shared_elsewhere && owner < 0) {
        for (std::size_t o = 0; o < cores_.size(); ++o) {
            if (o != core_idx)
                cores_[o].l2.invalidate(addr);
        }
    }

    // Install the line; write back a dirty victim (fire and forget —
    // the MC write queue hides its latency, but it consumes DRAM
    // bandwidth). It is issued at the current time so the channel
    // timeline stays causally ordered.
    const Cache::Eviction ev = core.l2.fill(addr, fill_state);
    if (ev.valid && ev.state == Mesi::Modified) {
        const auto decoded = dram::decodeAddress(cfg_.dram.geometry,
                                                 ev.addr);
        ++mc_requests_[static_cast<std::size_t>(decoded.channel)];
        dram_.access(now_ns, ev.addr, true);
    }

    const double latency = data_ready - now_ns;
    if (is_store) {
        // Stores stall only through write-buffer back-pressure; DRAM
        // ones expose a fraction of their latency.
        return owner >= 0 ? 0.0
                          : latency /
                                (2.0 * core.stream->profile().mlp);
    }
    if (owner >= 0)
        return latency * cfg_.l2StallFactor;
    return latency / core.stream->profile().mlp;
}

void
Engine::runCore(std::size_t core_idx)
{
    CoreCtx &core = cores_[core_idx];
    const double f = core.freqGHz;
    const double issue_rate =
        static_cast<double>(cfg_.issueWidth) *
        core.stream->profile().issueEfficiency;
    const double ns_per_inst = 1.0 / (issue_rate * f);

    // Execute a transaction that was deferred so that it runs in
    // global time order (this core was the earliest in the queue).
    if (core.pending.active) {
        const double stall = l2Transaction(core, core_idx,
                                           core.pending.addr,
                                           core.pending.isStore,
                                           core.timeNs);
        core.timeNs += stall;
        core.pending.active = false;
    }

    // Run until the next globally visible (L2-level) event, with a
    // cap so compute-bound cores still interleave fairly.
    std::uint64_t batch = 20000;
    while (core.remaining > 0 && batch-- > 0) {
        const Op op = core.stream->next();
        --core.remaining;
        ++core.act.insts;
        ++core.act.l1iAccesses;
        core.timeNs += ns_per_inst;

        if (op.instMiss) {
            // L1I miss: almost always an L2 hit for our codes; charge
            // a partially hidden L2 round trip.
            ++core.act.l1iMisses;
            ++core.act.l2Accesses;
            core.timeNs += cfg_.l2HitCycles * cfg_.l2StallFactor / f;
        }

        switch (op.kind) {
          case Op::Kind::IntAlu:
            ++core.act.aluOps;
            break;
          case Op::Kind::Fpu:
            ++core.act.fpuOps;
            break;
          case Op::Kind::Branch:
            ++core.act.branches;
            if (op.mispredict) {
                ++core.act.mispredicts;
                core.timeNs += cfg_.mispredictPenaltyCycles / f;
            }
            break;
          case Op::Kind::Load:
          case Op::Kind::Store: {
            const bool is_store = op.kind == Op::Kind::Store;
            if (is_store)
                ++core.act.stores;
            else
                ++core.act.loads;
            ++core.act.l1dAccesses;
            const Mesi l1 = core.l1d.access(op.addr);
            if (l1 != Mesi::Invalid)
                break; // L1D hit: pipelined, no stall
            ++core.act.l1dMisses;
            core.l1d.fill(op.addr, Mesi::Shared); // L1D is write-through
            // Defer the shared-resource transaction: yield so that it
            // executes when this core is the earliest in global time.
            core.pending = {true, op.addr, is_store};
            batch = 0;
            break;
          }
        }
    }

    if (core.remaining == 0 && !core.pending.active) {
        core.active = false;
        core.act.busyNs = core.timeNs - core.measureStartNs;
    }
    core.act.cycles = (core.timeNs - core.measureStartNs) * f;
}

void
Engine::runPhase(std::uint64_t insts)
{
    using Entry = std::pair<double, std::size_t>; // (time, core)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        if (cores_[c].hasThread) {
            cores_[c].remaining = insts;
            cores_[c].active = true;
            queue.emplace(cores_[c].timeNs, c);
        }
    }
    while (!queue.empty()) {
        const auto [t, c] = queue.top();
        queue.pop();
        (void)t;
        runCore(c);
        if (cores_[c].active)
            queue.emplace(cores_[c].timeNs, c);
    }
}

SimResult
Engine::run()
{
    if (cfg_.warmupInsts > 0) {
        runPhase(cfg_.warmupInsts);
        // Barrier at the end of the warm-up: threads of a parallel
        // section start together. This also keeps the shared-resource
        // timeline (DRAM banks, snoop bus) causally consistent — the
        // slowest warm-up thread advanced it the furthest.
        double barrier_ns = 0.0;
        for (const auto &core : cores_) {
            if (core.hasThread)
                barrier_ns = std::max(barrier_ns, core.timeNs);
        }
        // Reset every statistic, but keep all micro-architectural
        // state (caches, row buffers, stream positions).
        for (auto &core : cores_) {
            const bool had = core.act.hasThread;
            core.act = CoreActivity{};
            core.act.hasThread = had;
            if (core.hasThread)
                core.timeNs = barrier_ns;
            core.measureStartNs = core.timeNs;
        }
        bus_.transactions = 0;
        dram_.resetStats();
        std::fill(mc_requests_.begin(), mc_requests_.end(), 0);
    }
    runPhase(cfg_.instsPerThread);

    SimResult result;
    double max_ns = 0.0;
    for (auto &core : cores_) {
        result.cores.push_back(core.act);
        if (core.hasThread)
            max_ns = std::max(max_ns, core.act.busyNs);
    }
    result.seconds = max_ns * 1e-9;
    result.busTransactions = bus_.transactions;
    result.mcRequests = mc_requests_;
    result.dram = dram_.stats();
    result.dramEnergyJ = dram_.energyJoules(max_ns);
    return result;
}

} // namespace

SimResult
simulate(const MulticoreConfig &config, const std::vector<ThreadSpec> &threads)
{
    XYLEM_ASSERT(!threads.empty(), "simulation needs at least one thread");
    Engine engine(config, threads);
    return engine.run();
}

} // namespace xylem::cpu
