#include "cpu/cache.hpp"

#include "common/logging.hpp"

namespace xylem::cpu {

namespace {

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::uint32_t size_bytes, std::uint32_t ways,
             std::uint32_t line_bytes)
    : line_bytes_(line_bytes), ways_(ways)
{
    XYLEM_ASSERT(isPow2(size_bytes) && isPow2(line_bytes) && ways > 0,
                 "cache geometry must be powers of two");
    const std::uint32_t num_lines = size_bytes / line_bytes;
    XYLEM_ASSERT(num_lines % ways == 0, "cache ways must divide lines");
    num_sets_ = num_lines / ways;
    XYLEM_ASSERT(isPow2(num_sets_), "cache sets must be a power of two");
    lines_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

std::uint64_t
Cache::lineAddr(std::uint64_t addr) const
{
    return addr / line_bytes_;
}

std::uint32_t
Cache::setIndex(std::uint64_t line) const
{
    return static_cast<std::uint32_t>(line & (num_sets_ - 1));
}

Cache::Line *
Cache::findLine(std::uint64_t addr)
{
    const std::uint64_t line = lineAddr(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(line)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].state != Mesi::Invalid && set[w].tag == line)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(std::uint64_t addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Mesi
Cache::access(std::uint64_t addr)
{
    Line *line = findLine(addr);
    if (!line)
        return Mesi::Invalid;
    line->lastUse = ++use_counter_;
    return line->state;
}

Mesi
Cache::probe(std::uint64_t addr) const
{
    const Line *line = findLine(addr);
    return line ? line->state : Mesi::Invalid;
}

Cache::Eviction
Cache::fill(std::uint64_t addr, Mesi state)
{
    XYLEM_ASSERT(state != Mesi::Invalid, "cannot fill an invalid line");
    Eviction ev;
    const std::uint64_t line = lineAddr(addr);
    Line *set = &lines_[static_cast<std::size_t>(setIndex(line)) * ways_];

    Line *invalid_way = nullptr;
    Line *lru_way = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].state != Mesi::Invalid && set[w].tag == line) {
            // Already resident; just update the state.
            set[w].state = state;
            set[w].lastUse = ++use_counter_;
            return ev;
        }
        if (set[w].state == Mesi::Invalid) {
            if (!invalid_way)
                invalid_way = &set[w];
        } else if (!lru_way || set[w].lastUse < lru_way->lastUse) {
            lru_way = &set[w];
        }
    }
    // Prefer an invalid way; otherwise evict the LRU line.
    Line *victim = invalid_way ? invalid_way : lru_way;
    if (victim->state != Mesi::Invalid) {
        ev.valid = true;
        ev.addr = victim->tag * line_bytes_;
        ev.state = victim->state;
    }
    victim->tag = line;
    victim->state = state;
    victim->lastUse = ++use_counter_;
    return ev;
}

void
Cache::setState(std::uint64_t addr, Mesi state)
{
    if (Line *line = findLine(addr))
        line->state = state;
}

void
Cache::invalidate(std::uint64_t addr)
{
    if (Line *line = findLine(addr))
        line->state = Mesi::Invalid;
}

std::size_t
Cache::residentLines() const
{
    std::size_t n = 0;
    for (const auto &l : lines_)
        if (l.state != Mesi::Invalid)
            ++n;
    return n;
}

} // namespace xylem::cpu
