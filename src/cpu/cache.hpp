/**
 * @file
 * Set-associative cache model with true LRU and per-line MESI state,
 * used for the private L1s (state unused) and the coherent private
 * L2s of the 8-core chip (Table 3).
 */

#ifndef XYLEM_CPU_CACHE_HPP
#define XYLEM_CPU_CACHE_HPP

#include <cstdint>
#include <vector>

namespace xylem::cpu {

/** MESI coherence states. */
enum class Mesi : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/**
 * A set-associative cache with LRU replacement.
 *
 * The cache stores tags and MESI state only (no data). Addresses are
 * full physical byte addresses.
 */
class Cache
{
  public:
    /** Returned by fill(): the line that was evicted, if any. */
    struct Eviction
    {
        bool valid = false;
        std::uint64_t addr = 0;
        Mesi state = Mesi::Invalid;
    };

    Cache(std::uint32_t size_bytes, std::uint32_t ways,
          std::uint32_t line_bytes);

    std::uint32_t numSets() const { return num_sets_; }
    std::uint32_t ways() const { return ways_; }

    /**
     * Look up `addr`, updating LRU on hit.
     * @return the line's MESI state, or Invalid on miss.
     */
    Mesi access(std::uint64_t addr);

    /** Look up without touching LRU (snoops). */
    Mesi probe(std::uint64_t addr) const;

    /**
     * Insert `addr` with `state`, evicting the LRU line of its set
     * if needed.
     */
    Eviction fill(std::uint64_t addr, Mesi state);

    /** Change the state of a resident line; no-op if absent. */
    void setState(std::uint64_t addr, Mesi state);

    /** Invalidate a line if resident. */
    void invalidate(std::uint64_t addr);

    /** Number of resident (valid) lines. */
    std::size_t residentLines() const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        Mesi state = Mesi::Invalid;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint32_t setIndex(std::uint64_t line) const;
    Line *findLine(std::uint64_t addr);
    const Line *findLine(std::uint64_t addr) const;

    std::uint32_t line_bytes_;
    std::uint32_t ways_;
    std::uint32_t num_sets_;
    std::uint64_t use_counter_ = 0;
    std::vector<Line> lines_; ///< [set][way] flattened
};

} // namespace xylem::cpu

#endif // XYLEM_CPU_CACHE_HPP
