/**
 * @file
 * Activity counters produced by the multicore simulation; these are
 * the inputs to the McPAT-lite power model and the DRAM power maps.
 */

#ifndef XYLEM_CPU_ACTIVITY_HPP
#define XYLEM_CPU_ACTIVITY_HPP

#include <cstdint>
#include <vector>

#include "dram/wideio.hpp"

namespace xylem::cpu {

/** Per-core event counters over one simulation run. */
struct CoreActivity
{
    bool hasThread = false;
    std::uint64_t insts = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t fpuOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t upgrades = 0;     ///< S->M coherence upgrades
    std::uint64_t c2cTransfers = 0; ///< cache-to-cache interventions
    std::uint64_t dramAccesses = 0;
    double dramLatencyNs = 0.0; ///< summed DRAM round-trip latency
    double cycles = 0.0;
    double busyNs = 0.0;            ///< local completion time

    double ipc() const
    {
        return cycles > 0.0 ? static_cast<double>(insts) / cycles : 0.0;
    }
};

/** Result of one multicore simulation run. */
struct SimResult
{
    /** Duration of the parallel section (slowest thread) [s]. */
    double seconds = 0.0;
    std::vector<CoreActivity> cores;
    std::uint64_t busTransactions = 0;
    std::vector<std::uint64_t> mcRequests; ///< per channel
    dram::DramStats dram;
    double dramEnergyJ = 0.0;

    std::uint64_t totalInsts() const;
    /** Aggregate instructions per second over the run. */
    double ips() const;
    double dramAveragePowerW() const;
};

} // namespace xylem::cpu

#endif // XYLEM_CPU_ACTIVITY_HPP
