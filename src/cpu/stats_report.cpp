#include "cpu/stats_report.hpp"

#include <iomanip>

namespace xylem::cpu {

namespace {

void
stat(std::ostream &os, const char *name, double value,
     const char *comment = nullptr)
{
    os << std::left << std::setw(28) << name << std::right
       << std::setw(16) << std::setprecision(6) << value;
    if (comment)
        os << "   # " << comment;
    os << "\n";
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

} // namespace

void
printReport(std::ostream &os, const SimResult &result,
            const ReportOptions &opts)
{
    os << "---------- simulation ----------\n";
    stat(os, "sim.seconds", result.seconds, "parallel-section runtime");
    stat(os, "sim.insts", static_cast<double>(result.totalInsts()));
    stat(os, "sim.ips", result.ips(), "aggregate instructions/second");
    stat(os, "bus.transactions",
         static_cast<double>(result.busTransactions));
    if (result.seconds > 0.0) {
        stat(os, "bus.txPerSecond",
             static_cast<double>(result.busTransactions) /
                 result.seconds);
    }

    if (opts.perCore) {
        for (std::size_t c = 0; c < result.cores.size(); ++c) {
            const auto &a = result.cores[c];
            os << "---------- core " << c
               << (a.hasThread ? "" : " (idle)") << " ----------\n";
            if (!a.hasThread)
                continue;
            stat(os, "ipc", a.ipc());
            stat(os, "insts", static_cast<double>(a.insts));
            stat(os, "branch.mispredictRate",
                 ratio(a.mispredicts, a.branches));
            stat(os, "l1d.missRate", ratio(a.l1dMisses, a.l1dAccesses));
            stat(os, "l1i.missRate", ratio(a.l1iMisses, a.l1iAccesses));
            stat(os, "l2.missRate", ratio(a.l2Misses, a.l2Accesses));
            stat(os, "l2.mpki",
                 1000.0 * ratio(a.l2Misses, a.insts),
                 "L2 misses per kilo-instruction");
            stat(os, "coherence.upgrades", static_cast<double>(a.upgrades));
            stat(os, "coherence.c2cTransfers",
                 static_cast<double>(a.c2cTransfers));
            stat(os, "dram.accesses", static_cast<double>(a.dramAccesses));
            if (a.dramAccesses) {
                stat(os, "dram.avgLatencyNs",
                     a.dramLatencyNs / static_cast<double>(a.dramAccesses));
            }
        }
    }

    if (opts.dram) {
        os << "---------- dram ----------\n";
        stat(os, "dram.requests", static_cast<double>(result.dram.requests));
        stat(os, "dram.rowHitRate", result.dram.rowHitRate());
        stat(os, "dram.refreshOps",
             static_cast<double>(result.dram.refreshOps));
        stat(os, "dram.energyJ", result.dramEnergyJ);
        if (result.seconds > 0.0) {
            stat(os, "dram.avgPowerW", result.dramAveragePowerW());
            stat(os, "dram.bandwidthGBs",
                 static_cast<double>(result.dram.requests) * 64.0 /
                     result.seconds / 1e9,
                 "data moved / runtime");
        }
        for (std::size_t d = 0; d < result.dram.dies.size(); ++d) {
            const std::string name =
                "dram.die" + std::to_string(d) + ".accesses";
            stat(os, name.c_str(),
                 static_cast<double>(result.dram.dies[d].totalAccesses()));
        }
    }
}

} // namespace xylem::cpu
