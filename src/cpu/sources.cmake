set(XYLEM_CPU_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/cache.cpp
    ${CMAKE_CURRENT_LIST_DIR}/multicore.cpp
    ${CMAKE_CURRENT_LIST_DIR}/stats_report.cpp)
