/**
 * @file
 * Uniform 2D grids over a die area and scalar fields on them.
 *
 * The thermal model discretises every layer of the stack on the same
 * XY grid; floorplan blocks (power sources, conductivity regions) are
 * rasterised onto that grid with exact area weighting.
 */

#ifndef XYLEM_GEOMETRY_GRID_HPP
#define XYLEM_GEOMETRY_GRID_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "geometry/rect.hpp"

namespace xylem::geometry {

/**
 * A uniform nx-by-ny grid covering a rectangular die area.
 * Cell (0, 0) is at the lower-left corner.
 */
class Grid2D
{
  public:
    /** Build a grid of nx x ny cells over `extent`. */
    Grid2D(Rect extent, std::size_t nx, std::size_t ny);

    std::size_t nx() const { return nx_; }
    std::size_t ny() const { return ny_; }
    std::size_t cells() const { return nx_ * ny_; }
    const Rect &extent() const { return extent_; }
    double cellWidth() const { return extent_.w / static_cast<double>(nx_); }
    double cellHeight() const { return extent_.h / static_cast<double>(ny_); }
    double cellArea() const { return cellWidth() * cellHeight(); }

    /** Flat index of cell (ix, iy). */
    std::size_t index(std::size_t ix, std::size_t iy) const;

    /** Geometric rectangle covered by cell (ix, iy). */
    Rect cellRect(std::size_t ix, std::size_t iy) const;

    /** Centre point of cell (ix, iy). */
    Point cellCenter(std::size_t ix, std::size_t iy) const;

    /** Cell containing the point (clamped to the grid). */
    void locate(const Point &p, std::size_t &ix, std::size_t &iy) const;

    /**
     * Visit every cell overlapping `r`, reporting the overlap fraction
     * of the *cell* area (in (0, 1]).
     */
    void forEachOverlap(
        const Rect &r,
        const std::function<void(std::size_t ix, std::size_t iy,
                                 double cell_fraction)> &fn) const;

  private:
    Rect extent_;
    std::size_t nx_;
    std::size_t ny_;
};

/**
 * A scalar field on a Grid2D (e.g. a conductivity map or a power map).
 */
class Field2D
{
  public:
    /** Create a field over `grid`, filled with `initial`. */
    explicit Field2D(const Grid2D &grid, double initial = 0.0);

    const Grid2D &grid() const { return grid_; }

    double at(std::size_t ix, std::size_t iy) const;
    double &at(std::size_t ix, std::size_t iy);
    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Set every cell to `value`. */
    void fill(double value);

    /**
     * Area-weighted blend of `value` into every cell overlapping `r`:
     * cell = (1 - f) * cell + f * value, with f the overlap fraction.
     * Correct for painting material conductivities (rule of mixtures).
     */
    void paint(const Rect &r, double value);

    /**
     * Distribute the total amount `total` over the cells overlapping
     * `r`, proportional to overlapped area. Correct for power sources.
     */
    void deposit(const Rect &r, double total);

    /** Sum of all cells. */
    double sum() const;

    /** Maximum cell value (field must be non-empty). */
    double max() const;

  private:
    Grid2D grid_;
    std::vector<double> data_;
};

} // namespace xylem::geometry

#endif // XYLEM_GEOMETRY_GRID_HPP
