/**
 * @file
 * Axis-aligned rectangles in die coordinates (metres), plus small
 * point/size helpers. Used by floorplans, conductivity painting and
 * the thermal grid.
 */

#ifndef XYLEM_GEOMETRY_RECT_HPP
#define XYLEM_GEOMETRY_RECT_HPP

#include <algorithm>
#include <ostream>

namespace xylem::geometry {

/** A 2D point in metres. */
struct Point
{
    double x = 0.0;
    double y = 0.0;
};

/** Euclidean distance between two points. */
double distance(const Point &a, const Point &b);

/**
 * Axis-aligned rectangle: origin (x, y) is the lower-left corner,
 * extent (w, h) must be non-negative. All units metres.
 */
struct Rect
{
    double x = 0.0; ///< lower-left x
    double y = 0.0; ///< lower-left y
    double w = 0.0; ///< width
    double h = 0.0; ///< height

    double area() const { return w * h; }
    double right() const { return x + w; }
    double top() const { return y + h; }
    Point center() const { return {x + w / 2.0, y + h / 2.0}; }

    /** True iff the point lies inside or on the boundary. */
    bool contains(const Point &p) const;

    /** True iff this rectangle fully contains the other. */
    bool contains(const Rect &other) const;

    /** True iff the two rectangles overlap with positive area. */
    bool overlaps(const Rect &other) const;

    /** Area of the intersection (0 if disjoint). */
    double intersectionArea(const Rect &other) const;

    /** Intersection rectangle (zero-sized if disjoint). */
    Rect intersection(const Rect &other) const;

    /** Rectangle grown by `margin` on every side. */
    Rect inflated(double margin) const;
};

std::ostream &operator<<(std::ostream &os, const Rect &r);

} // namespace xylem::geometry

#endif // XYLEM_GEOMETRY_RECT_HPP
