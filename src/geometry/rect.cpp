#include "geometry/rect.hpp"

#include <cmath>

namespace xylem::geometry {

double
distance(const Point &a, const Point &b)
{
    return std::hypot(a.x - b.x, a.y - b.y);
}

bool
Rect::contains(const Point &p) const
{
    return p.x >= x && p.x <= right() && p.y >= y && p.y <= top();
}

bool
Rect::contains(const Rect &other) const
{
    return other.x >= x && other.right() <= right() && other.y >= y &&
           other.top() <= top();
}

bool
Rect::overlaps(const Rect &other) const
{
    return intersectionArea(other) > 0.0;
}

double
Rect::intersectionArea(const Rect &other) const
{
    const Rect i = intersection(other);
    return i.area();
}

Rect
Rect::intersection(const Rect &other) const
{
    const double ix = std::max(x, other.x);
    const double iy = std::max(y, other.y);
    const double ir = std::min(right(), other.right());
    const double it = std::min(top(), other.top());
    if (ir <= ix || it <= iy)
        return Rect{ix, iy, 0.0, 0.0};
    return Rect{ix, iy, ir - ix, it - iy};
}

Rect
Rect::inflated(double margin) const
{
    return Rect{x - margin, y - margin, w + 2.0 * margin, h + 2.0 * margin};
}

std::ostream &
operator<<(std::ostream &os, const Rect &r)
{
    return os << "[" << r.x << "," << r.y << " " << r.w << "x" << r.h << "]";
}

} // namespace xylem::geometry
