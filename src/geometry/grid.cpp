#include "geometry/grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace xylem::geometry {

Grid2D::Grid2D(Rect extent, std::size_t nx, std::size_t ny)
    : extent_(extent), nx_(nx), ny_(ny)
{
    XYLEM_ASSERT(nx_ > 0 && ny_ > 0, "grid needs positive dimensions");
    XYLEM_ASSERT(extent_.w > 0.0 && extent_.h > 0.0,
                 "grid extent must have positive area");
}

std::size_t
Grid2D::index(std::size_t ix, std::size_t iy) const
{
    XYLEM_ASSERT(ix < nx_ && iy < ny_, "grid index out of range");
    return iy * nx_ + ix;
}

Rect
Grid2D::cellRect(std::size_t ix, std::size_t iy) const
{
    return Rect{extent_.x + static_cast<double>(ix) * cellWidth(),
                extent_.y + static_cast<double>(iy) * cellHeight(),
                cellWidth(), cellHeight()};
}

Point
Grid2D::cellCenter(std::size_t ix, std::size_t iy) const
{
    return cellRect(ix, iy).center();
}

void
Grid2D::locate(const Point &p, std::size_t &ix, std::size_t &iy) const
{
    const double fx = (p.x - extent_.x) / cellWidth();
    const double fy = (p.y - extent_.y) / cellHeight();
    const auto clamp = [](double v, std::size_t n) {
        const auto max_idx = static_cast<double>(n - 1);
        return static_cast<std::size_t>(std::clamp(v, 0.0, max_idx));
    };
    ix = clamp(std::floor(fx), nx_);
    iy = clamp(std::floor(fy), ny_);
}

void
Grid2D::forEachOverlap(
    const Rect &r,
    const std::function<void(std::size_t, std::size_t, double)> &fn) const
{
    const Rect clipped = r.intersection(extent_);
    if (clipped.area() <= 0.0)
        return;

    std::size_t ix0, iy0, ix1, iy1;
    // Nudge the corners inwards so cells that only share an edge with
    // the rectangle are not visited.
    const double eps_x = cellWidth() * 1e-9;
    const double eps_y = cellHeight() * 1e-9;
    locate({clipped.x + eps_x, clipped.y + eps_y}, ix0, iy0);
    locate({clipped.right() - eps_x, clipped.top() - eps_y}, ix1, iy1);

    const double inv_cell_area = 1.0 / cellArea();
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
        for (std::size_t ix = ix0; ix <= ix1; ++ix) {
            const double a = cellRect(ix, iy).intersectionArea(clipped);
            if (a > 0.0)
                fn(ix, iy, a * inv_cell_area);
        }
    }
}

Field2D::Field2D(const Grid2D &grid, double initial)
    : grid_(grid), data_(grid.cells(), initial)
{
}

double
Field2D::at(std::size_t ix, std::size_t iy) const
{
    return data_[grid_.index(ix, iy)];
}

double &
Field2D::at(std::size_t ix, std::size_t iy)
{
    return data_[grid_.index(ix, iy)];
}

void
Field2D::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Field2D::paint(const Rect &r, double value)
{
    grid_.forEachOverlap(r, [&](std::size_t ix, std::size_t iy, double f) {
        double &cell = data_[grid_.index(ix, iy)];
        cell = (1.0 - f) * cell + f * value;
    });
}

void
Field2D::deposit(const Rect &r, double total)
{
    const Rect clipped = r.intersection(grid_.extent());
    const double area = clipped.area();
    if (area <= 0.0 || total == 0.0)
        return;
    const double per_area = total / area;
    grid_.forEachOverlap(r, [&](std::size_t ix, std::size_t iy, double f) {
        data_[grid_.index(ix, iy)] += per_area * f * grid_.cellArea();
    });
}

double
Field2D::sum() const
{
    double s = 0.0;
    for (double v : data_)
        s += v;
    return s;
}

double
Field2D::max() const
{
    XYLEM_ASSERT(!data_.empty(), "max of empty field");
    return *std::max_element(data_.begin(), data_.end());
}

} // namespace xylem::geometry
