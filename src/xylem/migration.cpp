#include "xylem/migration.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::core {

MigrationResult
runMigration(StackSystem &system, const workloads::Profile &profile,
             const std::vector<int> &core_set, const MigrationOptions &opts)
{
    XYLEM_ASSERT(static_cast<int>(core_set.size()) >= 2 * opts.numThreads,
                 "migration needs at least two disjoint placements");
    const auto &cfg = system.config();
    const std::size_t n_cores = static_cast<std::size_t>(cfg.cpu.numCores);
    std::vector<double> freqs(n_cores, opts.freqGHz);

    // Two disjoint placements within the core set; the threads hop
    // between them every period so each pair of cores cools while the
    // other one works.
    std::vector<std::vector<cpu::ThreadSpec>> placements(2);
    for (int t = 0; t < opts.numThreads; ++t) {
        placements[0].push_back({&profile, core_set[
            static_cast<std::size_t>(t)]});
        placements[1].push_back({&profile, core_set[
            static_cast<std::size_t>(opts.numThreads + t)]});
    }

    // Per-placement power maps from the performance simulation.
    std::vector<thermal::PowerMap> maps;
    cpu::MulticoreConfig sim_cfg = cfg.cpu;
    sim_cfg.coreFreqGHz = freqs;
    for (const auto &threads : placements) {
        const SimResultPtr sim = cachedSimulate(sim_cfg, threads);
        maps.push_back(system.powerMapFor(*sim, freqs));
    }

    // Placement-averaged map -> initial steady state.
    thermal::PowerMap avg = maps[0];
    for (std::size_t l = 0; l < avg.numLayers(); ++l) {
        auto &data = avg.layer(static_cast<int>(l)).data();
        const auto &other = maps[1].layer(static_cast<int>(l)).data();
        for (std::size_t c = 0; c < data.size(); ++c)
            data[c] = 0.5 * (data[c] + other[c]);
    }
    const auto &model = system.thermalModel();
    // One workspace for the whole trace: the initial steady solve and
    // every transient step reuse the same CG buffers/factorisation.
    thermal::SolverWorkspace workspace;
    thermal::TemperatureField field =
        model.solveSteady(avg, nullptr, nullptr, &workspace);

    const double dt = opts.periodSeconds /
                      static_cast<double>(opts.stepsPerPhase);
    const auto proc_layer =
        static_cast<std::size_t>(system.builtStack().procMetal);

    MigrationResult out;
    double sum = 0.0;
    int measured = 0;
    for (int phase = 0; phase < opts.numPhases; ++phase) {
        const thermal::PowerMap &map = maps[
            static_cast<std::size_t>(phase % 2)];
        for (int s = 0; s < opts.stepsPerPhase; ++s) {
            field = model.stepTransient(field, map, dt, nullptr,
                                        &workspace);
            const double hot = field.maxOfLayer(proc_layer);
            out.trace.push_back(hot);
            if (phase >= opts.warmupPhases) {
                sum += hot;
                out.maxHotspot = std::max(out.maxHotspot, hot);
                ++measured;
            }
        }
    }
    out.avgHotspot = measured ? sum / measured : 0.0;
    return out;
}

} // namespace xylem::core
