#include "xylem/config_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace xylem::core {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

double
parseNumber(const std::string &value, int line_no)
{
    std::size_t used = 0;
    double out = 0.0;
    try {
        out = std::stod(value, &used);
    } catch (const std::exception &) {
        fatal("config line ", line_no, ": '", value, "' is not a number");
    }
    if (used != value.size())
        fatal("config line ", line_no, ": trailing junk in '", value, "'");
    return out;
}

std::uint64_t
parseCount(const std::string &value, int line_no)
{
    const double v = parseNumber(value, line_no);
    if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v)))
        fatal("config line ", line_no, ": '", value,
              "' is not a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

} // namespace

SystemConfig
parseSystemConfig(std::istream &in)
{
    SystemConfig cfg;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line ", line_no, ": expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (value.empty())
            fatal("config line ", line_no, ": empty value for '", key,
                  "'");

        if (key == "scheme") {
            cfg.stackSpec.scheme = stack::schemeFromString(value);
        } else if (key == "numDramDies") {
            cfg.stackSpec.numDramDies =
                static_cast<int>(parseCount(value, line_no));
        } else if (key == "dieThicknessUm") {
            cfg.stackSpec.dieThickness =
                parseNumber(value, line_no) * 1e-6;
        } else if (key == "gridNx") {
            cfg.stackSpec.gridNx = parseCount(value, line_no);
        } else if (key == "gridNy") {
            cfg.stackSpec.gridNy = parseCount(value, line_no);
        } else if (key == "d2dLambdaOverride") {
            cfg.stackSpec.d2dLambdaOverride = parseNumber(value, line_no);
        } else if (key == "ambientCelsius") {
            cfg.solver.ambientCelsius = parseNumber(value, line_no);
        } else if (key == "convectionResistance") {
            cfg.solver.convectionResistance = parseNumber(value, line_no);
        } else if (key == "solverTolerance") {
            cfg.solver.tolerance = parseNumber(value, line_no);
        } else if (key == "solverThreads") {
            cfg.solver.threads =
                static_cast<int>(parseCount(value, line_no));
        } else if (key == "solver") {
            // Typed Error (not fatal()): a bad solver choice arriving
            // over the service wire must surface as a recoverable
            // ErrorCode::Config, not tear the daemon down.
            if (value == "cg")
                cfg.solver.kind = thermal::SolverKind::CG;
            else if (value == "mg")
                cfg.solver.kind = thermal::SolverKind::Multigrid;
            else
                raise(ErrorCode::Config, "config line ", line_no,
                      ": invalid solver '", value,
                      "' (valid choices: cg, mg)");
        } else if (key == "precond") {
            if (value == "jacobi")
                cfg.solver.preconditioner = thermal::Preconditioner::Jacobi;
            else if (value == "line")
                cfg.solver.preconditioner =
                    thermal::Preconditioner::VerticalLine;
            else if (value == "mg")
                cfg.solver.preconditioner =
                    thermal::Preconditioner::Multigrid;
            else
                raise(ErrorCode::Config, "config line ", line_no,
                      ": invalid precond '", value,
                      "' (valid choices: jacobi, line, mg)");
        } else if (key == "instsPerThread") {
            cfg.cpu.instsPerThread = parseCount(value, line_no);
        } else if (key == "warmupInsts") {
            cfg.cpu.warmupInsts = parseCount(value, line_no);
        } else if (key == "seed") {
            cfg.cpu.seed = parseCount(value, line_no);
        } else if (key == "tjMaxProc") {
            cfg.tjMaxProc = parseNumber(value, line_no);
        } else if (key == "tMaxDram") {
            cfg.tMaxDram = parseNumber(value, line_no);
        } else if (key == "electroThermalIterations") {
            cfg.electroThermalIterations =
                static_cast<int>(parseCount(value, line_no));
        } else if (key == "leakageTempCoefficient") {
            cfg.leakage.tempCoefficient = parseNumber(value, line_no);
        } else if (key == "batch.enabled") {
            // Typed Errors for batch.*: these keys arrive over the
            // service wire, so bad values must be recoverable
            // ErrorCode::Config responses, never daemon teardown.
            if (value == "true" || value == "1")
                cfg.batch.enabled = true;
            else if (value == "false" || value == "0")
                cfg.batch.enabled = false;
            else
                raise(ErrorCode::Config, "config line ", line_no,
                      ": invalid batch.enabled '", value,
                      "' (valid choices: true, false)");
        } else if (key == "batch.maxRhs") {
            const double v = parseNumber(value, line_no);
            if (v < 1 ||
                v > static_cast<double>(thermal::kMaxBatchRhs) ||
                v != static_cast<double>(static_cast<int>(v)))
                raise(ErrorCode::Config, "config line ", line_no,
                      ": batch.maxRhs must be an integer in [1, ",
                      thermal::kMaxBatchRhs, "], got '", value, "'");
            cfg.batch.maxRhs = static_cast<int>(v);
        } else {
            fatal("config line ", line_no, ": unknown key '", key, "'");
        }
    }
    return cfg;
}

SystemConfig
loadSystemConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    return parseSystemConfig(in);
}

std::string
formatSystemConfig(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << "scheme = " << stack::toString(cfg.stackSpec.scheme) << "\n";
    os << "numDramDies = " << cfg.stackSpec.numDramDies << "\n";
    os << "dieThicknessUm = " << cfg.stackSpec.dieThickness * 1e6 << "\n";
    os << "gridNx = " << cfg.stackSpec.gridNx << "\n";
    os << "gridNy = " << cfg.stackSpec.gridNy << "\n";
    os << "d2dLambdaOverride = " << cfg.stackSpec.d2dLambdaOverride
       << "\n";
    os << "ambientCelsius = " << cfg.solver.ambientCelsius << "\n";
    os << "convectionResistance = " << cfg.solver.convectionResistance
       << "\n";
    os << "solverTolerance = " << cfg.solver.tolerance << "\n";
    os << "solverThreads = " << cfg.solver.threads << "\n";
    os << "solver = " << thermal::toString(cfg.solver.kind) << "\n";
    os << "precond = " << thermal::toString(cfg.solver.preconditioner)
       << "\n";
    os << "instsPerThread = " << cfg.cpu.instsPerThread << "\n";
    os << "warmupInsts = " << cfg.cpu.warmupInsts << "\n";
    os << "seed = " << cfg.cpu.seed << "\n";
    os << "tjMaxProc = " << cfg.tjMaxProc << "\n";
    os << "tMaxDram = " << cfg.tMaxDram << "\n";
    os << "electroThermalIterations = " << cfg.electroThermalIterations
       << "\n";
    os << "leakageTempCoefficient = " << cfg.leakage.tempCoefficient
       << "\n";
    os << "batch.enabled = " << (cfg.batch.enabled ? "true" : "false")
       << "\n";
    os << "batch.maxRhs = " << cfg.batch.maxRhs << "\n";
    return os.str();
}

} // namespace xylem::core
