#include "xylem/experiments.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "xylem/config_io.hpp"

namespace xylem::core {

namespace {

/** Build a system for `cfg` with the scheme replaced. */
StackSystem
makeSystem(const ExperimentConfig &cfg, stack::Scheme scheme)
{
    SystemConfig sys = cfg.base;
    sys.stackSpec.scheme = scheme;
    return StackSystem(std::move(sys));
}

std::vector<const workloads::Profile *>
resolveApps(const ExperimentConfig &cfg)
{
    std::vector<const workloads::Profile *> apps;
    for (const auto &name : cfg.apps)
        apps.push_back(&workloads::profileByName(name));
    XYLEM_ASSERT(!apps.empty(), "experiment needs at least one app");
    return apps;
}

/** Exact (bit-preserving) text form of a double for cache keys. */
std::string
hexDouble(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

/**
 * Canonical fingerprint of everything a steady-state evaluation
 * depends on, for persistent cache keys. formatSystemConfig covers
 * the user-tunable surface; the extras below are the remaining knobs
 * reachable from code (ablation hooks, solver internals).
 */
std::string
configFingerprint(const ExperimentConfig &cfg, stack::Scheme scheme)
{
    SystemConfig sys = cfg.base;
    sys.stackSpec.scheme = scheme;
    std::ostringstream os;
    os << formatSystemConfig(sys);
    // solver/precond are already covered by formatSystemConfig.
    os << "maxIterations = " << sys.solver.maxIterations << "\n";
    os << "ttsvSites =";
    for (const auto &p : sys.stackSpec.customTtsvSites)
        os << ' ' << hexDouble(p.x) << ',' << hexDouble(p.y);
    os << "\n";
    return os.str();
}

// ---------------------------------------------------------------
// Binary codecs for the persisted experiment records.
// ---------------------------------------------------------------

void
encodeTempEntries(runtime::BinaryWriter &w,
                  const std::vector<TempSweepEntry> &entries)
{
    w.u64(entries.size());
    for (const auto &e : entries) {
        w.str(e.app);
        w.i32(static_cast<std::int32_t>(e.scheme));
        w.f64(e.freqGHz);
        w.f64(e.procHotspotC);
        w.f64(e.dramBottomHotspotC);
        w.f64(e.procPowerW);
        w.f64(e.dramPowerW);
    }
}

std::vector<TempSweepEntry>
decodeTempEntries(runtime::BinaryReader &r)
{
    std::vector<TempSweepEntry> entries(r.u64());
    for (auto &e : entries) {
        e.app = r.str();
        e.scheme = static_cast<stack::Scheme>(r.i32());
        e.freqGHz = r.f64();
        e.procHotspotC = r.f64();
        e.dramBottomHotspotC = r.f64();
        e.procPowerW = r.f64();
        e.dramPowerW = r.f64();
    }
    return entries;
}

void
encodeBoostEntry(runtime::BinaryWriter &w, const BoostEntry &e)
{
    w.str(e.app);
    w.i32(static_cast<std::int32_t>(e.scheme));
    w.f64(e.refTempC);
    w.f64(e.freqGHz);
    w.f64(e.freqGainMHz);
    w.f64(e.perfGainPct);
    w.f64(e.powerIncreasePct);
    w.f64(e.energyChangePct);
}

BoostEntry
decodeBoostEntry(runtime::BinaryReader &r)
{
    BoostEntry e;
    e.app = r.str();
    e.scheme = static_cast<stack::Scheme>(r.i32());
    e.refTempC = r.f64();
    e.freqGHz = r.f64();
    e.freqGainMHz = r.f64();
    e.perfGainPct = r.f64();
    e.powerIncreasePct = r.f64();
    e.energyChangePct = r.f64();
    return e;
}

void
encodeSensitivityEntry(runtime::BinaryWriter &w,
                       const SensitivityEntry &e)
{
    w.f64(e.parameter);
    w.i32(static_cast<std::int32_t>(e.scheme));
    w.f64(e.avgProcHotspotC);
}

SensitivityEntry
decodeSensitivityEntry(runtime::BinaryReader &r)
{
    SensitivityEntry e;
    e.parameter = r.f64();
    e.scheme = static_cast<stack::Scheme>(r.i32());
    e.avgProcHotspotC = r.f64();
    return e;
}

} // namespace

ExperimentConfig
ExperimentConfig::standard()
{
    ExperimentConfig cfg;
    for (const auto &p : workloads::suite())
        cfg.apps.push_back(p.name);
    return cfg;
}

ExperimentConfig
ExperimentConfig::small()
{
    ExperimentConfig cfg;
    cfg.apps = {"LU(NAS)", "IS"};
    cfg.frequencies = {2.4, 3.5};
    cfg.base.stackSpec.gridNx = 40;
    cfg.base.stackSpec.gridNy = 40;
    cfg.base.stackSpec.numDramDies = 4;
    cfg.base.cpu.instsPerThread = 60000;
    cfg.base.solver.tolerance = 1e-7;
    return cfg;
}

std::vector<TempSweepEntry>
runTemperatureSweep(const ExperimentConfig &cfg,
                    const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);

    // One task per (scheme, app), scheme-major so the flattened
    // result order matches the historical serial loop. Each task owns
    // its StackSystem: the CG warm start chains across the task's
    // frequencies but never across tasks, which is what makes a
    // parallel run bit-identical to the serial one.
    struct Task
    {
        stack::Scheme scheme;
        const workloads::Profile *app;
    };
    std::vector<Task> tasks;
    for (stack::Scheme scheme : schemes)
        for (const auto *app : apps)
            tasks.push_back({scheme, app});

    runtime::SweepRunner runner(cfg.runner);
    auto key = [&](std::size_t i) {
        std::ostringstream os;
        os << "tempsweep|v1|" << configFingerprint(cfg, tasks[i].scheme)
           << "app=" << tasks[i].app->name << "|freqs=";
        for (double f : cfg.frequencies)
            os << hexDouble(f) << ',';
        return os.str();
    };
    auto compute = [&](std::size_t i) {
        StackSystem system = makeSystem(cfg, tasks[i].scheme);
        std::vector<TempSweepEntry> entries;
        for (double f : cfg.frequencies) {
            EvalResult eval = system.evaluate(*tasks[i].app, f);
            entries.push_back({tasks[i].app->name, tasks[i].scheme, f,
                               eval.procHotspot, eval.dramBottomHotspot,
                               eval.procPowerTotal, eval.dramPowerTotal});
        }
        return entries;
    };
    const auto per_task = runner.run<std::vector<TempSweepEntry>>(
        tasks.size(), key, compute, encodeTempEntries,
        decodeTempEntries);

    std::vector<TempSweepEntry> out;
    out.reserve(tasks.size() * cfg.frequencies.size());
    for (const auto &entries : per_task)
        out.insert(out.end(), entries.begin(), entries.end());
    return out;
}

double
meanTempReduction(const std::vector<TempSweepEntry> &sweep,
                  stack::Scheme scheme, double freq)
{
    std::vector<double> deltas;
    for (const auto &e : sweep) {
        if (e.scheme != stack::Scheme::Base ||
            std::abs(e.freqGHz - freq) > 1e-9) {
            continue;
        }
        const auto &other = sweepEntry(sweep, e.app, scheme, freq);
        deltas.push_back(e.procHotspotC - other.procHotspotC);
    }
    return mean(deltas);
}

const TempSweepEntry &
sweepEntry(const std::vector<TempSweepEntry> &sweep, const std::string &app,
           stack::Scheme scheme, double freq)
{
    for (const auto &e : sweep) {
        if (e.app == app && e.scheme == scheme &&
            std::abs(e.freqGHz - freq) < 1e-9) {
            return e;
        }
    }
    fatal("no sweep entry for ", app, "/", stack::toString(scheme), "/",
          freq, " GHz");
}

std::vector<BoostEntry>
runBoostExperiment(const ExperimentConfig &cfg,
                   const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    const double f0 = 2.4;
    runtime::SweepRunner runner(cfg.runner);

    // Phase 1 — references: the base scheme at 2.4 GHz, one task per
    // app (each with its own base system, so tasks stay independent).
    struct Ref
    {
        double tempC;
        double perf;
        double powerW;
        double energyJ;
    };
    auto ref_key = [&](std::size_t a) {
        std::ostringstream os;
        os << "boostref|v1|"
           << configFingerprint(cfg, stack::Scheme::Base)
           << "app=" << apps[a]->name << "|f0=" << hexDouble(f0);
        return os.str();
    };
    auto ref_compute = [&](std::size_t a) {
        StackSystem base = makeSystem(cfg, stack::Scheme::Base);
        EvalResult eval = base.evaluate(*apps[a], f0);
        return Ref{eval.procHotspot, eval.performance(),
                   eval.stackPowerTotal, eval.stackEnergy()};
    };
    const auto refs = runner.run<Ref>(
        apps.size(), ref_key, ref_compute,
        [](runtime::BinaryWriter &w, const Ref &ref) {
            w.f64(ref.tempC);
            w.f64(ref.perf);
            w.f64(ref.powerW);
            w.f64(ref.energyJ);
        },
        [](runtime::BinaryReader &r) {
            Ref ref;
            ref.tempC = r.f64();
            ref.perf = r.f64();
            ref.powerW = r.f64();
            ref.energyJ = r.f64();
            return ref;
        });

    // Phase 2 — one task per (scheme, app). Inside each task the
    // upward frequency scan of maxUniformFrequency reuses the
    // previous grid point's temperature field as a CG warm start
    // (StackSystem chains it), which is where most of the iteration
    // savings reported by the telemetry summary come from.
    struct Task
    {
        stack::Scheme scheme;
        std::size_t app;
    };
    std::vector<Task> tasks;
    for (stack::Scheme scheme : schemes)
        for (std::size_t a = 0; a < apps.size(); ++a)
            tasks.push_back({scheme, a});

    auto key = [&](std::size_t i) {
        const Task &t = tasks[i];
        std::ostringstream os;
        os << "boost|v1|" << configFingerprint(cfg, t.scheme)
           << "app=" << apps[t.app]->name << "|f0=" << hexDouble(f0)
           << "|ref=" << hexDouble(refs[t.app].tempC) << ','
           << hexDouble(refs[t.app].perf) << ','
           << hexDouble(refs[t.app].powerW) << ','
           << hexDouble(refs[t.app].energyJ);
        return os.str();
    };
    auto compute = [&](std::size_t i) {
        const Task &t = tasks[i];
        const Ref &ref = refs[t.app];
        StackSystem system = makeSystem(cfg, t.scheme);
        // No DRAM cap here: the constraint of §7.3 is the reference
        // processor temperature.
        BoostResult boost = system.maxUniformFrequency(
            *apps[t.app], ref.tempC + 1e-9, 1e9);
        BoostEntry e;
        e.app = apps[t.app]->name;
        e.scheme = t.scheme;
        e.refTempC = ref.tempC;
        if (!boost.feasible) {
            // Even 2.4 GHz exceeds the reference (should not happen
            // for schemes that only improve conduction).
            warn("boost infeasible for ", e.app, " under ",
                 stack::toString(t.scheme));
            e.freqGHz = f0;
            e.freqGainMHz = 0.0;
            e.perfGainPct = 0.0;
            e.powerIncreasePct = 0.0;
            e.energyChangePct = 0.0;
        } else {
            e.freqGHz = boost.freqGHz;
            e.freqGainMHz = (boost.freqGHz - f0) * 1000.0;
            e.perfGainPct =
                (boost.eval.performance() / ref.perf - 1.0) * 100.0;
            e.powerIncreasePct =
                (boost.eval.stackPowerTotal / ref.powerW - 1.0) * 100.0;
            e.energyChangePct =
                (boost.eval.stackEnergy() / ref.energyJ - 1.0) * 100.0;
        }
        return e;
    };
    return runner.run<BoostEntry>(tasks.size(), key, compute,
                                  encodeBoostEntry, decodeBoostEntry);
}

std::vector<PlacementEntry>
runPlacementExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const std::string &compute_app,
                       const std::string &memory_app)
{
    const auto &comp = workloads::profileByName(compute_app);
    const auto &mem = workloads::profileByName(memory_app);

    runtime::SweepRunner runner(cfg.runner);
    auto compute = [&](std::size_t i) {
        const stack::Scheme scheme = schemes[i];
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;

        auto assignment = [&](bool compute_inside) {
            std::vector<cpu::ThreadSpec> threads;
            for (int c : die.innerCores)
                threads.push_back({compute_inside ? &comp : &mem, c});
            for (int c : die.outerCores)
                threads.push_back({compute_inside ? &mem : &comp, c});
            return threads;
        };

        PlacementEntry e;
        e.scheme = scheme;
        const double cap = cfg.base.tjMaxProc;
        const double dcap = cfg.base.tMaxDram;
        BoostResult outside =
            system.maxUniformFrequency(assignment(false), cap, dcap);
        BoostResult inside =
            system.maxUniformFrequency(assignment(true), cap, dcap);
        e.outsideGHz = outside.feasible ? outside.freqGHz : 0.0;
        e.insideGHz = inside.feasible ? inside.freqGHz : 0.0;
        e.outsideHotspotC =
            outside.feasible ? outside.eval.procHotspot : 0.0;
        e.insideHotspotC = inside.feasible ? inside.eval.procHotspot : 0.0;
        return e;
    };
    auto key = [&](std::size_t i) {
        std::ostringstream os;
        os << "placement|v1|" << configFingerprint(cfg, schemes[i])
           << "comp=" << compute_app << "|mem=" << memory_app;
        return os.str();
    };
    return runner.run<PlacementEntry>(
        schemes.size(), key, compute,
        [](runtime::BinaryWriter &w, const PlacementEntry &e) {
            w.i32(static_cast<std::int32_t>(e.scheme));
            w.f64(e.outsideGHz);
            w.f64(e.insideGHz);
            w.f64(e.outsideHotspotC);
            w.f64(e.insideHotspotC);
        },
        [](runtime::BinaryReader &r) {
            PlacementEntry e;
            e.scheme = static_cast<stack::Scheme>(r.i32());
            e.outsideGHz = r.f64();
            e.insideGHz = r.f64();
            e.outsideHotspotC = r.f64();
            e.insideHotspotC = r.f64();
            return e;
        });
}

std::vector<BoostingEntry>
runFreqBoostingExperiment(const ExperimentConfig &cfg,
                          const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    runtime::SweepRunner runner(cfg.runner);
    auto compute = [&](std::size_t i) {
        const stack::Scheme scheme = schemes[i];
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;
        std::vector<double> singles, multis;
        for (const auto *app : apps) {
            const auto threads = cpu::allCoresRunning(
                *app, system.config().cpu.numCores);
            const double cap = cfg.base.tjMaxProc;
            const double dcap = cfg.base.tMaxDram;
            BoostResult single =
                system.maxUniformFrequency(threads, cap, dcap);
            if (!single.feasible) {
                warn("no feasible frequency for ", app->name, " under ",
                     stack::toString(scheme));
                continue;
            }
            BoostResult multi = system.maxFrequencyOnCores(
                threads, die.innerCores, single.freqGHz, cap, dcap);
            singles.push_back(single.freqGHz);
            multis.push_back(multi.feasible ? multi.freqGHz
                                            : single.freqGHz);
        }
        return BoostingEntry{scheme, mean(singles), mean(multis)};
    };
    auto key = [&](std::size_t i) {
        std::ostringstream os;
        os << "freqboost|v1|" << configFingerprint(cfg, schemes[i])
           << "apps=";
        for (const auto *app : apps)
            os << app->name << ',';
        return os.str();
    };
    return runner.run<BoostingEntry>(
        schemes.size(), key, compute,
        [](runtime::BinaryWriter &w, const BoostingEntry &e) {
            w.i32(static_cast<std::int32_t>(e.scheme));
            w.f64(e.singleGHz);
            w.f64(e.multipleGHz);
        },
        [](runtime::BinaryReader &r) {
            BoostingEntry e;
            e.scheme = static_cast<stack::Scheme>(r.i32());
            e.singleGHz = r.f64();
            e.multipleGHz = r.f64();
            return e;
        });
}

std::vector<MigrationEntry>
runMigrationExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const MigrationOptions &opts)
{
    const auto apps = resolveApps(cfg);
    runtime::SweepRunner runner(cfg.runner);
    auto compute = [&](std::size_t i) {
        const stack::Scheme scheme = schemes[i];
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;
        std::vector<double> inner, outer;
        for (const auto *app : apps) {
            inner.push_back(
                runMigration(system, *app, die.innerCores, opts)
                    .avgHotspot);
            outer.push_back(
                runMigration(system, *app, die.outerCores, opts)
                    .avgHotspot);
        }
        return MigrationEntry{scheme, mean(outer), mean(inner)};
    };
    auto key = [&](std::size_t i) {
        std::ostringstream os;
        os << "migration|v1|" << configFingerprint(cfg, schemes[i])
           << "apps=";
        for (const auto *app : apps)
            os << app->name << ',';
        os << "|opts=" << hexDouble(opts.freqGHz) << ','
           << hexDouble(opts.periodSeconds) << ',' << opts.numThreads
           << ',' << opts.numPhases << ',' << opts.stepsPerPhase << ','
           << opts.warmupPhases;
        return os.str();
    };
    return runner.run<MigrationEntry>(
        schemes.size(), key, compute,
        [](runtime::BinaryWriter &w, const MigrationEntry &e) {
            w.i32(static_cast<std::int32_t>(e.scheme));
            w.f64(e.outerAvgHotspotC);
            w.f64(e.innerAvgHotspotC);
        },
        [](runtime::BinaryReader &r) {
            MigrationEntry e;
            e.scheme = static_cast<stack::Scheme>(r.i32());
            e.outerAvgHotspotC = r.f64();
            e.innerAvgHotspotC = r.f64();
            return e;
        });
}

namespace {

/**
 * Shared driver for the two sensitivity sweeps: one task per
 * (parameter value, scheme), the apps averaged inside the task so the
 * per-system warm start keeps working across them, as it always did.
 */
std::vector<SensitivityEntry>
runSensitivitySweep(const ExperimentConfig &cfg,
                    const std::vector<double> &parameters,
                    const std::vector<stack::Scheme> &schemes,
                    const std::string &tag,
                    const std::function<void(ExperimentConfig &, double)>
                        &apply)
{
    const auto apps = resolveApps(cfg);
    struct Task
    {
        double parameter;
        stack::Scheme scheme;
    };
    std::vector<Task> tasks;
    for (double p : parameters)
        for (stack::Scheme scheme : schemes)
            tasks.push_back({p, scheme});

    runtime::SweepRunner runner(cfg.runner);
    auto compute = [&](std::size_t i) {
        ExperimentConfig mod = cfg;
        apply(mod, tasks[i].parameter);
        StackSystem system = makeSystem(mod, tasks[i].scheme);
        std::vector<double> temps;
        for (const auto *app : apps)
            temps.push_back(system.evaluate(*app, 2.4).procHotspot);
        return SensitivityEntry{tasks[i].parameter, tasks[i].scheme,
                                mean(temps)};
    };
    auto key = [&](std::size_t i) {
        ExperimentConfig mod = cfg;
        apply(mod, tasks[i].parameter);
        std::ostringstream os;
        os << tag << "|v1|" << configFingerprint(mod, tasks[i].scheme)
           << "parameter=" << hexDouble(tasks[i].parameter) << "|apps=";
        for (const auto *app : apps)
            os << app->name << ',';
        return os.str();
    };
    return runner.run<SensitivityEntry>(tasks.size(), key, compute,
                                        encodeSensitivityEntry,
                                        decodeSensitivityEntry);
}

} // namespace

std::vector<SensitivityEntry>
runThicknessSweep(const ExperimentConfig &cfg,
                  const std::vector<double> &thicknesses_um,
                  const std::vector<stack::Scheme> &schemes)
{
    return runSensitivitySweep(
        cfg, thicknesses_um, schemes, "thickness",
        [](ExperimentConfig &mod, double t_um) {
            mod.base.stackSpec.dieThickness = t_um * 1e-6;
        });
}

std::vector<SensitivityEntry>
runDieCountSweep(const ExperimentConfig &cfg,
                 const std::vector<int> &die_counts,
                 const std::vector<stack::Scheme> &schemes)
{
    std::vector<double> params;
    for (int dies : die_counts)
        params.push_back(static_cast<double>(dies));
    return runSensitivitySweep(
        cfg, params, schemes, "diecount",
        [](ExperimentConfig &mod, double dies) {
            mod.base.stackSpec.numDramDies = static_cast<int>(dies);
        });
}

} // namespace xylem::core
