#include "xylem/experiments.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace xylem::core {

namespace {

/** Build a system for `cfg` with the scheme replaced. */
StackSystem
makeSystem(const ExperimentConfig &cfg, stack::Scheme scheme)
{
    SystemConfig sys = cfg.base;
    sys.stackSpec.scheme = scheme;
    return StackSystem(std::move(sys));
}

std::vector<const workloads::Profile *>
resolveApps(const ExperimentConfig &cfg)
{
    std::vector<const workloads::Profile *> apps;
    for (const auto &name : cfg.apps)
        apps.push_back(&workloads::profileByName(name));
    XYLEM_ASSERT(!apps.empty(), "experiment needs at least one app");
    return apps;
}

} // namespace

ExperimentConfig
ExperimentConfig::standard()
{
    ExperimentConfig cfg;
    for (const auto &p : workloads::suite())
        cfg.apps.push_back(p.name);
    return cfg;
}

ExperimentConfig
ExperimentConfig::small()
{
    ExperimentConfig cfg;
    cfg.apps = {"LU(NAS)", "IS"};
    cfg.frequencies = {2.4, 3.5};
    cfg.base.stackSpec.gridNx = 40;
    cfg.base.stackSpec.gridNy = 40;
    cfg.base.stackSpec.numDramDies = 4;
    cfg.base.cpu.instsPerThread = 60000;
    cfg.base.solver.tolerance = 1e-7;
    return cfg;
}

std::vector<TempSweepEntry>
runTemperatureSweep(const ExperimentConfig &cfg,
                    const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    std::vector<TempSweepEntry> out;
    for (stack::Scheme scheme : schemes) {
        StackSystem system = makeSystem(cfg, scheme);
        for (const auto *app : apps) {
            for (double f : cfg.frequencies) {
                EvalResult eval = system.evaluate(*app, f);
                out.push_back({app->name, scheme, f, eval.procHotspot,
                               eval.dramBottomHotspot, eval.procPowerTotal,
                               eval.dramPowerTotal});
            }
        }
    }
    return out;
}

double
meanTempReduction(const std::vector<TempSweepEntry> &sweep,
                  stack::Scheme scheme, double freq)
{
    std::vector<double> deltas;
    for (const auto &e : sweep) {
        if (e.scheme != stack::Scheme::Base ||
            std::abs(e.freqGHz - freq) > 1e-9) {
            continue;
        }
        const auto &other = sweepEntry(sweep, e.app, scheme, freq);
        deltas.push_back(e.procHotspotC - other.procHotspotC);
    }
    return mean(deltas);
}

const TempSweepEntry &
sweepEntry(const std::vector<TempSweepEntry> &sweep, const std::string &app,
           stack::Scheme scheme, double freq)
{
    for (const auto &e : sweep) {
        if (e.app == app && e.scheme == scheme &&
            std::abs(e.freqGHz - freq) < 1e-9) {
            return e;
        }
    }
    fatal("no sweep entry for ", app, "/", stack::toString(scheme), "/",
          freq, " GHz");
}

std::vector<BoostEntry>
runBoostExperiment(const ExperimentConfig &cfg,
                   const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    const double f0 = 2.4;

    // Reference: the base scheme at 2.4 GHz.
    struct Ref
    {
        double tempC;
        double perf;
        double powerW;
        double energyJ;
    };
    std::vector<Ref> refs;
    {
        StackSystem base = makeSystem(cfg, stack::Scheme::Base);
        for (const auto *app : apps) {
            EvalResult eval = base.evaluate(*app, f0);
            refs.push_back({eval.procHotspot, eval.performance(),
                            eval.stackPowerTotal, eval.stackEnergy()});
        }
    }

    std::vector<BoostEntry> out;
    for (stack::Scheme scheme : schemes) {
        StackSystem system = makeSystem(cfg, scheme);
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const Ref &ref = refs[a];
            // No DRAM cap here: the constraint of §7.3 is the
            // reference processor temperature.
            BoostResult boost = system.maxUniformFrequency(
                *apps[a], ref.tempC + 1e-9, 1e9);
            BoostEntry e;
            e.app = apps[a]->name;
            e.scheme = scheme;
            e.refTempC = ref.tempC;
            if (!boost.feasible) {
                // Even 2.4 GHz exceeds the reference (should not
                // happen for schemes that only improve conduction).
                warn("boost infeasible for ", e.app, " under ",
                     stack::toString(scheme));
                e.freqGHz = f0;
                e.freqGainMHz = 0.0;
                e.perfGainPct = 0.0;
                e.powerIncreasePct = 0.0;
                e.energyChangePct = 0.0;
            } else {
                e.freqGHz = boost.freqGHz;
                e.freqGainMHz = (boost.freqGHz - f0) * 1000.0;
                e.perfGainPct =
                    (boost.eval.performance() / ref.perf - 1.0) * 100.0;
                e.powerIncreasePct =
                    (boost.eval.stackPowerTotal / ref.powerW - 1.0) * 100.0;
                e.energyChangePct =
                    (boost.eval.stackEnergy() / ref.energyJ - 1.0) * 100.0;
            }
            out.push_back(e);
        }
    }
    return out;
}

std::vector<PlacementEntry>
runPlacementExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const std::string &compute_app,
                       const std::string &memory_app)
{
    const auto &comp = workloads::profileByName(compute_app);
    const auto &mem = workloads::profileByName(memory_app);

    std::vector<PlacementEntry> out;
    for (stack::Scheme scheme : schemes) {
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;

        auto assignment = [&](bool compute_inside) {
            std::vector<cpu::ThreadSpec> threads;
            for (int c : die.innerCores)
                threads.push_back({compute_inside ? &comp : &mem, c});
            for (int c : die.outerCores)
                threads.push_back({compute_inside ? &mem : &comp, c});
            return threads;
        };

        PlacementEntry e;
        e.scheme = scheme;
        const double cap = cfg.base.tjMaxProc;
        const double dcap = cfg.base.tMaxDram;
        BoostResult outside =
            system.maxUniformFrequency(assignment(false), cap, dcap);
        BoostResult inside =
            system.maxUniformFrequency(assignment(true), cap, dcap);
        e.outsideGHz = outside.feasible ? outside.freqGHz : 0.0;
        e.insideGHz = inside.feasible ? inside.freqGHz : 0.0;
        e.outsideHotspotC =
            outside.feasible ? outside.eval.procHotspot : 0.0;
        e.insideHotspotC = inside.feasible ? inside.eval.procHotspot : 0.0;
        out.push_back(e);
    }
    return out;
}

std::vector<BoostingEntry>
runFreqBoostingExperiment(const ExperimentConfig &cfg,
                          const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    std::vector<BoostingEntry> out;
    for (stack::Scheme scheme : schemes) {
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;
        std::vector<double> singles, multis;
        for (const auto *app : apps) {
            const auto threads = cpu::allCoresRunning(
                *app, system.config().cpu.numCores);
            const double cap = cfg.base.tjMaxProc;
            const double dcap = cfg.base.tMaxDram;
            BoostResult single =
                system.maxUniformFrequency(threads, cap, dcap);
            if (!single.feasible) {
                warn("no feasible frequency for ", app->name, " under ",
                     stack::toString(scheme));
                continue;
            }
            BoostResult multi = system.maxFrequencyOnCores(
                threads, die.innerCores, single.freqGHz, cap, dcap);
            singles.push_back(single.freqGHz);
            multis.push_back(multi.feasible ? multi.freqGHz
                                            : single.freqGHz);
        }
        out.push_back({scheme, mean(singles), mean(multis)});
    }
    return out;
}

std::vector<MigrationEntry>
runMigrationExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const MigrationOptions &opts)
{
    const auto apps = resolveApps(cfg);
    std::vector<MigrationEntry> out;
    for (stack::Scheme scheme : schemes) {
        StackSystem system = makeSystem(cfg, scheme);
        const auto &die = system.builtStack().procDie;
        std::vector<double> inner, outer;
        for (const auto *app : apps) {
            inner.push_back(
                runMigration(system, *app, die.innerCores, opts)
                    .avgHotspot);
            outer.push_back(
                runMigration(system, *app, die.outerCores, opts)
                    .avgHotspot);
        }
        out.push_back({scheme, mean(outer), mean(inner)});
    }
    return out;
}

std::vector<SensitivityEntry>
runThicknessSweep(const ExperimentConfig &cfg,
                  const std::vector<double> &thicknesses_um,
                  const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    std::vector<SensitivityEntry> out;
    for (double t_um : thicknesses_um) {
        for (stack::Scheme scheme : schemes) {
            ExperimentConfig mod = cfg;
            mod.base.stackSpec.dieThickness = t_um * 1e-6;
            StackSystem system = makeSystem(mod, scheme);
            std::vector<double> temps;
            for (const auto *app : apps)
                temps.push_back(system.evaluate(*app, 2.4).procHotspot);
            out.push_back({t_um, scheme, mean(temps)});
        }
    }
    return out;
}

std::vector<SensitivityEntry>
runDieCountSweep(const ExperimentConfig &cfg,
                 const std::vector<int> &die_counts,
                 const std::vector<stack::Scheme> &schemes)
{
    const auto apps = resolveApps(cfg);
    std::vector<SensitivityEntry> out;
    for (int dies : die_counts) {
        for (stack::Scheme scheme : schemes) {
            ExperimentConfig mod = cfg;
            mod.base.stackSpec.numDramDies = dies;
            StackSystem system = makeSystem(mod, scheme);
            std::vector<double> temps;
            for (const auto *app : apps)
                temps.push_back(system.evaluate(*app, 2.4).procHotspot);
            out.push_back({static_cast<double>(dies), scheme, mean(temps)});
        }
    }
    return out;
}

} // namespace xylem::core
