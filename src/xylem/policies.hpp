/**
 * @file
 * λ-aware scheduling policies (§5.2): score every core by its
 * proximity to the high-vertical-conductivity (aligned-and-shorted
 * µbump-TTSV) sites, and use the score to place the most thermally
 * demanding threads on the best-cooled cores, pick boost candidates,
 * and pick migration sets.
 *
 * Unlike past thermal-aware scheduling, which treats all cores as
 * thermally homogeneous, these policies exploit the conductivity
 * heterogeneity that Xylem's pillars create (§5.2 last paragraph).
 */

#ifndef XYLEM_XYLEM_POLICIES_HPP
#define XYLEM_XYLEM_POLICIES_HPP

#include <vector>

#include "cpu/multicore.hpp"
#include "stack/stack.hpp"
#include "workloads/profile.hpp"

namespace xylem::core {

/**
 * Per-core vertical-conductivity score: the summed inverse distance
 * from the core's hottest block (FPU) to every TTSV pillar site,
 * normalised so the best core scores 1. All-zero when the stack has
 * no shorted pillars (base and prior schemes offer no heterogeneity
 * worth exploiting).
 */
std::vector<double> coreConductivityScores(const stack::BuiltStack &stk);

/**
 * Rank of each core under the score (0 = best cooled). Ties broken
 * by core index for determinism.
 */
std::vector<int> coresByConductivity(const stack::BuiltStack &stk);

/**
 * Heuristic thermal demand of a workload: how much heat a thread of
 * this profile deposits per unit time (issue rate weighted by the
 * power-hungry fraction of its instruction mix).
 */
double thermalDemand(const workloads::Profile &profile);

/**
 * λ-aware thread placement (§5.2.1): assign the most thermally
 * demanding threads to the cores with the highest conductivity
 * scores. Returns one ThreadSpec per input profile. With a base
 * stack (no pillars) the placement degenerates to core order.
 */
std::vector<cpu::ThreadSpec>
lambdaAwarePlacement(const stack::BuiltStack &stk,
                     const std::vector<const workloads::Profile *>
                         &threads);

/**
 * λ-aware boost candidates (§5.2.2): the `count` best-cooled cores.
 */
std::vector<int> lambdaAwareBoostSet(const stack::BuiltStack &stk,
                                     int count);

/**
 * λ-aware migration set (§5.2.3): the `count` best-cooled cores to
 * rotate threads over.
 */
std::vector<int> lambdaAwareMigrationSet(const stack::BuiltStack &stk,
                                         int count);

} // namespace xylem::core

#endif // XYLEM_XYLEM_POLICIES_HPP
