/**
 * @file
 * Plain-text configuration loading for SystemConfig: a small
 * `key = value` format (with `#` comments) so examples and external
 * scripts can parameterise a Xylem system without recompiling.
 *
 * Recognised keys (all optional; unknown keys are an error so typos
 * are caught):
 *
 *   scheme                 base|bank|banke|isoCount|prior
 *   numDramDies            integer >= 1
 *   dieThicknessUm         microns
 *   gridNx, gridNy         cells
 *   d2dLambdaOverride      W/mK (0 = Table 1 value)
 *   ambientCelsius         °C
 *   convectionResistance   K/W
 *   solverTolerance        relative residual
 *   solverThreads          intra-solve workers (0 = XYLEM_JOBS)
 *   solver                 cg|mg (outer iteration)
 *   precond                jacobi|line|mg (CG preconditioner)
 *   instsPerThread         instructions
 *   warmupInsts            instructions
 *   seed                   integer
 *   tjMaxProc, tMaxDram    °C
 *   electroThermalIterations  integer
 *   leakageTempCoefficient per K
 */

#ifndef XYLEM_XYLEM_CONFIG_IO_HPP
#define XYLEM_XYLEM_CONFIG_IO_HPP

#include <istream>
#include <string>

#include "xylem/system.hpp"

namespace xylem::core {

/**
 * Parse `key = value` lines into a SystemConfig, starting from the
 * defaults. Throws FatalError on unknown keys or malformed values,
 * with the line number in the message.
 */
SystemConfig parseSystemConfig(std::istream &in);

/** Load a configuration file from disk. */
SystemConfig loadSystemConfig(const std::string &path);

/**
 * Render a configuration back into the same text format (useful to
 * snapshot the effective configuration next to experiment output).
 */
std::string formatSystemConfig(const SystemConfig &cfg);

} // namespace xylem::core

#endif // XYLEM_XYLEM_CONFIG_IO_HPP
