/**
 * @file
 * Painting of simulated power onto the thermal power maps:
 * the processor-die breakdown goes to the architectural blocks of the
 * Fig. 6 floorplan (proc metal layer), and the DRAM activity goes to
 * the banks of each slice (DRAM metal layers).
 */

#ifndef XYLEM_XYLEM_PAINTER_HPP
#define XYLEM_XYLEM_PAINTER_HPP

#include "cpu/activity.hpp"
#include "power/mcpat_lite.hpp"
#include "stack/stack.hpp"
#include "thermal/power_map.hpp"

namespace xylem::core {

/**
 * Deposit the processor-die power into the proc metal layer.
 *
 * Unit dynamic power lands on the unit's block; clock and leakage are
 * spread over the whole core (area-proportional); L2 slices, bus, MCs
 * and uncore leakage land on their blocks.
 */
void paintProcessorPower(thermal::PowerMap &map,
                         const stack::BuiltStack &stk,
                         const power::ProcPower &power);

/**
 * Deposit the DRAM power into the DRAM metal layers: per-bank dynamic
 * energy onto the bank rectangles of the owning die, refresh and
 * background power spread over each die.
 */
void paintDramPower(thermal::PowerMap &map, const stack::BuiltStack &stk,
                    const cpu::SimResult &sim,
                    const dram::DramConfig &config);

} // namespace xylem::core

#endif // XYLEM_XYLEM_PAINTER_HPP
