#include "xylem/policies.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace xylem::core {

std::vector<double>
coreConductivityScores(const stack::BuiltStack &stk)
{
    const std::size_t n = stk.procDie.cores.size();
    std::vector<double> scores(n, 0.0);
    if (stk.ttsvSites.empty() ||
        !stack::schemeShortsBumps(stk.spec.scheme)) {
        return scores; // no vertical heterogeneity to exploit
    }

    double best = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        const auto &fpu = stk.procDie.plan.at(
            "C" + std::to_string(c + 1) + ".FPU");
        const geometry::Point hot = fpu.rect.center();
        double score = 0.0;
        for (const auto &site : stk.ttsvSites) {
            // Inverse-distance kernel with a floor of one cell so a
            // pillar directly under the hotspot doesn't dominate
            // everything.
            const double d =
                std::max(geometry::distance(hot, site),
                         stk.grid.cellWidth());
            score += 1.0 / d;
        }
        scores[c] = score;
        best = std::max(best, score);
    }
    if (best > 0.0) {
        for (double &s : scores)
            s /= best;
    }
    return scores;
}

std::vector<int>
coresByConductivity(const stack::BuiltStack &stk)
{
    const std::vector<double> scores = coreConductivityScores(stk);
    std::vector<int> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return scores[static_cast<std::size_t>(a)] >
               scores[static_cast<std::size_t>(b)];
    });
    return order;
}

double
thermalDemand(const workloads::Profile &profile)
{
    // Issue rate times a mix weight: FPU work burns the most, memory
    // stalls burn the least. The absolute scale is irrelevant — only
    // the ordering matters for placement.
    const double mix_weight = 1.0 + 2.0 * profile.fracFpu +
                              0.5 * profile.fracAlu() -
                              3.0 * profile.probCold;
    return profile.issueEfficiency * mix_weight;
}

std::vector<cpu::ThreadSpec>
lambdaAwarePlacement(const stack::BuiltStack &stk,
                     const std::vector<const workloads::Profile *>
                         &threads)
{
    XYLEM_ASSERT(threads.size() <= stk.procDie.cores.size(),
                 "more threads than cores");
    for (const auto *t : threads)
        XYLEM_ASSERT(t != nullptr, "null profile in placement request");

    // Hottest thread first...
    std::vector<std::size_t> by_demand(threads.size());
    std::iota(by_demand.begin(), by_demand.end(), 0);
    std::stable_sort(by_demand.begin(), by_demand.end(),
                     [&](std::size_t a, std::size_t b) {
                         return thermalDemand(*threads[a]) >
                                thermalDemand(*threads[b]);
                     });
    // ...onto the best-cooled core.
    const std::vector<int> cores = coresByConductivity(stk);
    std::vector<cpu::ThreadSpec> placement(threads.size());
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const std::size_t t = by_demand[i];
        placement[t] = {threads[t], cores[i]};
    }
    return placement;
}

std::vector<int>
lambdaAwareBoostSet(const stack::BuiltStack &stk, int count)
{
    XYLEM_ASSERT(count >= 0 &&
                     count <= static_cast<int>(stk.procDie.cores.size()),
                 "invalid boost-set size");
    const std::vector<int> order = coresByConductivity(stk);
    return std::vector<int>(order.begin(), order.begin() + count);
}

std::vector<int>
lambdaAwareMigrationSet(const stack::BuiltStack &stk, int count)
{
    return lambdaAwareBoostSet(stk, count);
}

} // namespace xylem::core
