#include "xylem/painter.hpp"

#include <string>

#include "common/logging.hpp"

namespace xylem::core {

using floorplan::UnitKind;

void
paintProcessorPower(thermal::PowerMap &map, const stack::BuiltStack &stk,
                    const power::ProcPower &power)
{
    const int layer = stk.procMetal;
    const auto &plan = stk.procDie.plan;
    const std::size_t n = power.coreDynamic.size();
    XYLEM_ASSERT(n == stk.procDie.cores.size(),
                 "power breakdown does not match the floorplan");

    for (std::size_t c = 0; c < n; ++c) {
        const std::string prefix = "C" + std::to_string(c + 1) + ".";
        const auto &d = power.coreDynamic[c];
        const auto unit_watts = [&](UnitKind kind) {
            switch (kind) {
              case UnitKind::Fetch: return d.fetch;
              case UnitKind::BPred: return d.bpred;
              case UnitKind::Decode: return d.decode;
              case UnitKind::IssueQueue: return d.iq;
              case UnitKind::Rob: return d.rob;
              case UnitKind::IntRF: return d.irf;
              case UnitKind::FpRF: return d.frf;
              case UnitKind::IntAlu: return d.alu;
              case UnitKind::Fpu: return d.fpu;
              case UnitKind::Lsu: return d.lsu;
              case UnitKind::L1I: return d.l1i;
              case UnitKind::L1D: return d.l1d;
              default: return 0.0;
            }
        };
        for (const auto *block : plan.withPrefix(prefix)) {
            const UnitKind kind = floorplan::unitKindFromBlockName(
                block->name);
            const double w = unit_watts(kind);
            if (w > 0.0)
                map.deposit(layer, block->rect, w);
        }
        // Clock network and leakage: area-proportional over the core.
        const double spread = d.clock + power.coreLeakage[c];
        if (spread > 0.0)
            map.deposit(layer, stk.procDie.cores[c], spread);
    }

    for (std::size_t c = 0; c < n; ++c) {
        const auto &block = plan.at("L2_" + std::to_string(c + 1));
        map.deposit(layer, block.rect,
                    power.l2Dynamic[c] + power.l2Leakage[c]);
    }

    // Coherence bus: split over the two bus wiring blocks by area.
    const auto &bus0 = plan.at("BUS0");
    const auto &bus1 = plan.at("BUS1");
    const double bus_area = bus0.rect.area() + bus1.rect.area();
    if (power.busDynamic > 0.0 && bus_area > 0.0) {
        map.deposit(layer, bus0.rect,
                    power.busDynamic * bus0.rect.area() / bus_area);
        map.deposit(layer, bus1.rect,
                    power.busDynamic * bus1.rect.area() / bus_area);
    }

    for (std::size_t m = 0; m < power.mcPower.size(); ++m) {
        const auto &block = plan.at("MC" + std::to_string(m));
        map.deposit(layer, block.rect, power.mcPower[m]);
    }

    // Uncore leakage: spread over the central band.
    if (power.uncoreLeakage > 0.0)
        map.deposit(layer, stk.procDie.centerBand, power.uncoreLeakage);
}

void
paintDramPower(thermal::PowerMap &map, const stack::BuiltStack &stk,
               const cpu::SimResult &sim, const dram::DramConfig &config)
{
    XYLEM_ASSERT(sim.seconds > 0.0, "simulation produced zero runtime");
    const double inv_t = 1.0 / sim.seconds;
    const auto &e = config.energy;
    const int sim_dies = static_cast<int>(sim.dram.dies.size());
    XYLEM_ASSERT(sim_dies == stk.spec.numDramDies,
                 "DRAM geometry mismatch: simulated ", sim_dies,
                 " dies, stack has ", stk.spec.numDramDies);

    const double refresh_watts =
        static_cast<double>(sim.dram.refreshOps) * e.refreshPerOp * inv_t;
    const double per_die_spread =
        e.backgroundPerDie +
        refresh_watts / static_cast<double>(sim_dies);

    for (int d = 0; d < sim_dies; ++d) {
        const int layer = stk.dramMetal[static_cast<std::size_t>(d)];
        const auto &die_stats = sim.dram.dies[static_cast<std::size_t>(d)];
        for (std::size_t b = 0; b < die_stats.banks.size(); ++b) {
            const auto &bs = die_stats.banks[b];
            const double joules =
                static_cast<double>(bs.activates) * e.actPre +
                static_cast<double>(bs.reads) * e.read +
                static_cast<double>(bs.writes) * e.write;
            if (joules > 0.0)
                map.deposit(layer, stk.dramDie.banks[b], joules * inv_t);
        }
        // Background + refresh: uniform over the die.
        map.deposit(layer, stk.dramDie.plan.extent(), per_die_spread);
    }
}

} // namespace xylem::core
