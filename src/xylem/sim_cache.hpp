/**
 * @file
 * Process-wide memoisation of multicore simulation results.
 *
 * The performance simulation depends only on the architecture
 * configuration, thread placement and frequencies — not on the TTSV
 * scheme — so experiments that sweep schemes share one simulation per
 * (workload, frequency, placement) tuple.
 *
 * Concurrency contract:
 *  - cachedSimulate() is safe from any number of threads; concurrent
 *    requests for the same key run the simulation once and share the
 *    result (the others block on the in-flight computation).
 *  - Results are returned as shared_ptr, so they stay valid across
 *    cache growth and even across a concurrent clearSimCache().
 *  - clearSimCache() may race with cachedSimulate() calls; in-flight
 *    computations complete normally and their callers keep ownership.
 *
 * When a disk cache is attached (setSimCacheDisk), simulation results
 * are persisted as versioned binary records and survive the process,
 * backing the runtime's restart-cheap experiment replays.
 */

#ifndef XYLEM_XYLEM_SIM_CACHE_HPP
#define XYLEM_XYLEM_SIM_CACHE_HPP

#include <memory>
#include <vector>

#include "cpu/multicore.hpp"

namespace xylem::core {

using SimResultPtr = std::shared_ptr<const cpu::SimResult>;

/**
 * Run (or fetch a cached) simulation for the given configuration and
 * threads. Thread-safe; concurrent calls with the same key compute
 * once.
 */
SimResultPtr cachedSimulate(const cpu::MulticoreConfig &config,
                            const std::vector<cpu::ThreadSpec> &threads);

/** Drop all cached results (mainly for tests). Thread-safe. */
void clearSimCache();

/**
 * Attach a persistent cache directory for simulation results ("",
 * the default, detaches). Thread-safe.
 */
void setSimCacheDisk(const std::string &dir);

} // namespace xylem::core

#endif // XYLEM_XYLEM_SIM_CACHE_HPP
