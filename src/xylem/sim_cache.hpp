/**
 * @file
 * Process-wide memoisation of multicore simulation results.
 *
 * The performance simulation depends only on the architecture
 * configuration, thread placement and frequencies — not on the TTSV
 * scheme — so experiments that sweep schemes share one simulation per
 * (workload, frequency, placement) tuple.
 */

#ifndef XYLEM_XYLEM_SIM_CACHE_HPP
#define XYLEM_XYLEM_SIM_CACHE_HPP

#include <vector>

#include "cpu/multicore.hpp"

namespace xylem::core {

/**
 * Run (or fetch a cached) simulation for the given configuration and
 * threads. Thread-safe.
 */
const cpu::SimResult &cachedSimulate(const cpu::MulticoreConfig &config,
                                     const std::vector<cpu::ThreadSpec>
                                         &threads);

/** Drop all cached results (mainly for tests). */
void clearSimCache();

} // namespace xylem::core

#endif // XYLEM_XYLEM_SIM_CACHE_HPP
