/**
 * @file
 * The paper's experiments (§7), exposed as library functions so that
 * the bench binaries and the integration tests share one
 * implementation. Every function takes an ExperimentConfig, which the
 * tests shrink (fewer apps, coarser grid, shorter simulations) and
 * the benches run at full size.
 */

#ifndef XYLEM_XYLEM_EXPERIMENTS_HPP
#define XYLEM_XYLEM_EXPERIMENTS_HPP

#include <string>
#include <vector>

#include "runtime/sweep_runner.hpp"
#include "xylem/migration.hpp"
#include "xylem/system.hpp"

namespace xylem::core {

/** Shared experiment sizing. */
struct ExperimentConfig
{
    SystemConfig base;                 ///< scheme is overridden per run
    std::vector<std::string> apps;     ///< default: all 17
    std::vector<double> frequencies = {2.4, 2.8, 3.2, 3.5};

    /**
     * Execution knobs: worker threads (`--jobs` / XYLEM_JOBS) and the
     * persistent result cache directory (`--cache-dir` /
     * XYLEM_CACHE_DIR). The default is serial and uncached, so every
     * experiment stays deterministic and self-contained unless the
     * caller opts in.
     *
     * Every experiment grid decomposes into independent tasks that
     * never share mutable state; a `jobs > 1` run therefore produces
     * entries bit-identical to the serial run, in the same order.
     */
    runtime::RunnerOptions runner;

    /** The paper's default system with all 17 applications. */
    static ExperimentConfig standard();

    /** A shrunk configuration for fast tests. */
    static ExperimentConfig small();
};

// ---------------------------------------------------------------
// Fig. 7 / Fig. 13 / Fig. 14: steady-state temperature sweeps.
// ---------------------------------------------------------------

struct TempSweepEntry
{
    std::string app;
    stack::Scheme scheme;
    double freqGHz;
    double procHotspotC;
    double dramBottomHotspotC;
    double procPowerW;
    double dramPowerW;
};

/** Temperatures for every (app, scheme, frequency) combination. */
std::vector<TempSweepEntry>
runTemperatureSweep(const ExperimentConfig &cfg,
                    const std::vector<stack::Scheme> &schemes);

/** Mean Fig. 8 style reduction of `scheme` vs base at `freq`. */
double meanTempReduction(const std::vector<TempSweepEntry> &sweep,
                         stack::Scheme scheme, double freq);

/** Look up one sweep entry (throws if absent). */
const TempSweepEntry &sweepEntry(const std::vector<TempSweepEntry> &sweep,
                                 const std::string &app,
                                 stack::Scheme scheme, double freq);

// ---------------------------------------------------------------
// Fig. 9-12: iso-temperature frequency boosting.
// ---------------------------------------------------------------

struct BoostEntry
{
    std::string app;
    stack::Scheme scheme;
    double refTempC;       ///< base scheme hotspot at 2.4 GHz
    double freqGHz;        ///< boosted frequency
    double freqGainMHz;    ///< over the 2.4 GHz base
    double perfGainPct;    ///< application speedup [%]
    double powerIncreasePct; ///< stack power increase [%]
    double energyChangePct;  ///< stack energy change [%]
};

/**
 * For each app: reference temperature = base at 2.4 GHz; for each
 * scheme, boost frequency until the reference is about to be
 * exceeded (§7.3).
 */
std::vector<BoostEntry>
runBoostExperiment(const ExperimentConfig &cfg,
                   const std::vector<stack::Scheme> &schemes);

// ---------------------------------------------------------------
// Fig. 15: λ-aware thread placement.
// ---------------------------------------------------------------

struct PlacementEntry
{
    stack::Scheme scheme;
    double outsideGHz; ///< compute threads on the outer cores
    double insideGHz;  ///< compute threads on the inner cores
    /**
     * Processor hotspot at the highest feasible frequency. When both
     * assignments saturate the DVFS table (not thermally limited),
     * the placement advantage shows up as a cooler hotspot here.
     */
    double outsideHotspotC = 0.0;
    double insideHotspotC = 0.0;
};

/**
 * 4 compute-intensive + 4 memory-intensive threads; the max die-wide
 * frequency under Tj,max for both assignments (§7.6.1).
 */
std::vector<PlacementEntry>
runPlacementExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const std::string &compute_app = "LU(NAS)",
                       const std::string &memory_app = "IS");

// ---------------------------------------------------------------
// Fig. 16: λ-aware frequency boosting.
// ---------------------------------------------------------------

struct BoostingEntry
{
    stack::Scheme scheme;
    double singleGHz;   ///< max uniform frequency (avg over apps)
    double multipleGHz; ///< inner cores boosted further (avg over apps)
};

std::vector<BoostingEntry>
runFreqBoostingExperiment(const ExperimentConfig &cfg,
                          const std::vector<stack::Scheme> &schemes);

// ---------------------------------------------------------------
// Fig. 17: λ-aware thread migration.
// ---------------------------------------------------------------

struct MigrationEntry
{
    stack::Scheme scheme;
    double outerAvgHotspotC; ///< migrating among the outer cores
    double innerAvgHotspotC; ///< migrating among the inner cores
};

std::vector<MigrationEntry>
runMigrationExperiment(const ExperimentConfig &cfg,
                       const std::vector<stack::Scheme> &schemes,
                       const MigrationOptions &opts = {});

// ---------------------------------------------------------------
// Fig. 18 / Fig. 19: sensitivity studies.
// ---------------------------------------------------------------

struct SensitivityEntry
{
    double parameter; ///< die thickness [µm] or number of dies
    stack::Scheme scheme;
    double avgProcHotspotC; ///< averaged over the configured apps
};

/** Fig. 18: die thickness sweep at 2.4 GHz. */
std::vector<SensitivityEntry>
runThicknessSweep(const ExperimentConfig &cfg,
                  const std::vector<double> &thicknesses_um,
                  const std::vector<stack::Scheme> &schemes);

/** Fig. 19: memory die count sweep at 2.4 GHz. */
std::vector<SensitivityEntry>
runDieCountSweep(const ExperimentConfig &cfg,
                 const std::vector<int> &die_counts,
                 const std::vector<stack::Scheme> &schemes);

} // namespace xylem::core

#endif // XYLEM_XYLEM_EXPERIMENTS_HPP
