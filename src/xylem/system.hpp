/**
 * @file
 * The Xylem system façade: one object per stack configuration
 * (scheme, die thickness, number of DRAM dies) that runs the full
 * pipeline — multicore simulation → McPAT-lite power → power-map
 * painting → thermal solve — and implements the thermal/performance
 * trade-off of §5: frequency boosting at iso-temperature, plus the
 * per-core-set boosting used by the λ-aware techniques.
 */

#ifndef XYLEM_XYLEM_SYSTEM_HPP
#define XYLEM_XYLEM_SYSTEM_HPP

#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hpp"
#include "cpu/multicore.hpp"
#include "power/mcpat_lite.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"

namespace xylem::core {

/**
 * Batch-formation policy for the serving layer (DESIGN.md §15):
 * whether queued steady queries against this configuration may be
 * answered through one multi-RHS block solve, and how many columns
 * one solve may carry. Part of the system config (not a daemon flag)
 * so the policy travels with the config text that keys the resident
 * system — and so bad values surface as typed config errors.
 */
struct BatchOptions
{
    bool enabled = true; ///< allow multi-RHS batching for this config
    int maxRhs = 16;     ///< columns per block solve (1..kMaxBatchRhs)
};

/** Configuration of a whole Xylem system. */
struct SystemConfig
{
    stack::StackSpec stackSpec;
    thermal::SolverOptions solver;
    cpu::MulticoreConfig cpu;
    power::EnergyParams energy;
    power::LeakageParams leakage;
    BatchOptions batch;

    double tjMaxProc = 100.0;  ///< processor junction limit [°C] (§6.2)
    double tMaxDram = 95.0;    ///< JEDEC extended-range DRAM limit [°C]

    /**
     * Electrothermal feedback: number of leakage/temperature
     * fixed-point iterations per evaluation (0 = single pass, the
     * default). Only meaningful when
     * leakage.tempCoefficient != 0 — then leakage is re-evaluated at
     * the solved per-core temperatures until the hotspot converges.
     */
    int electroThermalIterations = 0;
};

/** Result of one full pipeline evaluation. */
struct EvalResult
{
    cpu::SimResult sim;
    power::ProcPower procPower;
    double procPowerTotal = 0.0;   ///< processor die [W]
    double dramPowerTotal = 0.0;   ///< DRAM stack [W]
    double stackPowerTotal = 0.0;  ///< both [W]
    double procHotspot = 0.0;      ///< hottest processor-die cell [°C]
    double dramBottomHotspot = 0.0;///< hottest cell of the bottom DRAM die
    std::vector<double> coreHotspot; ///< per-core hotspot [°C]
    double seconds = 0.0;          ///< simulated runtime
    thermal::TemperatureField field{1, 1, 1, 0, 0.0};
    int cgIterations = 0;          ///< CG iterations over all solves
    bool warmStarted = false;      ///< first solve had a warm start

    /** Performance = work per second (1/runtime for a fixed budget). */
    double performance() const { return seconds > 0 ? 1.0 / seconds : 0.0; }
    /** Stack energy over the run [J]. */
    double stackEnergy() const { return stackPowerTotal * seconds; }
};

/** A frequency-boost outcome. */
struct BoostResult
{
    bool feasible = false;
    double freqGHz = 0.0;
    EvalResult eval;
};

/**
 * A built Xylem system (stack + thermal model + power model).
 *
 * Evaluations reuse the previous temperature field as a CG warm
 * start, so sweeping frequencies or applications on one system is
 * much cheaper than the first solve.
 */
class StackSystem
{
  public:
    explicit StackSystem(SystemConfig cfg);

    const SystemConfig &config() const { return cfg_; }
    const stack::BuiltStack &builtStack() const { return stack_; }
    const thermal::GridModel &thermalModel() const { return *model_; }
    const power::McPatLite &powerModel() const { return mcpat_; }

    /** Evaluate with explicit threads and per-core frequencies. */
    EvalResult evaluate(const std::vector<cpu::ThreadSpec> &threads,
                        const std::vector<double> &core_freq_ghz);

    /** Evaluate `profile` on all cores at a uniform frequency. */
    EvalResult evaluate(const workloads::Profile &profile, double freq_ghz);

    /** One work item of a steady batch: a workload at one frequency. */
    struct SteadyItem
    {
        const workloads::Profile *profile = nullptr;
        double freqGHz = 2.4;
    };

    /**
     * Evaluate up to thermal::kMaxBatchRhs steady items through ONE
     * multi-RHS block solve (GridModel::solveSteadyBatch): the
     * simulations and power maps are built per item, then all thermal
     * right-hand sides solve in lockstep against the shared operator.
     *
     * Every item is solved COLD — result k is bit-identical to
     * clearWarmStart() + evaluate(item k) — matching the serving
     * layer's determinism contract, which is the only caller that
     * batches. Configs with electrothermal feedback (an inherently
     * sequential per-item fixed point) fall back to exactly that
     * serial loop.
     */
    std::vector<EvalResult>
    evaluateSteadyBatch(const std::vector<SteadyItem> &items);

    /**
     * Build the power map for a finished simulation (exposed for the
     * transient migration experiments, which drive the solver
     * directly).
     */
    thermal::PowerMap
    powerMapFor(const cpu::SimResult &sim,
                const std::vector<double> &core_freq_ghz) const;

    /**
     * Largest DVFS frequency whose steady state respects both
     * temperature caps (§5.1). Scans upward from the lowest
     * operating point; infeasible if even that violates a cap.
     */
    BoostResult maxUniformFrequency(
        const std::vector<cpu::ThreadSpec> &threads, double proc_cap,
        double dram_cap);

    /** Convenience: all-core workload. */
    BoostResult maxUniformFrequency(const workloads::Profile &profile,
                                    double proc_cap, double dram_cap);

    /**
     * λ-aware boosting (§5.2.2): hold every core at `base_freq` and
     * raise only `boost_cores` until a cap is reached. Returns the
     * boosted cores' frequency.
     */
    BoostResult maxFrequencyOnCores(
        const std::vector<cpu::ThreadSpec> &threads,
        const std::vector<int> &boost_cores, double base_freq,
        double proc_cap, double dram_cap);

    /**
     * Set the DRAM refresh-interval scale (1 = nominal 85 °C rate,
     * 0.5 = doubled refresh, ...). Used by the refresh-temperature
     * coupling loop; affects subsequent evaluations.
     */
    void
    setDramRefreshScale(double scale)
    {
        XYLEM_ASSERT(scale > 0.0, "refresh scale must be positive");
        cfg_.cpu.dram.refreshScale = scale;
    }

    /** Forget the warm-start field (after changing workload family). */
    void
    clearWarmStart()
    {
        last_.reset();
        last_power_ = 0.0;
    }

  private:
    EvalResult evaluateAtFreqs(const std::vector<cpu::ThreadSpec> &threads,
                               const std::vector<double> &freqs);

    SystemConfig cfg_;
    stack::BuiltStack stack_;
    std::unique_ptr<thermal::GridModel> model_;
    power::McPatLite mcpat_;
    std::optional<thermal::TemperatureField> last_;
    double last_power_ = 0.0;
    // Scratch memory reused across every solve this system issues
    // (CG vectors + preconditioner factorisation). StackSystem is not
    // itself thread-safe, so one workspace per system is exactly the
    // reuse granularity the solver's reentrancy rules require.
    thermal::SolverWorkspace workspace_;
};

} // namespace xylem::core

#endif // XYLEM_XYLEM_SYSTEM_HPP
