#include "xylem/dtm.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace xylem::core {

DtmResult
throttleToCaps(StackSystem &system,
               const std::vector<cpu::ThreadSpec> &threads,
               double requested_ghz, double proc_cap, double dram_cap)
{
    const auto &dvfs = system.powerModel().dvfs();
    DtmResult out;
    out.requestedGHz = requested_ghz;

    // Walk the table downward from the requested operating point.
    std::vector<double> fs = dvfs.frequencies();
    std::sort(fs.rbegin(), fs.rend());
    for (double f : fs) {
        if (f > dvfs.floorFrequency(requested_ghz) + 1e-9)
            continue;
        std::vector<double> freqs(
            static_cast<std::size_t>(system.config().cpu.numCores), f);
        EvalResult eval = system.evaluate(threads, freqs);
        if (eval.procHotspot <= proc_cap &&
            eval.dramBottomHotspot <= dram_cap) {
            out.feasible = true;
            out.grantedGHz = f;
            out.throttled = f < dvfs.floorFrequency(requested_ghz) - 1e-9;
            out.eval = std::move(eval);
            return out;
        }
    }
    // Even the lowest table point violates a cap: report it anyway so
    // the caller can see by how much.
    out.grantedGHz = dvfs.minFrequency();
    out.throttled = true;
    return out;
}

DtmResult
throttleToCaps(StackSystem &system, const workloads::Profile &profile,
               double requested_ghz, double proc_cap, double dram_cap)
{
    return throttleToCaps(
        system,
        cpu::allCoresRunning(profile, system.config().cpu.numCores),
        requested_ghz, proc_cap, dram_cap);
}

double
jedecRefreshScale(double dram_temp_c)
{
    if (dram_temp_c <= 85.0)
        return 1.0;
    const int decades =
        static_cast<int>(std::ceil((dram_temp_c - 85.0) / 10.0));
    return std::pow(0.5, decades);
}

RefreshCoupledResult
evaluateWithRefreshCoupling(StackSystem &system,
                            const workloads::Profile &profile,
                            double freq_ghz, int max_iterations)
{
    XYLEM_ASSERT(max_iterations >= 1, "need at least one iteration");
    RefreshCoupledResult out;
    double scale = 1.0;
    for (int it = 0; it < max_iterations; ++it) {
        system.setDramRefreshScale(scale);
        out.eval = system.evaluate(profile, freq_ghz);
        out.iterations = it + 1;
        const double next = jedecRefreshScale(out.eval.dramBottomHotspot);
        if (next == scale)
            break;
        scale = next;
    }
    out.refreshScale = scale;
    // Leave the system at the nominal rate for subsequent callers.
    system.setDramRefreshScale(1.0);
    return out;
}

} // namespace xylem::core
