/**
 * @file
 * λ-aware thread migration (§5.2.3 / Fig. 17): run a small number of
 * threads at a fixed frequency, migrating them among a set of cores
 * every period, and track the processor hotspot with the transient
 * thermal solver.
 */

#ifndef XYLEM_XYLEM_MIGRATION_HPP
#define XYLEM_XYLEM_MIGRATION_HPP

#include <vector>

#include "workloads/profile.hpp"
#include "xylem/system.hpp"

namespace xylem::core {

/** Parameters of a migration run. */
struct MigrationOptions
{
    double freqGHz = 2.8;         ///< fixed die-wide frequency
    double periodSeconds = 0.030; ///< migration interval (§7.6.3: 30 ms)
    int numThreads = 2;           ///< threads being migrated
    int numPhases = 8;            ///< simulated migration phases
    int stepsPerPhase = 6;        ///< transient steps per phase
    int warmupPhases = 2;         ///< phases excluded from statistics
};

/** Outcome of a migration run. */
struct MigrationResult
{
    double avgHotspot = 0.0; ///< time-averaged proc hotspot [°C]
    double maxHotspot = 0.0; ///< peak proc hotspot [°C]
    std::vector<double> trace; ///< hotspot after every transient step
};

/**
 * Migrate `opts.numThreads` threads of `profile` among `core_set`
 * (two disjoint placements alternating every period). The transient
 * state starts from the steady state of the placement-averaged power,
 * mirroring a long-running system.
 */
MigrationResult runMigration(StackSystem &system,
                             const workloads::Profile &profile,
                             const std::vector<int> &core_set,
                             const MigrationOptions &opts);

} // namespace xylem::core

#endif // XYLEM_XYLEM_MIGRATION_HPP
