/**
 * @file
 * Dynamic Thermal Management: the paper's evaluation shows operating
 * points above Tj,max and notes that "in a real machine, a DTM system
 * would throttle frequencies to prevent excessive temperatures"
 * (§7.2). This module provides that DTM: starting from a requested
 * frequency, it steps down the DVFS table until both temperature caps
 * are met.
 *
 * It also implements the DRAM refresh-temperature coupling of §7.5:
 * JEDEC halves the refresh interval for every 10 °C above 85 °C, so a
 * hot stack refreshes more, which costs bandwidth and energy — and in
 * turn slightly changes the power. evaluateWithRefreshCoupling runs
 * that loop to a fixed point.
 */

#ifndef XYLEM_XYLEM_DTM_HPP
#define XYLEM_XYLEM_DTM_HPP

#include <vector>

#include "xylem/system.hpp"

namespace xylem::core {

/** Outcome of a DTM throttling decision. */
struct DtmResult
{
    bool throttled = false;   ///< the request was reduced
    bool feasible = false;    ///< caps met at some table frequency
    double requestedGHz = 0.0;
    double grantedGHz = 0.0;
    EvalResult eval;          ///< at the granted frequency
};

/**
 * Throttle a uniform-frequency request until both the processor and
 * DRAM temperature caps hold. Scans downward through the DVFS table
 * from `requested_ghz`; infeasible if even the lowest point violates
 * a cap.
 */
DtmResult throttleToCaps(StackSystem &system,
                         const std::vector<cpu::ThreadSpec> &threads,
                         double requested_ghz, double proc_cap,
                         double dram_cap);

/** Convenience overload for a whole-chip workload. */
DtmResult throttleToCaps(StackSystem &system,
                         const workloads::Profile &profile,
                         double requested_ghz, double proc_cap,
                         double dram_cap);

/** Outcome of the refresh-temperature fixed point. */
struct RefreshCoupledResult
{
    EvalResult eval;          ///< converged evaluation
    double refreshScale = 1.0;///< final tREFI scale (1, 0.5, 0.25, ...)
    int iterations = 0;       ///< loop iterations used
};

/**
 * JEDEC refresh scale for a DRAM temperature: 1.0 up to 85 °C, halved
 * for every (started) 10 °C above it.
 */
double jedecRefreshScale(double dram_temp_c);

/**
 * Evaluate with the DRAM refresh rate coupled to the solved DRAM
 * temperature (fixed point over the refresh scale; converges in a
 * couple of iterations because the scale is quantised).
 */
RefreshCoupledResult
evaluateWithRefreshCoupling(StackSystem &system,
                            const workloads::Profile &profile,
                            double freq_ghz, int max_iterations = 4);

} // namespace xylem::core

#endif // XYLEM_XYLEM_DTM_HPP
