#include "xylem/system.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "runtime/metrics.hpp"
#include "verify/dense_solver.hpp"
#include "verify/invariants.hpp"
#include "xylem/painter.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::core {

namespace {

/** Fold one steady solve into the telemetry registry. */
void
recordSolve(const thermal::SolveStats &stats, bool warm)
{
    auto &metrics = runtime::Metrics::global();
    metrics.counter("solver.solves").increment();
    metrics.counter("solver.iterations")
        .add(static_cast<std::uint64_t>(stats.iterations));
    if (!stats.converged)
        metrics.counter("solver.nonconverged").increment();
    if (warm) {
        metrics.counter("solver.warm_solves").increment();
        metrics.counter("solver.warm_iterations")
            .add(static_cast<std::uint64_t>(stats.iterations));
    } else {
        metrics.counter("solver.cold_solves").increment();
        metrics.counter("solver.cold_iterations")
            .add(static_cast<std::uint64_t>(stats.iterations));
    }
}

/**
 * Optional always-on verification (bench --selfcheck): run the
 * solve-free invariant checkers on the solution just produced and
 * fail fatally on any violation, so a figure computed from a bad
 * field can never be published silently.
 */
void
selfCheck(const thermal::GridModel &model, const thermal::PowerMap &map,
          const thermal::TemperatureField &field)
{
    if (!verify::selfCheckEnabled())
        return;
    auto &metrics = runtime::Metrics::global();
    metrics.counter("verify.selfcheck.checks").increment();
    const verify::InvariantReport rep =
        verify::checkSolution(model, map, field);
    if (!rep.pass) {
        metrics.counter("verify.selfcheck.failures").increment();
        fatal("--selfcheck: solution violates invariants: ",
              rep.summary());
    }
}

/**
 * One steady solve under the ambient task context. On the dense
 * escalation rung (the sweep runner's last resort after CG has failed
 * warm, cold, and with the alternate preconditioner) the field comes
 * from the direct Cholesky reference solver instead of CG — a
 * different algorithm, so a CG-specific failure cannot recur. Falls
 * back to a strict CG solve when the grid exceeds the dense limit.
 */
thermal::TemperatureField
solveSteadyWithContext(const thermal::GridModel &model,
                       const thermal::PowerMap &map,
                       thermal::SolveStats *stats,
                       const thermal::TemperatureField *warm_start,
                       thermal::SolverWorkspace *workspace)
{
    const TaskContext *ctx = currentTaskContext();
    if (ctx && ctx->denseSolve() &&
        model.numNodes() <= verify::kDenseNodeLimit) {
        runtime::Metrics::global()
            .counter("solver.dense_solves")
            .increment();
        thermal::TemperatureField field =
            verify::referenceSolveSteady(model, map);
        if (stats) {
            *stats = {};
            stats->converged = true; // direct solve: exact to round-off
        }
        return field;
    }
    return model.solveSteady(map, stats, warm_start, workspace);
}

} // namespace

StackSystem::StackSystem(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      stack_(stack::buildStack(cfg_.stackSpec)),
      mcpat_(cfg_.energy, cfg_.leakage, power::DvfsTable::standard())
{
    // Keep the DRAM geometry of the performance model in sync with the
    // physical stack.
    cfg_.cpu.dram.geometry.numDies = cfg_.stackSpec.numDramDies;
    if (static_cast<int>(cfg_.cpu.coreFreqGHz.size()) != cfg_.cpu.numCores)
        cfg_.cpu.setUniformFrequency(2.4);
    model_ = std::make_unique<thermal::GridModel>(stack_, cfg_.solver);
}

thermal::PowerMap
StackSystem::powerMapFor(const cpu::SimResult &sim,
                         const std::vector<double> &core_freq_ghz) const
{
    const power::ProcPower pp = mcpat_.procPower(sim, core_freq_ghz);
    thermal::PowerMap map(stack_);
    paintProcessorPower(map, stack_, pp);
    paintDramPower(map, stack_, sim, cfg_.cpu.dram);
    return map;
}

EvalResult
StackSystem::evaluateAtFreqs(const std::vector<cpu::ThreadSpec> &threads,
                             const std::vector<double> &freqs)
{
    XYLEM_ASSERT(static_cast<int>(freqs.size()) == cfg_.cpu.numCores,
                 "one frequency per core required");
    cpu::MulticoreConfig sim_cfg = cfg_.cpu;
    sim_cfg.coreFreqGHz = freqs;

    EvalResult out;
    out.sim = *cachedSimulate(sim_cfg, threads);
    out.seconds = out.sim.seconds;
    out.procPower = mcpat_.procPower(out.sim, freqs);
    out.procPowerTotal = out.procPower.total();
    out.dramPowerTotal = out.sim.dramAveragePowerW();
    out.stackPowerTotal = out.procPowerTotal + out.dramPowerTotal;

    thermal::PowerMap map(stack_);
    paintProcessorPower(map, stack_, out.procPower);
    paintDramPower(map, stack_, out.sim, cfg_.cpu.dram);

    // Warm start: the temperature rise is linear in power, so scaling
    // the previous field by the total-power ratio is a near-exact
    // initial guess when sweeping frequency or similar workloads. On
    // the cold-start escalation rung the carried-over field is a
    // failure suspect, so don't even build the guess.
    const TaskContext *task_ctx = currentTaskContext();
    const bool cold = task_ctx && task_ctx->coldStart();
    std::optional<thermal::TemperatureField> scaled;
    if (!cold && last_ && last_power_ > 0.0) {
        scaled = *last_;
        const double ambient = cfg_.solver.ambientCelsius;
        const double ratio = map.totalPower() / last_power_;
        for (double &v : scaled->nodes())
            v = ambient + (v - ambient) * ratio;
    }
    thermal::SolveStats stats;
    out.warmStarted = scaled.has_value();
    out.field = solveSteadyWithContext(*model_, map, &stats,
                                       scaled ? &scaled.value() : nullptr,
                                       &workspace_);
    out.cgIterations += stats.iterations;
    recordSolve(stats, out.warmStarted);
    selfCheck(*model_, map, out.field);
    last_ = out.field;
    last_power_ = map.totalPower();

    const auto proc_layer = static_cast<std::size_t>(stack_.procMetal);
    auto fill_temps = [&](EvalResult &r) {
        r.procHotspot = r.field.maxOfLayer(proc_layer);
        r.dramBottomHotspot = r.field.maxOfLayer(
            static_cast<std::size_t>(stack_.dramMetal.front()));
        r.coreHotspot.clear();
        for (const auto &core_rect : stack_.procDie.cores) {
            r.coreHotspot.push_back(r.field.maxInRect(
                proc_layer, core_rect, stack_.grid.extent()));
        }
    };
    fill_temps(out);

    // Optional electrothermal feedback: leakage depends on the solved
    // temperatures, which depend on leakage (§ hot-leakage loop).
    for (int it = 0; it < cfg_.electroThermalIterations; ++it) {
        const double prev_hotspot = out.procHotspot;
        out.procPower = mcpat_.procPower(out.sim, freqs,
                                         &out.coreHotspot);
        out.procPowerTotal = out.procPower.total();
        out.stackPowerTotal = out.procPowerTotal + out.dramPowerTotal;
        thermal::PowerMap fb_map(stack_);
        paintProcessorPower(fb_map, stack_, out.procPower);
        paintDramPower(fb_map, stack_, out.sim, cfg_.cpu.dram);
        thermal::SolveStats fb_stats;
        out.field = solveSteadyWithContext(*model_, fb_map, &fb_stats,
                                           &out.field, &workspace_);
        out.cgIterations += fb_stats.iterations;
        recordSolve(fb_stats, /*warm=*/true);
        selfCheck(*model_, fb_map, out.field);
        last_ = out.field;
        last_power_ = fb_map.totalPower();
        fill_temps(out);
        if (std::abs(out.procHotspot - prev_hotspot) < 0.05)
            break;
    }
    return out;
}

EvalResult
StackSystem::evaluate(const std::vector<cpu::ThreadSpec> &threads,
                      const std::vector<double> &core_freq_ghz)
{
    return evaluateAtFreqs(threads, core_freq_ghz);
}

std::vector<EvalResult>
StackSystem::evaluateSteadyBatch(const std::vector<SteadyItem> &items)
{
    const std::size_t K = items.size();
    std::vector<EvalResult> out;
    if (K == 0)
        return out;
    // Electrothermal feedback is a per-item fixed point (leakage ↔
    // temperature) with data-dependent trip counts — no lockstep to
    // exploit. Serve those configs exactly like serial requests.
    if (cfg_.electroThermalIterations > 0) {
        out.reserve(K);
        for (const SteadyItem &item : items) {
            clearWarmStart(); // the batch contract: every item cold
            out.push_back(evaluate(*item.profile, item.freqGHz));
        }
        return out;
    }

    auto &metrics = runtime::Metrics::global();
    metrics.counter("solver.batch_solves").increment();
    metrics.counter("solver.batch_columns")
        .add(static_cast<std::uint64_t>(K));

    // Per-item front half of the pipeline: simulation → power →
    // painted map. The sim cache deduplicates identical items.
    out.resize(K);
    std::vector<thermal::PowerMap> maps;
    maps.reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
        XYLEM_ASSERT(items[k].profile != nullptr,
                     "evaluateSteadyBatch: null profile at item ", k);
        EvalResult &r = out[k];
        std::vector<double> freqs(
            static_cast<std::size_t>(cfg_.cpu.numCores),
            items[k].freqGHz);
        cpu::MulticoreConfig sim_cfg = cfg_.cpu;
        sim_cfg.coreFreqGHz = freqs;
        r.sim = *cachedSimulate(
            sim_cfg,
            cpu::allCoresRunning(*items[k].profile, cfg_.cpu.numCores));
        r.seconds = r.sim.seconds;
        r.procPower = mcpat_.procPower(r.sim, freqs);
        r.procPowerTotal = r.procPower.total();
        r.dramPowerTotal = r.sim.dramAveragePowerW();
        r.stackPowerTotal = r.procPowerTotal + r.dramPowerTotal;

        thermal::PowerMap map(stack_);
        paintProcessorPower(map, stack_, r.procPower);
        paintDramPower(map, stack_, r.sim, cfg_.cpu.dram);
        maps.push_back(std::move(map));
    }

    // Back half: one lockstep block solve, all columns cold (no warm
    // starts — each column is bit-identical to a solo cold solve).
    std::vector<const thermal::PowerMap *> ptrs;
    ptrs.reserve(K);
    for (const auto &m : maps)
        ptrs.push_back(&m);
    std::vector<thermal::SolveStats> stats;
    std::vector<thermal::TemperatureField> fields =
        model_->solveSteadyBatch(ptrs, &stats, nullptr, &workspace_);

    const auto proc_layer = static_cast<std::size_t>(stack_.procMetal);
    for (std::size_t k = 0; k < K; ++k) {
        EvalResult &r = out[k];
        r.warmStarted = false;
        r.field = std::move(fields[k]);
        r.cgIterations += stats[k].iterations;
        recordSolve(stats[k], /*warm=*/false);
        selfCheck(*model_, maps[k], r.field);
        r.procHotspot = r.field.maxOfLayer(proc_layer);
        r.dramBottomHotspot = r.field.maxOfLayer(
            static_cast<std::size_t>(stack_.dramMetal.front()));
        r.coreHotspot.clear();
        for (const auto &core_rect : stack_.procDie.cores)
            r.coreHotspot.push_back(r.field.maxInRect(
                proc_layer, core_rect, stack_.grid.extent()));
    }
    // Leave the same residual state serial serving would: the last
    // item's field as the (next clearWarmStart's) warm-start candidate.
    last_ = out.back().field;
    last_power_ = maps.back().totalPower();
    return out;
}

EvalResult
StackSystem::evaluate(const workloads::Profile &profile, double freq_ghz)
{
    std::vector<double> freqs(static_cast<std::size_t>(cfg_.cpu.numCores),
                              freq_ghz);
    return evaluateAtFreqs(cpu::allCoresRunning(profile, cfg_.cpu.numCores),
                           freqs);
}

BoostResult
StackSystem::maxUniformFrequency(const std::vector<cpu::ThreadSpec> &threads,
                                 double proc_cap, double dram_cap)
{
    BoostResult best;
    for (double f : mcpat_.dvfs().frequencies()) {
        std::vector<double> freqs(
            static_cast<std::size_t>(cfg_.cpu.numCores), f);
        EvalResult eval = evaluateAtFreqs(threads, freqs);
        if (eval.procHotspot <= proc_cap &&
            eval.dramBottomHotspot <= dram_cap) {
            best.feasible = true;
            best.freqGHz = f;
            best.eval = std::move(eval);
        } else {
            break; // temperature rises monotonically with frequency
        }
    }
    return best;
}

BoostResult
StackSystem::maxUniformFrequency(const workloads::Profile &profile,
                                 double proc_cap, double dram_cap)
{
    return maxUniformFrequency(
        cpu::allCoresRunning(profile, cfg_.cpu.numCores), proc_cap,
        dram_cap);
}

BoostResult
StackSystem::maxFrequencyOnCores(const std::vector<cpu::ThreadSpec> &threads,
                                 const std::vector<int> &boost_cores,
                                 double base_freq, double proc_cap,
                                 double dram_cap)
{
    BoostResult best;
    for (double f : mcpat_.dvfs().frequencies()) {
        if (f < base_freq - 1e-9)
            continue;
        std::vector<double> freqs(
            static_cast<std::size_t>(cfg_.cpu.numCores), base_freq);
        for (int c : boost_cores) {
            XYLEM_ASSERT(c >= 0 && c < cfg_.cpu.numCores,
                         "boost core out of range");
            freqs[static_cast<std::size_t>(c)] = f;
        }
        EvalResult eval = evaluateAtFreqs(threads, freqs);
        if (eval.procHotspot <= proc_cap &&
            eval.dramBottomHotspot <= dram_cap) {
            best.feasible = true;
            best.freqGHz = f;
            best.eval = std::move(eval);
        } else {
            break;
        }
    }
    return best;
}

} // namespace xylem::core
