#include "xylem/sim_cache.hpp"

#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <sstream>

#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"

namespace xylem::core {

namespace {

/** Bump when the persisted SimResult layout changes. */
constexpr std::uint32_t kSimRecordVersion = 1;

std::mutex g_mutex;
// Compute-once: the first requester of a key owns the promise; later
// requesters (and concurrent ones) wait on the shared_future. Values
// are shared_ptr, so entries can be dropped while results are in use.
std::map<std::string, std::shared_future<SimResultPtr>> g_cache;
std::shared_ptr<runtime::DiskCache> g_disk;

/** Serialise everything the simulation result depends on. */
std::string
cacheKey(const cpu::MulticoreConfig &cfg,
         const std::vector<cpu::ThreadSpec> &threads)
{
    std::ostringstream os;
    os << cfg.numCores << '|' << cfg.issueWidth << '|'
       << cfg.instsPerThread << '|' << cfg.warmupInsts << '|' << cfg.seed
       << '|' << cfg.mispredictPenaltyCycles << '|' << cfg.l1HitCycles
       << '|' << cfg.l2HitCycles << '|' << cfg.l2StallFactor << '|'
       << cfg.c2cCycles << '|' << cfg.busOccupancyNs << '|'
       << cfg.l1iBytes << '/' << cfg.l1iWays << '|' << cfg.l1dBytes
       << '/' << cfg.l1dWays << '|' << cfg.l2Bytes << '/' << cfg.l2Ways
       << '|' << cfg.lineBytes << '|' << cfg.dram.geometry.numDies << '|'
       << cfg.dram.geometry.channels << '|'
       << cfg.dram.geometry.banksPerRank << '|'
       << cfg.dram.refreshScale << '|';
    for (double f : cfg.coreFreqGHz)
        os << std::llround(f * 1000.0) << ',';
    os << '|';
    for (const auto &t : threads)
        os << t.profile->name << '@' << t.core << ';';
    return os.str();
}

void
encodeSimResult(runtime::BinaryWriter &w, const cpu::SimResult &sim)
{
    w.f64(sim.seconds);
    w.u64(sim.cores.size());
    for (const auto &c : sim.cores) {
        w.boolean(c.hasThread);
        w.u64(c.insts);
        w.u64(c.branches);
        w.u64(c.mispredicts);
        w.u64(c.aluOps);
        w.u64(c.fpuOps);
        w.u64(c.loads);
        w.u64(c.stores);
        w.u64(c.l1iAccesses);
        w.u64(c.l1iMisses);
        w.u64(c.l1dAccesses);
        w.u64(c.l1dMisses);
        w.u64(c.l2Accesses);
        w.u64(c.l2Misses);
        w.u64(c.upgrades);
        w.u64(c.c2cTransfers);
        w.u64(c.dramAccesses);
        w.f64(c.dramLatencyNs);
        w.f64(c.cycles);
        w.f64(c.busyNs);
    }
    w.u64(sim.busTransactions);
    w.vecU64(sim.mcRequests);
    w.u64(sim.dram.dies.size());
    for (const auto &die : sim.dram.dies) {
        w.u64(die.banks.size());
        for (const auto &b : die.banks) {
            w.u64(b.activates);
            w.u64(b.reads);
            w.u64(b.writes);
            w.u64(b.rowHits);
        }
    }
    w.u64(sim.dram.refreshOps);
    w.f64(sim.dram.busBusyNs);
    w.u64(sim.dram.requests);
    w.f64(sim.dramEnergyJ);
}

cpu::SimResult
decodeSimResult(runtime::BinaryReader &r)
{
    cpu::SimResult sim;
    sim.seconds = r.f64();
    sim.cores.resize(r.u64());
    for (auto &c : sim.cores) {
        c.hasThread = r.boolean();
        c.insts = r.u64();
        c.branches = r.u64();
        c.mispredicts = r.u64();
        c.aluOps = r.u64();
        c.fpuOps = r.u64();
        c.loads = r.u64();
        c.stores = r.u64();
        c.l1iAccesses = r.u64();
        c.l1iMisses = r.u64();
        c.l1dAccesses = r.u64();
        c.l1dMisses = r.u64();
        c.l2Accesses = r.u64();
        c.l2Misses = r.u64();
        c.upgrades = r.u64();
        c.c2cTransfers = r.u64();
        c.dramAccesses = r.u64();
        c.dramLatencyNs = r.f64();
        c.cycles = r.f64();
        c.busyNs = r.f64();
    }
    sim.busTransactions = r.u64();
    sim.mcRequests = r.vecU64();
    sim.dram.dies.resize(r.u64());
    for (auto &die : sim.dram.dies) {
        die.banks.resize(r.u64());
        for (auto &b : die.banks) {
            b.activates = r.u64();
            b.reads = r.u64();
            b.writes = r.u64();
            b.rowHits = r.u64();
        }
    }
    sim.dram.refreshOps = r.u64();
    sim.dram.busBusyNs = r.f64();
    sim.dram.requests = r.u64();
    sim.dramEnergyJ = r.f64();
    return sim;
}

} // namespace

SimResultPtr
cachedSimulate(const cpu::MulticoreConfig &config,
               const std::vector<cpu::ThreadSpec> &threads)
{
    const std::string key = cacheKey(config, threads);
    auto &metrics = runtime::Metrics::global();

    std::promise<SimResultPtr> promise;
    std::shared_future<SimResultPtr> future;
    std::shared_ptr<runtime::DiskCache> disk;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        auto it = g_cache.find(key);
        if (it != g_cache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            g_cache.emplace(key, future);
            owner = true;
            disk = g_disk;
        }
    }
    if (!owner) {
        metrics.counter("simcache.hits").increment();
        return future.get(); // blocks while another thread computes
    }

    metrics.counter("simcache.misses").increment();
    try {
        SimResultPtr result;
        if (disk) {
            if (auto payload = disk->load("sim|" + key)) {
                try {
                    runtime::BinaryReader r(*payload);
                    result = std::make_shared<cpu::SimResult>(
                        decodeSimResult(r));
                    metrics.counter("simcache.disk_hits").increment();
                } catch (const runtime::SerializeError &) {
                    result.reset(); // corrupt record: recompute
                }
            }
        }
        if (!result) {
            result = std::make_shared<cpu::SimResult>(
                cpu::simulate(config, threads));
            if (disk) {
                runtime::BinaryWriter w;
                encodeSimResult(w, *result);
                disk->store("sim|" + key, w.bytes());
            }
        }
        promise.set_value(result);
        return result;
    } catch (...) {
        // Unblock waiters with the error, then forget the entry so a
        // later call can retry.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(g_mutex);
        g_cache.erase(key);
        throw;
    }
}

void
clearSimCache()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    // In-flight futures stay owned by their waiters; results stay
    // owned by the returned shared_ptrs. Only the index is dropped.
    g_cache.clear();
}

void
setSimCacheDisk(const std::string &dir)
{
    std::shared_ptr<runtime::DiskCache> disk;
    if (!dir.empty())
        disk = std::make_shared<runtime::DiskCache>(dir,
                                                    kSimRecordVersion);
    std::lock_guard<std::mutex> lock(g_mutex);
    g_disk = std::move(disk);
}

} // namespace xylem::core
