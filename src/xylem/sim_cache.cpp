#include "xylem/sim_cache.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

namespace xylem::core {

namespace {

std::mutex g_mutex;
std::map<std::string, cpu::SimResult> g_cache;

/** Serialise everything the simulation result depends on. */
std::string
cacheKey(const cpu::MulticoreConfig &cfg,
         const std::vector<cpu::ThreadSpec> &threads)
{
    std::ostringstream os;
    os << cfg.numCores << '|' << cfg.issueWidth << '|'
       << cfg.instsPerThread << '|' << cfg.warmupInsts << '|' << cfg.seed
       << '|'
       << cfg.l2Bytes << '|' << cfg.dram.geometry.numDies << '|'
       << cfg.dram.refreshScale << '|';
    for (double f : cfg.coreFreqGHz)
        os << std::llround(f * 1000.0) << ',';
    os << '|';
    for (const auto &t : threads)
        os << t.profile->name << '@' << t.core << ';';
    return os.str();
}

} // namespace

const cpu::SimResult &
cachedSimulate(const cpu::MulticoreConfig &config,
               const std::vector<cpu::ThreadSpec> &threads)
{
    const std::string key = cacheKey(config, threads);
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        auto it = g_cache.find(key);
        if (it != g_cache.end())
            return it->second;
    }
    cpu::SimResult result = cpu::simulate(config, threads);
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_cache.emplace(key, std::move(result)).first->second;
}

void
clearSimCache()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_cache.clear();
}

} // namespace xylem::core
