#include "materials/material.hpp"

#include "common/logging.hpp"

namespace xylem::materials {

double
mixConductivity(double lambda_a, double rho_a, double lambda_b)
{
    XYLEM_ASSERT(rho_a >= 0.0 && rho_a <= 1.0,
                 "occupancy must be a fraction, got ", rho_a);
    return rho_a * lambda_a + (1.0 - rho_a) * lambda_b;
}

double
mixHeatCapacity(double cap_a, double rho_a, double cap_b)
{
    XYLEM_ASSERT(rho_a >= 0.0 && rho_a <= 1.0,
                 "occupancy must be a fraction, got ", rho_a);
    return rho_a * cap_a + (1.0 - rho_a) * cap_b;
}

double
seriesConductivity(const std::vector<double> &thicknesses,
                   const std::vector<double> &lambdas)
{
    XYLEM_ASSERT(thicknesses.size() == lambdas.size() && !thicknesses.empty(),
                 "series stack needs matching, non-empty vectors");
    double total_t = 0.0;
    double total_r = 0.0;
    for (std::size_t i = 0; i < thicknesses.size(); ++i) {
        XYLEM_ASSERT(thicknesses[i] > 0.0 && lambdas[i] > 0.0,
                     "sub-layer thickness and conductivity must be positive");
        total_t += thicknesses[i];
        total_r += thicknesses[i] / lambdas[i];
    }
    return total_t / total_r;
}

double
slabResistance(double thickness, double lambda)
{
    XYLEM_ASSERT(thickness > 0.0 && lambda > 0.0,
                 "slab needs positive thickness and conductivity");
    return thickness / lambda;
}

} // namespace xylem::materials
