#include "materials/library.hpp"

namespace xylem::materials {

using namespace constants;

Material
silicon()
{
    return {"Si", lambdaSilicon, capSilicon};
}

Material
copper()
{
    return {"Cu", lambdaCopper, capCopper};
}

Material
tsvBus()
{
    return {"TSV-bus",
            mixConductivity(lambdaCopper, tsvBusCuOccupancy, lambdaSilicon),
            mixHeatCapacity(capCopper, tsvBusCuOccupancy, capSilicon)};
}

Material
dramMetal()
{
    return {"DRAM-metal", lambdaDramMetal, capMetalLayer};
}

Material
procMetal()
{
    return {"proc-metal", lambdaProcMetal, capMetalLayer};
}

Material
d2dBackground()
{
    return {"D2D", lambdaD2DBackground, capD2D};
}

Material
shortedBumpColumn()
{
    const double lambda = seriesConductivity(
        {thicknessMicroBump, thicknessBacksideVia},
        {lambdaMicroBump, lambdaCopper});
    return {"D2D-shorted-bump", lambda, capCopper};
}

Material
alignedUnshortedBumpColumn()
{
    const double lambda = seriesConductivity(
        {thicknessMicroBump, thicknessBacksideVia},
        {lambdaMicroBump, lambdaDramMetal});
    return {"D2D-aligned-bump", lambda, capCopper};
}

Material
tim()
{
    return {"TIM", lambdaTim, capTim};
}

Material
ihs()
{
    return {"IHS", lambdaIhs, capCopper};
}

Material
heatSink()
{
    return {"heat-sink", lambdaHeatSink, capCopper};
}

} // namespace xylem::materials
