/**
 * @file
 * Material records and composition rules for the thermal model.
 *
 * Conductivities follow Table 1 of the Xylem paper; volumetric heat
 * capacities (needed only by the transient solver) use standard
 * HotSpot-style values.
 */

#ifndef XYLEM_MATERIALS_MATERIAL_HPP
#define XYLEM_MATERIALS_MATERIAL_HPP

#include <string>
#include <vector>

namespace xylem::materials {

/**
 * A homogeneous material (or an effective medium standing in for a
 * composite region such as a TSV bus).
 */
struct Material
{
    std::string name;
    double conductivity = 0.0;  ///< thermal conductivity λ [W/(m·K)]
    double heatCapacity = 0.0;  ///< volumetric heat capacity [J/(m³·K)]
};

/**
 * Rule-of-mixtures effective conductivity for two materials occupying
 * fractional areas rho_a and rho_b = 1 - rho_a of a region (§6.1):
 * λ = ρ_A λ_A + ρ_B λ_B. Valid for conduction parallel to the
 * interface (vertical conduction through side-by-side columns).
 */
double mixConductivity(double lambda_a, double rho_a, double lambda_b);

/** Rule-of-mixtures volumetric heat capacity (area-weighted). */
double mixHeatCapacity(double cap_a, double rho_a, double cap_b);

/**
 * Effective conductivity of a series of sub-layers traversed
 * vertically: λ_eff = Σt_i / Σ(t_i / λ_i).
 *
 * Used, e.g., for the shorted µbump-TTSV pillar: 18 µm of µbump at
 * 40 W/mK in series with a 2 µm backside-via short at 400 W/mK gives
 * R_th = 0.46 mm²K/W over the 20 µm D2D thickness.
 */
double seriesConductivity(const std::vector<double> &thicknesses,
                          const std::vector<double> &lambdas);

/**
 * Thermal resistance per unit area of a slab, R_th = t / λ,
 * in SI m²K/W.
 */
double slabResistance(double thickness, double lambda);

} // namespace xylem::materials

#endif // XYLEM_MATERIALS_MATERIAL_HPP
