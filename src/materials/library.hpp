/**
 * @file
 * The material and technology constants of the Xylem paper
 * (Table 1, §2.5, §4.1, §6.1), exposed as a typed library.
 */

#ifndef XYLEM_MATERIALS_LIBRARY_HPP
#define XYLEM_MATERIALS_LIBRARY_HPP

#include "materials/material.hpp"

namespace xylem::materials {

/**
 * Named constants from the paper. Conductivities in W/(m·K),
 * lengths in metres.
 */
namespace constants {

// Bulk materials (Table 1 and §2.3).
inline constexpr double lambdaSilicon = 120.0;
inline constexpr double lambdaCopper = 400.0;          // TSV / TTSV metal
inline constexpr double lambdaMicroBump = 40.0;        // Cu pillar + SnAg
inline constexpr double lambdaD2DBackground = 1.5;     // measured (IBM)
inline constexpr double lambdaDramMetal = 9.0;         // Al + dielectrics
inline constexpr double lambdaProcMetal = 12.0;        // Cu + dielectrics
inline constexpr double lambdaTim = 5.0;
inline constexpr double lambdaHeatSink = 400.0;        // Cu sink
inline constexpr double lambdaIhs = 400.0;

// TSV-bus effective medium: 25% Cu / 75% Si (§6.1).
inline constexpr double tsvBusCuOccupancy = 0.25;

// Layer thicknesses (Table 1).
inline constexpr double thicknessDieSilicon = 100e-6;
inline constexpr double thicknessDramMetal = 2e-6;
inline constexpr double thicknessProcMetal = 12e-6;
inline constexpr double thicknessD2D = 20e-6;
inline constexpr double thicknessTim = 50e-6;
inline constexpr double thicknessIhs = 1e-3;           // 0.1 cm
inline constexpr double thicknessHeatSink = 7e-3;      // 0.7 cm

// Lateral extents (Table 1).
inline constexpr double sideHeatSink = 6e-2;           // 6.0 cm square
inline constexpr double sideIhs = 3e-2;                // 3.0 cm square

// µbump / TTSV geometry (§4.1, §6.1).
inline constexpr double thicknessMicroBump = 18e-6;    // of the 20 µm D2D
inline constexpr double thicknessBacksideVia = 2e-6;   // the "short"
inline constexpr double ttsvSide = 100e-6;             // 100 µm square
inline constexpr double ttsvKoz = 10e-6;               // keep-out zone
inline constexpr double electricalTsvSide = 10e-6;     // ITRS
inline constexpr double dummyBumpOccupancy = 0.25;

// Volumetric heat capacities [J/(m³·K)] — HotSpot-style values; used
// only by the transient solver.
inline constexpr double capSilicon = 1.75e6;
inline constexpr double capCopper = 3.55e6;
inline constexpr double capMetalLayer = 2.2e6;
inline constexpr double capD2D = 2.0e6;
inline constexpr double capTim = 4.0e6;

} // namespace constants

/** The silicon bulk of a die. */
Material silicon();

/** Copper (TSVs, TTSVs, heat sink, IHS). */
Material copper();

/** The 25% Cu / 75% Si effective medium of the Wide I/O TSV bus. */
Material tsvBus();

/** DRAM frontside metal stack (Al routing + dielectrics). */
Material dramMetal();

/** Processor frontside metal stack incl. active layer. */
Material procMetal();

/** Average D2D layer (underfill + 25% dummy µbumps, unaligned). */
Material d2dBackground();

/**
 * A dummy µbump aligned with TTSVs and shorted through a backside via:
 * 18 µm at 40 W/mK in series with 2 µm at 400 W/mK, expressed as an
 * effective conductivity over the full 20 µm D2D thickness
 * (≈ 43.5 W/mK, i.e. R_th ≈ 0.46 mm²K/W).
 */
Material shortedBumpColumn();

/**
 * A dummy µbump aligned with TTSVs but *not* shorted (the `prior`
 * scheme): the µbump conducts at 40 W/mK but heat must still cross the
 * backside metal dielectrics; we model the 2 µm gap at the DRAM metal
 * stack conductivity.
 */
Material alignedUnshortedBumpColumn();

/** Thermal interface material. */
Material tim();

/** Integrated heat spreader (Cu). */
Material ihs();

/** Heat-sink base material (Cu). */
Material heatSink();

} // namespace xylem::materials

#endif // XYLEM_MATERIALS_LIBRARY_HPP
