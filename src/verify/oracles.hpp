/**
 * @file
 * Analytic oracles for the verification subsystem: problems small and
 * regular enough that the exact steady-state answer is a closed form,
 * so the grid solver can be checked against pencil-and-paper truth
 * rather than against another numerical method.
 *
 * The workhorse is the 1D layered slab: a stack of laterally uniform
 * layers (no TTSVs, no extended IHS/sink footprint) with spatially
 * uniform power per layer. Every XY column is then identical, no
 * lateral heat flows, and the discrete model collapses to the layer
 * R_th chain of §2.3: each interface contributes
 * (t_a/2λ_a + t_b/2λ_b)/A, the sink contributes
 * R_conv + t_sink/(2·λ_sink·A), and the temperature of a layer is
 * ambient plus the sum of (resistance × heat crossing it) above it.
 * Layers below the lowest source sit at the source temperature
 * (adiabatic bottom, zero flux).
 */

#ifndef XYLEM_VERIFY_ORACLES_HPP
#define XYLEM_VERIFY_ORACLES_HPP

#include <cstddef>
#include <vector>

#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"

namespace xylem::verify {

/** One laterally uniform layer of an analytic slab stack. */
struct SlabLayer
{
    double thickness;          ///< [m]
    double conductivity;       ///< λ [W/mK]
    double heatCapacity = 1.75e6; ///< volumetric [J/(m³K)]
};

/**
 * Build a BuiltStack for a uniform slab: `layers` bottom-to-top on an
 * nx×ny grid over a `side`×`side` die, the last layer acting as the
 * heat sink (convective top, die-sized — no periphery nodes). The
 * result feeds GridModel directly; it is not a paper stack.
 */
stack::BuiltStack buildSlabStack(const std::vector<SlabLayer> &layers,
                                 std::size_t nx, std::size_t ny,
                                 double side = 8e-3);

/**
 * Exact steady temperature of every slab layer [absolute °C] when
 * `watts[l]` is deposited uniformly in layer l. The discrete grid
 * model reproduces these values to solver tolerance (the chain is
 * exact for the discretisation, not an approximation).
 */
std::vector<double>
slabSteadyCelsius(const std::vector<SlabLayer> &layers,
                  const std::vector<double> &watts,
                  const thermal::SolverOptions &opts, double side = 8e-3);

/**
 * Closed form for the single-layer special case: a uniformly powered
 * slab of one material sees T = ambient + P·(R_conv + t/(2·λ·A)).
 */
double uniformPowerSteadyCelsius(double watts, const SlabLayer &layer,
                                 const thermal::SolverOptions &opts,
                                 double side = 8e-3);

} // namespace xylem::verify

#endif // XYLEM_VERIFY_ORACLES_HPP
