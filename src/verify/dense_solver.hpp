/**
 * @file
 * The dense direct reference solver of the verification subsystem.
 *
 * The iterative grid solver (`thermal::GridModel`) is the trust root
 * of every experiment, so it is cross-checked against an independent
 * method: the assembled conductance matrix is factored with a dense
 * Cholesky decomposition (the matrix is symmetric positive definite)
 * and solved by forward/back substitution. No part of the CG code
 * path — preconditioners, warm starts, convergence tests — is
 * involved, so any disagreement beyond round-off implicates one of
 * the two solvers. Dense factorisation is O(n³): feasible for the
 * verification grids (up to ~16×16 cells × a full stack's layers),
 * not for production solves.
 */

#ifndef XYLEM_VERIFY_DENSE_SOLVER_HPP
#define XYLEM_VERIFY_DENSE_SOLVER_HPP

#include <cstddef>
#include <vector>

#include "thermal/grid_model.hpp"
#include "thermal/power_map.hpp"
#include "thermal/temperature.hpp"

namespace xylem::verify {

/**
 * Largest node count the dense path accepts (matches the
 * denseMatrix() assembly guard). Callers using the dense solver as a
 * last-resort fallback must check this before committing to it.
 */
constexpr std::size_t kDenseNodeLimit = 6144;

/**
 * A dense symmetric-positive-definite system, factored once (Cholesky
 * L·Lᵀ) and solved for any number of right-hand sides.
 */
class DenseSpd
{
  public:
    /** Factor a row-major n×n matrix. Throws if not SPD. */
    DenseSpd(std::vector<double> matrix, std::size_t n);

    std::size_t size() const { return n_; }

    /** Solve A x = b by forward/back substitution. */
    std::vector<double> solve(const std::vector<double> &b) const;

  private:
    std::size_t n_;
    std::vector<double> l_; ///< lower-triangular factor, row-major
};

/**
 * Steady state by direct solve: assemble G densely, factor, solve
 * G·ΔT = P. The returned field is absolute °C like
 * GridModel::solveSteady.
 */
thermal::TemperatureField
referenceSolveSteady(const thermal::GridModel &model,
                     const thermal::PowerMap &power);

/**
 * One implicit-Euler transient step by direct solve:
 * (C/Δt + G)·ΔT' = C/Δt·ΔT + P. Mirrors GridModel::stepTransient.
 */
thermal::TemperatureField
referenceStepTransient(const thermal::GridModel &model,
                       const thermal::TemperatureField &current,
                       const thermal::PowerMap &power, double dt);

} // namespace xylem::verify

#endif // XYLEM_VERIFY_DENSE_SOLVER_HPP
