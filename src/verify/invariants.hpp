/**
 * @file
 * Physics invariant checkers for solved temperature fields. Each check
 * encodes a property that must hold for *any* correct solution of the
 * conductance network, independent of which solver produced it:
 *
 *  - global energy balance: in steady state, the heat leaving through
 *    the convection legs equals the deposited power;
 *  - discrete maximum principle: no node below ambient, and the
 *    hottest node carries injected power (an unpowered node is a
 *    weighted average of its neighbours, so it cannot be a strict
 *    maximum);
 *  - achieved residual: ‖P − G·ΔT‖ / ‖P‖ within the solver's
 *    configured tolerance (recomputed independently with apply());
 *  - mirror symmetry: on a laterally symmetric stack, mirroring the
 *    power map mirrors the temperature field;
 *  - power monotonicity: adding non-negative power can cool no node
 *    (G⁻¹ is entrywise non-negative for this M-matrix).
 *
 * checkSolution() runs the first three on an existing field (cheap,
 * usable as an always-on self-check); the symmetry and monotonicity
 * checks run extra solves and live in the test suites. The bench
 * binaries expose the cheap set behind `--selfcheck` via the global
 * flag below.
 */

#ifndef XYLEM_VERIFY_INVARIANTS_HPP
#define XYLEM_VERIFY_INVARIANTS_HPP

#include <string>
#include <vector>

#include "thermal/grid_model.hpp"
#include "thermal/power_map.hpp"
#include "thermal/temperature.hpp"

namespace xylem::verify {

/** Tolerances for checkSolution. */
struct InvariantOptions
{
    /** Relative slack on energy balance (scaled by total power). */
    double energyBalanceRel = 1e-3;
    /** How far below ambient a node may sit (round-off slack) [K]. */
    double belowAmbientTolK = 1e-6;
    /** Achieved residual may exceed the configured tolerance by this
        factor (stepTransient shifts the RHS, warm starts round). */
    double residualSafety = 10.0;
    /** Slack when comparing powered vs unpowered maxima [K]. */
    double maximumPrincipleTolK = 1e-6;
};

/** Outcome of checkSolution: pass/fail plus the measured quantities. */
struct InvariantReport
{
    bool pass = true;
    std::vector<std::string> failures; ///< one message per failed check

    double totalPowerW = 0.0;
    double outflowW = 0.0;        ///< heat through the convection legs
    double energyErrorRel = 0.0;  ///< |outflow − power| / power
    double minRiseK = 0.0;        ///< most-negative rise above ambient
    double achievedResidual = 0.0;///< ‖P − G·ΔT‖ / ‖P‖

    /** All failure messages joined for logging. */
    std::string summary() const;
};

/**
 * Run the solve-free invariants (energy balance, maximum principle,
 * achieved residual) on a steady-state solution.
 */
InvariantReport checkSolution(const thermal::GridModel &model,
                              const thermal::PowerMap &power,
                              const thermal::TemperatureField &field,
                              const InvariantOptions &opts = {});

/**
 * Solve `power` and its x-mirror and compare the mirrored fields
 * within `tol_k`. Precondition: the stack must be laterally symmetric
 * in x (true for the slab stacks of oracles.hpp; paper stacks have
 * asymmetric floorplans). Returns false and fills `msg` on violation.
 */
bool checkMirrorSymmetry(const thermal::GridModel &model,
                         const thermal::PowerMap &power, double tol_k,
                         std::string *msg = nullptr);

/**
 * Solve `base` and `base + extra` (extra must be entrywise
 * non-negative) and verify no node got cooler and the peak did not
 * drop. Returns false and fills `msg` on violation.
 */
bool checkPowerMonotonicity(const thermal::GridModel &model,
                            const thermal::PowerMap &base,
                            const thermal::PowerMap &extra, double tol_k,
                            std::string *msg = nullptr);

/**
 * Global switch for the always-on self-check: when enabled,
 * StackSystem runs checkSolution() after every steady solve and
 * fails fatally on violation (bench `--selfcheck`). Counted in
 * Metrics as verify.selfcheck.checks / verify.selfcheck.failures.
 */
void setSelfCheckEnabled(bool enabled);
bool selfCheckEnabled();

} // namespace xylem::verify

#endif // XYLEM_VERIFY_INVARIANTS_HPP
