#include "verify/invariants.hpp"

#include <atomic>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace xylem::verify {

namespace {

std::atomic<bool> g_self_check{false};

/** Solve and insist the solver itself reports success. */
thermal::TemperatureField
solveChecked(const thermal::GridModel &model,
             const thermal::PowerMap &power)
{
    thermal::SolveStats stats;
    auto field = model.solveSteady(power, &stats);
    XYLEM_ASSERT(stats.converged,
                 "verification solve did not converge: residual ",
                 stats.relativeResidual, " after ", stats.iterations,
                 " iterations");
    return field;
}

} // namespace

std::string
InvariantReport::summary() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < failures.size(); ++i)
        os << (i ? "; " : "") << failures[i];
    return os.str();
}

InvariantReport
checkSolution(const thermal::GridModel &model,
              const thermal::PowerMap &power,
              const thermal::TemperatureField &field,
              const InvariantOptions &opts)
{
    XYLEM_ASSERT(field.numNodes() == model.numNodes(),
                 "checkSolution: field has wrong shape");
    InvariantReport rep;
    auto fail = [&rep](const std::string &msg) {
        rep.pass = false;
        rep.failures.push_back(msg);
    };
    const double ambient = model.options().ambientCelsius;
    const std::size_t n = model.numNodes();
    const std::vector<double> b = model.powerVector(power);
    for (double w : b)
        rep.totalPowerW += w;

    // --- energy balance -------------------------------------------
    rep.outflowW = model.heatOutflow(field);
    const double scale = std::max(rep.totalPowerW, 1e-12);
    rep.energyErrorRel = std::abs(rep.outflowW - rep.totalPowerW) / scale;
    if (rep.energyErrorRel > opts.energyBalanceRel) {
        std::ostringstream os;
        os << "energy balance: outflow " << rep.outflowW << " W vs power "
           << rep.totalPowerW << " W (rel err " << rep.energyErrorRel
           << ")";
        fail(os.str());
    }

    // --- maximum principle ----------------------------------------
    rep.minRiseK = 0.0;
    double max_powered = -1e300, max_unpowered = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
        const double rise = field.nodes()[i] - ambient;
        rep.minRiseK = std::min(rep.minRiseK, rise);
        if (b[i] > 0.0)
            max_powered = std::max(max_powered, rise);
        else
            max_unpowered = std::max(max_unpowered, rise);
    }
    if (rep.minRiseK < -opts.belowAmbientTolK) {
        std::ostringstream os;
        os << "maximum principle: node " << rep.minRiseK
           << " K below ambient";
        fail(os.str());
    }
    if (rep.totalPowerW > 0.0 &&
        max_unpowered > max_powered + opts.maximumPrincipleTolK) {
        std::ostringstream os;
        os << "maximum principle: hottest node is unpowered ("
           << max_unpowered << " K rise vs " << max_powered
           << " K at the sources)";
        fail(os.str());
    }

    // --- achieved residual ----------------------------------------
    if (rep.totalPowerW > 0.0) {
        std::vector<double> x(n), gx(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = field.nodes()[i] - ambient;
        model.apply(x, gx);
        double r2 = 0.0, b2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double r = b[i] - gx[i];
            r2 += r * r;
            b2 += b[i] * b[i];
        }
        rep.achievedResidual = std::sqrt(r2 / b2);
        const double limit =
            model.options().tolerance * opts.residualSafety;
        if (rep.achievedResidual > limit) {
            std::ostringstream os;
            os << "residual: achieved " << rep.achievedResidual
               << " exceeds " << limit << " (tolerance "
               << model.options().tolerance << " x safety "
               << opts.residualSafety << ")";
            fail(os.str());
        }
    }
    return rep;
}

bool
checkMirrorSymmetry(const thermal::GridModel &model,
                    const thermal::PowerMap &power, double tol_k,
                    std::string *msg)
{
    const auto &stk = model.stackRef();
    const std::size_t nx = stk.grid.nx(), ny = stk.grid.ny();

    thermal::PowerMap mirrored(stk);
    for (std::size_t l = 0; l < stk.layers.size(); ++l) {
        const auto &src = power.layer(static_cast<int>(l));
        auto &dst = mirrored.layer(static_cast<int>(l));
        for (std::size_t iy = 0; iy < ny; ++iy)
            for (std::size_t ix = 0; ix < nx; ++ix)
                dst.at(ix, iy) = src.at(nx - 1 - ix, iy);
    }

    const auto f = solveChecked(model, power);
    const auto g = solveChecked(model, mirrored);
    double worst = 0.0;
    for (std::size_t l = 0; l < model.numLayers(); ++l)
        for (std::size_t iy = 0; iy < ny; ++iy)
            for (std::size_t ix = 0; ix < nx; ++ix)
                worst = std::max(worst,
                                 std::abs(g.at(l, ix, iy) -
                                          f.at(l, nx - 1 - ix, iy)));
    // Periphery nodes are lateral aggregates: mirroring fixes them.
    for (std::size_t i = model.numLayers() * model.cellsPerLayer();
         i < model.numNodes(); ++i)
        worst = std::max(worst,
                         std::abs(g.nodes()[i] - f.nodes()[i]));
    if (worst > tol_k) {
        if (msg) {
            std::ostringstream os;
            os << "mirrored power map gives a field off by " << worst
               << " K (tol " << tol_k << " K)";
            *msg = os.str();
        }
        return false;
    }
    return true;
}

bool
checkPowerMonotonicity(const thermal::GridModel &model,
                       const thermal::PowerMap &base,
                       const thermal::PowerMap &extra, double tol_k,
                       std::string *msg)
{
    const auto &stk = model.stackRef();
    thermal::PowerMap combined(stk);
    for (std::size_t l = 0; l < stk.layers.size(); ++l) {
        const auto &a = base.layer(static_cast<int>(l)).data();
        const auto &e = extra.layer(static_cast<int>(l)).data();
        auto &c = combined.layer(static_cast<int>(l)).data();
        for (std::size_t i = 0; i < c.size(); ++i) {
            XYLEM_ASSERT(e[i] >= 0.0,
                         "checkPowerMonotonicity: extra power must be "
                         "non-negative");
            c[i] = a[i] + e[i];
        }
    }
    const auto f = solveChecked(model, base);
    const auto g = solveChecked(model, combined);
    double worst = 0.0;
    for (std::size_t i = 0; i < model.numNodes(); ++i)
        worst = std::max(worst, f.nodes()[i] - g.nodes()[i]);
    if (worst > tol_k) {
        if (msg) {
            std::ostringstream os;
            os << "adding power cooled a node by " << worst << " K (tol "
               << tol_k << " K)";
            *msg = os.str();
        }
        return false;
    }
    return true;
}

void
setSelfCheckEnabled(bool enabled)
{
    g_self_check.store(enabled, std::memory_order_relaxed);
}

bool
selfCheckEnabled()
{
    return g_self_check.load(std::memory_order_relaxed);
}

} // namespace xylem::verify
