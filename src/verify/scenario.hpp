/**
 * @file
 * Seeded random scenario generation for the verification and property
 * tests: one place that knows how to draw a "reasonable but
 * adversarial" stack (scheme, die count, thickness, grid, TTSV
 * layout), solver options and power map, so every randomized suite
 * exercises the same distribution and any failure reproduces from its
 * seed alone.
 */

#ifndef XYLEM_VERIFY_SCENARIO_HPP
#define XYLEM_VERIFY_SCENARIO_HPP

#include <cstdint>
#include <vector>

#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/power_map.hpp"

namespace xylem::verify {

/** One power deposit, addressed by role so it survives re-building. */
struct PowerDeposit
{
    bool onProc = true; ///< processor metal, else a DRAM metal layer
    int dramDie = 0;    ///< target die when !onProc
    geometry::Rect rect;
    double watts = 0.0;
};

/** Bounds for the generator (defaults keep the dense solver feasible). */
struct ScenarioLimits
{
    std::size_t minGrid = 6;
    std::size_t maxGrid = 12;
    int maxDramDies = 3;
    int maxDeposits = 5;
    double maxWatts = 8.0;
    /** Probability of replacing the scheme layout by random TTSV sites. */
    double customSitesChance = 0.25;
};

/** A fully reproducible randomized test case. */
struct RandomScenario
{
    std::uint64_t seed = 0;
    stack::StackSpec spec;
    thermal::SolverOptions solver;
    std::vector<PowerDeposit> deposits;

    double totalWatts() const;
};

/** Draw scenario number `seed` (same seed ⇒ same scenario, always). */
RandomScenario randomScenario(std::uint64_t seed,
                              const ScenarioLimits &limits = {});

/** Materialise the scenario's power map on its built stack. */
thermal::PowerMap buildPowerMap(const stack::BuiltStack &stk,
                                const RandomScenario &scenario);

} // namespace xylem::verify

#endif // XYLEM_VERIFY_SCENARIO_HPP
