#include "verify/dense_solver.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace xylem::verify {

DenseSpd::DenseSpd(std::vector<double> matrix, std::size_t n)
    : n_(n), l_(std::move(matrix))
{
    XYLEM_ASSERT(l_.size() == n * n, "DenseSpd: matrix is not n x n");
    // In-place Cholesky: overwrite the lower triangle with L.
    for (std::size_t j = 0; j < n_; ++j) {
        double *row_j = l_.data() + j * n_;
        double d = row_j[j];
        for (std::size_t k = 0; k < j; ++k)
            d -= row_j[k] * row_j[k];
        XYLEM_ASSERT(d > 0.0, "DenseSpd: matrix is not positive definite "
                              "(pivot ", d, " at row ", j, ")");
        const double ljj = std::sqrt(d);
        row_j[j] = ljj;
        for (std::size_t i = j + 1; i < n_; ++i) {
            double *row_i = l_.data() + i * n_;
            double s = row_i[j];
            for (std::size_t k = 0; k < j; ++k)
                s -= row_i[k] * row_j[k];
            row_i[j] = s / ljj;
        }
    }
}

std::vector<double>
DenseSpd::solve(const std::vector<double> &b) const
{
    XYLEM_ASSERT(b.size() == n_, "DenseSpd::solve: wrong vector size");
    // L y = b
    std::vector<double> y(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        const double *row = l_.data() + i * n_;
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= row[k] * y[k];
        y[i] = s / row[i];
    }
    // Lᵀ x = y
    std::vector<double> x(n_);
    for (std::size_t i = n_; i-- > 0;) {
        double s = y[i];
        for (std::size_t k = i + 1; k < n_; ++k)
            s -= l_[k * n_ + i] * x[k];
        x[i] = s / l_[i * n_ + i];
    }
    return x;
}

namespace {

/** Wrap a ΔT node vector into an absolute-°C TemperatureField. */
thermal::TemperatureField
fieldFromRise(const thermal::GridModel &model, const std::vector<double> &x)
{
    const std::size_t extras = model.numNodes() -
                               model.numLayers() * model.cellsPerLayer();
    const auto &grid = model.stackRef().grid;
    thermal::TemperatureField out(model.numLayers(), grid.nx(), grid.ny(),
                                  extras, model.options().ambientCelsius);
    for (std::size_t i = 0; i < model.numNodes(); ++i)
        out.nodes()[i] = x[i] + model.options().ambientCelsius;
    return out;
}

} // namespace

thermal::TemperatureField
referenceSolveSteady(const thermal::GridModel &model,
                     const thermal::PowerMap &power)
{
    const DenseSpd chol(model.denseMatrix(), model.numNodes());
    return fieldFromRise(model, chol.solve(model.powerVector(power)));
}

thermal::TemperatureField
referenceStepTransient(const thermal::GridModel &model,
                       const thermal::TemperatureField &current,
                       const thermal::PowerMap &power, double dt)
{
    XYLEM_ASSERT(dt > 0.0, "referenceStepTransient: dt must be positive");
    XYLEM_ASSERT(current.numNodes() == model.numNodes(),
                 "referenceStepTransient: state has wrong shape");
    const std::size_t n = model.numNodes();
    std::vector<double> extra(n);
    for (std::size_t i = 0; i < n; ++i)
        extra[i] = model.capacities()[i] / dt;

    std::vector<double> b = model.powerVector(power);
    const double ambient = model.options().ambientCelsius;
    for (std::size_t i = 0; i < n; ++i)
        b[i] += extra[i] * (current.nodes()[i] - ambient);

    const DenseSpd chol(model.denseMatrix(&extra), n);
    return fieldFromRise(model, chol.solve(b));
}

} // namespace xylem::verify
