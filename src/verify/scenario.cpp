#include "verify/scenario.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace xylem::verify {

double
RandomScenario::totalWatts() const
{
    double total = 0.0;
    for (const auto &d : deposits)
        total += d.watts;
    return total;
}

RandomScenario
randomScenario(std::uint64_t seed, const ScenarioLimits &limits)
{
    XYLEM_ASSERT(limits.minGrid >= 2 && limits.maxGrid >= limits.minGrid,
                 "bad scenario grid limits");
    // Offset the seed so scenario 0 is not the Rng's default stream.
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x0defaced0c0ffee1ull);

    RandomScenario s;
    s.seed = seed;
    s.spec.numDramDies =
        1 + static_cast<int>(rng.below(
                static_cast<std::uint64_t>(limits.maxDramDies)));
    s.spec.gridNx = limits.minGrid +
                    rng.below(limits.maxGrid - limits.minGrid + 1);
    s.spec.gridNy = limits.minGrid +
                    rng.below(limits.maxGrid - limits.minGrid + 1);
    s.spec.scheme = stack::allSchemes()[rng.below(
        stack::allSchemes().size())];
    s.spec.dieThickness = rng.uniform(40e-6, 200e-6);
    if (rng.chance(0.2))
        s.spec.d2dLambdaOverride = rng.uniform(1.5, 100.0);
    if (rng.chance(limits.customSitesChance)) {
        // A random TTSV layout instead of the scheme's placement; keep
        // sites inside the die with a margin for the 100 µm footprint.
        const std::size_t count = 2 + rng.below(32);
        for (std::size_t i = 0; i < count; ++i)
            s.spec.customTtsvSites.push_back(
                {rng.uniform(0.5e-3, 7.5e-3), rng.uniform(0.5e-3, 7.5e-3)});
    }

    s.solver.ambientCelsius = rng.uniform(25.0, 55.0);
    s.solver.convectionResistance = rng.uniform(0.05, 0.5);

    const int deposits = 1 + static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(
                                     limits.maxDeposits)));
    for (int k = 0; k < deposits; ++k) {
        PowerDeposit d;
        d.onProc = rng.chance(0.7);
        d.dramDie = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(s.spec.numDramDies)));
        d.rect = geometry::Rect{rng.uniform(0.0, 6e-3),
                                rng.uniform(0.0, 6e-3),
                                rng.uniform(0.5e-3, 2e-3),
                                rng.uniform(0.5e-3, 2e-3)};
        d.watts = rng.uniform(0.5, limits.maxWatts);
        s.deposits.push_back(d);
    }
    return s;
}

thermal::PowerMap
buildPowerMap(const stack::BuiltStack &stk, const RandomScenario &scenario)
{
    thermal::PowerMap map(stk);
    for (const auto &d : scenario.deposits) {
        const int layer =
            d.onProc ? stk.procMetal
                     : stk.dramMetal[static_cast<std::size_t>(d.dramDie)];
        map.deposit(layer, d.rect, d.watts);
    }
    return map;
}

} // namespace xylem::verify
