#include "verify/oracles.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace xylem::verify {

stack::BuiltStack
buildSlabStack(const std::vector<SlabLayer> &layers, std::size_t nx,
               std::size_t ny, double side)
{
    XYLEM_ASSERT(!layers.empty(), "slab stack needs at least one layer");
    XYLEM_ASSERT(side > 0.0 && nx > 0 && ny > 0, "bad slab geometry");

    stack::BuiltStack s;
    s.grid = geometry::Grid2D(geometry::Rect{0.0, 0.0, side, side}, nx, ny);
    for (std::size_t l = 0; l < layers.size(); ++l) {
        XYLEM_ASSERT(layers[l].thickness > 0.0 &&
                         layers[l].conductivity > 0.0,
                     "slab layer ", l, " needs positive thickness and λ");
        const bool top = l + 1 == layers.size();
        stack::Layer layer{top ? stack::LayerKind::HeatSink
                               : stack::LayerKind::Tim,
                           "slab" + std::to_string(l),
                           layers[l].thickness,
                           -1,
                           /*heatSource=*/true,
                           /*fullSide=*/0.0,
                           geometry::Field2D(s.grid,
                                             layers[l].conductivity),
                           geometry::Field2D(s.grid,
                                             layers[l].heatCapacity)};
        s.layers.push_back(std::move(layer));
    }
    s.heatSink = static_cast<int>(layers.size()) - 1;
    return s;
}

std::vector<double>
slabSteadyCelsius(const std::vector<SlabLayer> &layers,
                  const std::vector<double> &watts,
                  const thermal::SolverOptions &opts, double side)
{
    const std::size_t n = layers.size();
    XYLEM_ASSERT(watts.size() == n, "one power entry per slab layer");
    const double area = side * side;
    const double total = [&] {
        double t = 0.0;
        for (double w : watts)
            t += w;
        return t;
    }();

    // Heat crossing the interface between layer k and k+1 is the power
    // injected at or below k (adiabatic bottom).
    std::vector<double> flux(n, 0.0); // flux[k]: k -> k+1; flux[n-1] -> air
    double below = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        below += watts[k];
        flux[k] = below;
    }
    XYLEM_ASSERT(std::abs(flux[n - 1] - total) < 1e-12 * (1.0 + total),
                 "slab flux accounting broke");

    std::vector<double> celsius(n, 0.0);
    // Top node: lumped convection in series with the sink layer's top
    // half-thickness (exactly the grid model's ground leg).
    const auto &sink = layers[n - 1];
    celsius[n - 1] =
        opts.ambientCelsius +
        total * (opts.convectionResistance +
                 0.5 * sink.thickness / (sink.conductivity * area));
    for (std::size_t k = n - 1; k-- > 0;) {
        const double r_between =
            (0.5 * layers[k].thickness / layers[k].conductivity +
             0.5 * layers[k + 1].thickness / layers[k + 1].conductivity) /
            area;
        celsius[k] = celsius[k + 1] + flux[k] * r_between;
    }
    return celsius;
}

double
uniformPowerSteadyCelsius(double watts, const SlabLayer &layer,
                          const thermal::SolverOptions &opts, double side)
{
    return slabSteadyCelsius({layer}, {watts}, opts, side)[0];
}

} // namespace xylem::verify
