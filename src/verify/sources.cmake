set(XYLEM_VERIFY_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/dense_solver.cpp
    ${CMAKE_CURRENT_LIST_DIR}/oracles.cpp
    ${CMAKE_CURRENT_LIST_DIR}/scenario.cpp
    ${CMAKE_CURRENT_LIST_DIR}/invariants.cpp)
