/**
 * @file
 * Assembly of the memory-on-top 3D stack (§3.2, §6.1): a processor die
 * at the bottom, `numDramDies` Wide I/O DRAM slices above it (f2b),
 * then TIM, integrated heat spreader and heat sink. Every layer gets a
 * heterogeneous conductivity and heat-capacity map on a common XY grid
 * (the thermal "grid mode").
 *
 * The Xylem TTSV placement schemes (Table 2) select which candidate
 * sites of the DRAM slice receive TTSVs, and whether the D2D layers
 * are bridged there by aligned-and-shorted dummy µbumps (§4.1).
 */

#ifndef XYLEM_STACK_STACK_HPP
#define XYLEM_STACK_STACK_HPP

#include <string>
#include <vector>

#include "floorplan/dram_die.hpp"
#include "floorplan/proc_die.hpp"
#include "geometry/grid.hpp"

namespace xylem::stack {

/** The TTSV placement schemes of Table 2. */
enum class Scheme
{
    Base,     ///< Wide I/O baseline, no TTSVs
    Bank,     ///< Bank Surround: 28 TTSVs at bank vertices + centre stripe
    BankE,    ///< Bank Surround Enhanced: + 8 TTSVs near the cores (36)
    IsoCount, ///< BankE minus the 8 centre-stripe TTSVs (28)
    Prior,    ///< BankE TTSVs but no µbump alignment/shorting
};

/** Scheme name as used in the paper's plots. */
const char *toString(Scheme scheme);

/** Parse a scheme name ("base", "bank", "banke", "isoCount", "prior"). */
Scheme schemeFromString(const std::string &name);

/** All schemes, in Table 2 order. */
const std::vector<Scheme> &allSchemes();

/** Number of TTSVs per die for a scheme (Table 2). */
int ttsvCountPerDie(Scheme scheme);

/** True iff the scheme aligns and shorts dummy µbumps with the TTSVs. */
bool schemeShortsBumps(Scheme scheme);

/** The role a layer plays in the stack. */
enum class LayerKind
{
    ProcMetal,   ///< processor frontside metal + active logic (heat source)
    ProcSilicon, ///< processor bulk silicon (TSVs/TTSVs)
    D2D,         ///< die-to-die layer (µbumps, underfill, backside metal)
    DramMetal,   ///< DRAM frontside metal + periphery (heat source)
    DramSilicon, ///< DRAM bulk silicon (TSVs/TTSVs)
    Tim,         ///< thermal interface material
    Ihs,         ///< integrated heat spreader (larger than die)
    HeatSink,    ///< heat-sink base (larger than die, convective top)
};

const char *toString(LayerKind kind);

/** One discretised layer of the stack. */
struct Layer
{
    LayerKind kind;
    std::string name;        ///< e.g. "dram3.silicon"
    double thickness;        ///< [m]
    int dieIndex;            ///< DRAM die index (0 = bottom-most), or -1
    bool heatSource;         ///< power can be deposited in this layer
    double fullSide;         ///< lateral side if larger than die, else 0
    geometry::Field2D conductivity;  ///< λ per cell [W/mK]
    geometry::Field2D heatCapacity;  ///< volumetric capacity [J/(m³K)]
};

/** Parameters of the whole stack. */
struct StackSpec
{
    floorplan::ProcDieSpec proc;
    floorplan::DramDieSpec dram;
    int numDramDies = 8;
    Scheme scheme = Scheme::Base;
    double dieThickness = 100e-6; ///< bulk Si thickness of every die
    std::size_t gridNx = 80;      ///< XY discretisation (100 µm cells)
    std::size_t gridNy = 80;

    /**
     * Ablation hook: override the background D2D conductivity
     * [W/mK]; 0 keeps the measured Table 1 value (1.5). Prior work
     * assumed up to 100 (§2.5) — sweeping this reproduces why TTSVs
     * alone *appeared* effective there.
     */
    double d2dLambdaOverride = 0.0;

    /**
     * Ablation hook: explicit TTSV sites replacing the scheme's
     * placement (the scheme still decides whether the D2D layer is
     * bridged). Empty = use the scheme.
     */
    std::vector<geometry::Point> customTtsvSites;
};

/**
 * The assembled stack: floorplans, selected TTSV sites, and the layer
 * list from the processor metal (index 0, bottom) to the heat sink.
 */
struct BuiltStack
{
    StackSpec spec;
    floorplan::ProcDie procDie;
    floorplan::DramDie dramDie;
    geometry::Grid2D grid{geometry::Rect{0, 0, 1, 1}, 1, 1};

    /** Selected TTSV sites (centres); identical in every die. */
    std::vector<geometry::Point> ttsvSites;

    std::vector<Layer> layers;

    // Layer indices for navigation.
    int procMetal = -1;
    int procSilicon = -1;
    std::vector<int> d2d;         ///< bottom-most first
    std::vector<int> dramMetal;   ///< bottom-most die first
    std::vector<int> dramSilicon;
    int tim = -1;
    int ihs = -1;
    int heatSink = -1;

    /** Total TTSV count in one die. */
    int ttsvCount() const { return static_cast<int>(ttsvSites.size()); }

    /**
     * TTSV area overhead per die, including the keep-out zone, as a
     * fraction of `die_area` (§7.1 uses the 64.34 mm² Samsung Wide I/O
     * prototype area).
     */
    double ttsvAreaOverhead(double die_area = 64.34e-6) const;
};

/** Select the TTSV sites of a scheme from the DRAM slice candidates. */
std::vector<geometry::Point>
selectTtsvSites(Scheme scheme, const floorplan::DramDie &dram);

/** Build the full stack for a spec. */
BuiltStack buildStack(const StackSpec &spec);

} // namespace xylem::stack

#endif // XYLEM_STACK_STACK_HPP
