#include "stack/stack.hpp"

#include "common/logging.hpp"
#include "materials/library.hpp"

namespace xylem::stack {

using materials::Material;
namespace mc = materials::constants;

const char *
toString(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base: return "base";
      case Scheme::Bank: return "bank";
      case Scheme::BankE: return "banke";
      case Scheme::IsoCount: return "isoCount";
      case Scheme::Prior: return "prior";
    }
    return "?";
}

Scheme
schemeFromString(const std::string &name)
{
    for (Scheme s : allSchemes())
        if (name == toString(s))
            return s;
    fatal("unknown scheme '", name, "'");
}

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> schemes = {
        Scheme::Base, Scheme::Bank, Scheme::BankE, Scheme::IsoCount,
        Scheme::Prior};
    return schemes;
}

int
ttsvCountPerDie(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base: return 0;
      case Scheme::Bank: return 28;
      case Scheme::BankE: return 36;
      case Scheme::IsoCount: return 28;
      case Scheme::Prior: return 36;
    }
    return 0;
}

bool
schemeShortsBumps(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base:
      case Scheme::Prior:
        return false;
      case Scheme::Bank:
      case Scheme::BankE:
      case Scheme::IsoCount:
        return true;
    }
    return false;
}

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::ProcMetal: return "proc-metal";
      case LayerKind::ProcSilicon: return "proc-silicon";
      case LayerKind::D2D: return "d2d";
      case LayerKind::DramMetal: return "dram-metal";
      case LayerKind::DramSilicon: return "dram-silicon";
      case LayerKind::Tim: return "tim";
      case LayerKind::Ihs: return "ihs";
      case LayerKind::HeatSink: return "heat-sink";
    }
    return "?";
}

std::vector<geometry::Point>
selectTtsvSites(Scheme scheme, const floorplan::DramDie &dram)
{
    std::vector<geometry::Point> sites;
    auto append = [&sites](const std::vector<geometry::Point> &src) {
        sites.insert(sites.end(), src.begin(), src.end());
    };
    switch (scheme) {
      case Scheme::Base:
        break;
      case Scheme::Bank:
        append(dram.vertexSites);
        append(dram.stripeSites);
        break;
      case Scheme::BankE:
      case Scheme::Prior:
        append(dram.vertexSites);
        append(dram.stripeSites);
        append(dram.coreSites);
        break;
      case Scheme::IsoCount:
        append(dram.vertexSites);
        append(dram.coreSites);
        break;
    }
    XYLEM_ASSERT(static_cast<int>(sites.size()) == ttsvCountPerDie(scheme),
                 "scheme ", toString(scheme), " selected ", sites.size(),
                 " sites, expected ", ttsvCountPerDie(scheme));
    return sites;
}

double
BuiltStack::ttsvAreaOverhead(double die_area) const
{
    const double side = mc::ttsvSide + 2.0 * mc::ttsvKoz;
    return static_cast<double>(ttsvCount()) * side * side / die_area;
}

namespace {

/** Paint a square of side `side` centred on `p`. */
geometry::Rect
squareAt(const geometry::Point &p, double side)
{
    return geometry::Rect{p.x - side / 2.0, p.y - side / 2.0, side, side};
}

/** A uniform layer over the die grid. */
Layer
makeLayer(LayerKind kind, std::string name, double thickness, int die_index,
          bool heat_source, double full_side, const geometry::Grid2D &grid,
          const Material &mat)
{
    Layer layer{kind,
                std::move(name),
                thickness,
                die_index,
                heat_source,
                full_side,
                geometry::Field2D(grid, mat.conductivity),
                geometry::Field2D(grid, mat.heatCapacity)};
    return layer;
}

/** Paint TSV bus and TTSVs into a bulk-silicon layer. */
void
paintSilicon(Layer &layer, const geometry::Rect &tsv_bus,
             const std::vector<geometry::Point> &ttsv_sites)
{
    const Material bus = materials::tsvBus();
    layer.conductivity.paint(tsv_bus, bus.conductivity);
    layer.heatCapacity.paint(tsv_bus, bus.heatCapacity);
    const Material cu = materials::copper();
    for (const auto &site : ttsv_sites) {
        const auto r = squareAt(site, mc::ttsvSide);
        layer.conductivity.paint(r, cu.conductivity);
        layer.heatCapacity.paint(r, cu.heatCapacity);
    }
}

/**
 * Paint the aligned-and-shorted dummy-µbump columns into a D2D layer
 * (only for the schemes that short; `prior` leaves the D2D layer at
 * its measured background conductivity).
 */
void
paintD2D(Layer &layer, bool shorted, double background_lambda,
         const std::vector<geometry::Point> &ttsv_sites)
{
    if (!shorted)
        return;
    const Material col = materials::shortedBumpColumn();
    // If an ablation raised the background above the pillar material
    // (prior work's assumption), the pillars cannot make it worse.
    if (col.conductivity <= background_lambda)
        return;
    for (const auto &site : ttsv_sites) {
        const auto r = squareAt(site, mc::ttsvSide);
        layer.conductivity.paint(r, col.conductivity);
        layer.heatCapacity.paint(r, col.heatCapacity);
    }
}

} // namespace

BuiltStack
buildStack(const StackSpec &spec)
{
    XYLEM_ASSERT(spec.numDramDies >= 1, "stack needs at least one DRAM die");
    XYLEM_ASSERT(spec.dieThickness > 0.0, "die thickness must be positive");
    XYLEM_ASSERT(spec.proc.dieWidth == spec.dram.dieWidth &&
                     spec.proc.dieHeight == spec.dram.dieHeight,
                 "processor and DRAM dies must have matching footprints "
                 "(§6.2 'similar area and aspect ratio')");

    BuiltStack s;
    s.spec = spec;
    s.procDie = floorplan::buildProcessorDie(spec.proc);
    s.dramDie = floorplan::buildDramDie(spec.dram);
    s.grid = geometry::Grid2D(s.procDie.plan.extent(), spec.gridNx,
                              spec.gridNy);
    s.ttsvSites = spec.customTtsvSites.empty()
                      ? selectTtsvSites(spec.scheme, s.dramDie)
                      : spec.customTtsvSites;
    const bool shorted = schemeShortsBumps(spec.scheme);

    auto push = [&s](Layer layer) {
        s.layers.push_back(std::move(layer));
        return static_cast<int>(s.layers.size() - 1);
    };

    // Bottom of the stack: the processor die, frontside metal facing
    // the C4 pads (adiabatic below — all heat must exit via the sink).
    s.procMetal = push(makeLayer(LayerKind::ProcMetal, "proc.metal",
                                 mc::thicknessProcMetal, -1, true, 0.0,
                                 s.grid, materials::procMetal()));
    {
        Layer si = makeLayer(LayerKind::ProcSilicon, "proc.silicon",
                             spec.dieThickness, -1, false, 0.0, s.grid,
                             materials::silicon());
        paintSilicon(si, s.procDie.tsvBus, s.ttsvSites);
        s.procSilicon = push(std::move(si));
    }

    // DRAM dies, f2b, faces down: D2D | metal | silicon, repeated.
    Material d2d_mat = materials::d2dBackground();
    if (spec.d2dLambdaOverride > 0.0)
        d2d_mat.conductivity = spec.d2dLambdaOverride;
    for (int d = 0; d < spec.numDramDies; ++d) {
        const std::string tag = "dram" + std::to_string(d);
        {
            Layer d2d = makeLayer(LayerKind::D2D, tag + ".d2d",
                                  mc::thicknessD2D, d, false, 0.0, s.grid,
                                  d2d_mat);
            paintD2D(d2d, shorted, d2d_mat.conductivity, s.ttsvSites);
            s.d2d.push_back(push(std::move(d2d)));
        }
        s.dramMetal.push_back(
            push(makeLayer(LayerKind::DramMetal, tag + ".metal",
                           mc::thicknessDramMetal, d, true, 0.0, s.grid,
                           materials::dramMetal())));
        {
            Layer si = makeLayer(LayerKind::DramSilicon, tag + ".silicon",
                                 spec.dieThickness, d, false, 0.0, s.grid,
                                 materials::silicon());
            paintSilicon(si, s.dramDie.tsvBus, s.ttsvSites);
            s.dramSilicon.push_back(push(std::move(si)));
        }
    }

    // Package top: TIM, IHS, heat sink.
    s.tim = push(makeLayer(LayerKind::Tim, "tim", mc::thicknessTim, -1,
                           false, 0.0, s.grid, materials::tim()));
    s.ihs = push(makeLayer(LayerKind::Ihs, "ihs", mc::thicknessIhs, -1,
                           false, mc::sideIhs, s.grid, materials::ihs()));
    s.heatSink = push(makeLayer(LayerKind::HeatSink, "heat-sink",
                                mc::thicknessHeatSink, -1, false,
                                mc::sideHeatSink, s.grid,
                                materials::heatSink()));
    return s;
}

} // namespace xylem::stack
