/**
 * @file
 * The service's query engine: turns a validated Request into an
 * EvalSummary by driving the existing pipeline (StackSystem →
 * cachedSimulate → GridModel), with the PR-3 retry/escalation ladder
 * wrapped around every request.
 *
 * Hot-system reuse: one StackSystem per distinct config text stays
 * resident (bounded LRU), so a stream of what-if queries against the
 * same stack skips the model assembly cost — the cold-start work a
 * batch binary pays on every invocation. Each system's SolverWorkspace
 * is reused across requests (PR-4), and the process-wide sim cache
 * deduplicates the multicore simulations underneath.
 *
 * Determinism contract: the warm-start field is cleared before every
 * request, so a served result is bit-identical to the same query run
 * cold in a batch binary, independent of what the daemon served
 * before. (Warm starts would be faster but would make a response
 * depend on request history; a serving layer must not do that.)
 */

#ifndef XYLEM_SERVICE_ENGINE_HPP
#define XYLEM_SERVICE_ENGINE_HPP

#include <chrono>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/task_context.hpp"
#include "service/protocol.hpp"
#include "xylem/system.hpp"

namespace xylem::service {

struct EngineOptions
{
    /** Same-rung retries per request (0 disables the ladder). */
    int maxRetries = 1;
    /** Cooperative per-request deadline; 0 disables. */
    double taskTimeoutSeconds = 0.0;
    /** Resident StackSystem cap (LRU eviction beyond it). */
    std::size_t maxResidentSystems = 8;
    /**
     * Intra-solve thread grant (`--solver-threads`): the thread count
     * a solve may use when the server's load-adaptive policy allows
     * threading (shallow queue). 0 disables the override entirely —
     * each request's own solver.threads config applies, as before.
     * Thread count never changes results (DESIGN.md §17).
     */
    int solverThreads = 0;
};

class Engine
{
  public:
    /**
     * Absolute end-to-end deadline of a request; the default-
     * constructed value means "none". Distinct from the per-rung
     * cooperative timeout (EngineOptions::taskTimeoutSeconds): the
     * rung timeout buys escalation another attempt, the request
     * deadline ends the whole ladder — once it has passed, escalating
     * would spend budget the client no longer has.
     */
    using Deadline = std::chrono::steady_clock::time_point;

    explicit Engine(EngineOptions opts);

    /**
     * Execute the request's query. Thread-safe; concurrent requests
     * against the same config serialise on that system's lock.
     * Throws Error on permanent failure (after the ladder), with the
     * code of the last attempt. A non-default `deadline` bounds the
     * whole ladder: attempts run under min(rung timeout, remaining
     * budget), and an expired budget surfaces as
     * Error(DeadlineExceeded) without further escalation.
     *
     * `solverThreads` is the ambient intra-solve thread override for
     * this request (0 = none): the server passes the engine's grant
     * when its queue is shallow and 1 when it is deep. Purely a
     * scheduling knob — results are bit-identical either way.
     */
    EvalSummary run(const Request &req, Deadline deadline = {},
                    int solverThreads = 0);

    /** Per-request result of runBatch (never throws per batch). */
    struct BatchOutcome
    {
        bool ok = false;
        EvalSummary summary;
        ErrorCode code = ErrorCode::Unknown;
        std::string message;
    };

    /**
     * Serve 1..kMaxBatchRhs Steady requests against ONE resident
     * system (all must share configText) through a single multi-RHS
     * block solve. The fast path runs the whole batch on the ladder's
     * first rung; if the block solve raises, the batch falls back to
     * the full per-request ladder serially, so resilience semantics
     * match run() exactly. Outcomes are positional; a request with a
     * bad app name gets its own Config outcome without poisoning the
     * batch. Every response is bit-identical to run() on the same
     * request (the batch members solve cold, like every request).
     *
     * `deadlines`, when non-empty, is positional (one per request;
     * default value = none). The shared block solve runs under the
     * MINIMUM member deadline — the member with the least budget
     * decides when the block attempt gives up — and the fallback
     * ladder then runs each member under its OWN deadline, so one
     * slow column cannot blow the whole block's budgets: expired
     * members get their typed deadline error, the rest complete.
     */
    std::vector<BatchOutcome>
    runBatch(const std::vector<const Request *> &reqs,
             const std::vector<Deadline> &deadlines = {},
             int solverThreads = 0);

    /** Resident systems right now (telemetry/tests). */
    std::size_t residentSystems() const;

  private:
    /** One resident system; the mutex serialises its (stateful) use. */
    struct Slot
    {
        explicit Slot(core::SystemConfig cfg)
            : system(std::move(cfg))
        {}
        std::mutex mutex;
        core::StackSystem system;
    };

    std::shared_ptr<Slot> slotFor(const Request &req);
    EvalSummary runOnce(const Request &req, core::StackSystem &system);
    /** The retry/escalation ladder; caller holds the slot's mutex. */
    EvalSummary runLadder(const Request &req, Slot &slot,
                          Deadline deadline = {}, int solverThreads = 0);
    TaskContext contextForRung(int rung, Deadline deadline = {},
                               int solverThreads = 0) const;

    EngineOptions opts_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Slot>> systems_;
    /** Most-recent first; parallel to systems_ keys. */
    std::list<std::string> lru_;
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_ENGINE_HPP
