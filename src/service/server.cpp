#include "service/server.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "common/signal.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"

namespace xylem::service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Has this job's end-to-end budget run out? (No deadline = never.) */
bool
expired(const std::chrono::steady_clock::time_point &deadline)
{
    return deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() >= deadline;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), engine_(opts_.engine)
{}

Server::~Server()
{
    requestStop();
    if (started_)
        drain();
}

bool
Server::stopRequested() const
{
    return stop_.load(std::memory_order_relaxed) ||
           ShutdownSignal::requested();
}

void
Server::start()
{
    if (started_)
        return;
    if (!opts_.journalPath.empty()) {
        journal_ = std::make_unique<RequestJournal>(opts_.journalPath);
        const JournalRecovery &r = journal_->recovery();
        if (r.admitted > 0 || r.tornTail)
            inform("journal recovery: ", r.admitted, " admitted, ",
                   r.answered, " answered, ", r.lost.size(),
                   " lost in the previous incarnation",
                   r.tornTail ? " (torn tail record)" : "");
        for (const LostRequest &lost : journal_->recovery().lost)
            warn("lost request: seq ", lost.seq, " id ", lost.id, " [",
                 lost.scenario, "]");
    }
    listen_endpoint_ = parseEndpoint(opts_.endpoint);
    listener_ = listenEndpoint(listen_endpoint_);
    // Qualified: the boundEndpoint() accessor hides the free helper.
    bound_endpoint_ =
        xylem::service::boundEndpoint(listener_, listen_endpoint_).str();
    const int n = opts_.workers > 0 ? opts_.workers : 1;
    workers_.reserve(static_cast<std::size_t>(n));
    worker_states_.clear();
    for (int i = 0; i < n; ++i)
        worker_states_.push_back(std::make_unique<WorkerState>());
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this, i] {
            workerLoop(static_cast<std::size_t>(i));
        });
    watchdog_exit_.store(false, std::memory_order_relaxed);
    if (opts_.watchdogIntervalSeconds > 0.0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
    start_time_ = std::chrono::steady_clock::now();
    accepting_.store(true, std::memory_order_relaxed);
    started_ = true;
    inform("serving on ", bound_endpoint_, " (", n,
           " workers, queue ", opts_.queueCapacity, ")");
}

int
Server::run()
{
    start();
    acceptLoop();
    drain();
    return 0;
}

void
Server::acceptLoop()
{
    auto &accepted =
        runtime::Metrics::global().counter("service.connections");
    while (!stopRequested()) {
        pollfd pfd = {};
        pfd.fd = listener_.get();
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue; // signal: re-check stopRequested()
            warn("accept poll failed: ", std::strerror(errno));
            break;
        }
        if (pr == 0) {
            reapConnections(/*join_all=*/false);
            continue;
        }
        FdGuard fd(::accept(listener_.get(), nullptr, nullptr));
        if (!fd.valid()) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("accept failed: ", std::strerror(errno));
            break;
        }
        accepted.increment();
        if (listen_endpoint_.kind == TransportKind::Tcp)
            setTcpNoDelay(fd.get());
        const std::uint64_t conn_id =
            next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (runtime::FaultInjector::global().injectAcceptFailure(
                conn_id))
            continue; // fd closes here: the injected accept failure
        auto conn = std::make_shared<Connection>();
        conn->fd = std::move(fd);
        conn->id = conn_id;
        {
            std::lock_guard<std::mutex> lock(connections_mutex_);
            connections_.push_back(conn);
        }
        conn->reader =
            std::thread([this, conn] { readerLoop(conn); });
    }
}

void
Server::readerLoop(const std::shared_ptr<Connection> &conn)
{
    LineReader reader(conn->fd.get(), kMaxFrameBytes);
    if (opts_.idleTimeoutSeconds > 0.0)
        reader.setFrameTimeout(
            static_cast<int>(opts_.idleTimeoutSeconds * 1000.0));
    if (const std::size_t torn =
            runtime::FaultInjector::global().tornReadLimit(conn->id))
        reader.setReadChunkLimit(torn);
    auto &protocol_errors =
        runtime::Metrics::global().counter("service.protocol_errors");
    std::string frame;
    for (bool open = true; open;) {
        const ReadStatus status =
            reader.next(frame, [this] { return stopRequested(); });
        switch (status) {
        case ReadStatus::Frame:
            handleFrame(conn, frame);
            break;
        case ReadStatus::Oversized:
            protocol_errors.increment();
            writeLine(conn,
                      formatErrorResponse(
                          0, ErrorCode::Protocol,
                          "request frame exceeds " +
                              std::to_string(kMaxFrameBytes) +
                              " bytes"));
            break;
        case ReadStatus::Truncated:
            // EOF mid-frame: the peer can still read (half-close),
            // so tell it what went wrong before hanging up.
            protocol_errors.increment();
            writeLine(conn,
                      formatErrorResponse(
                          0, ErrorCode::Protocol,
                          "connection closed inside a frame "
                          "(missing newline terminator)"));
            open = false;
            break;
        case ReadStatus::Reset:
            // Peer reset mid-stream (ECONNRESET) — not a clean EOF;
            // count it so chaotic clients are visible in telemetry.
            runtime::Metrics::global()
                .counter("service.conn_reset")
                .increment();
            open = false;
            break;
        case ReadStatus::Idle:
            // Slow loris: a frame stalled past the idle timeout. Shed
            // the connection; trickling bytes must never pin a reader.
            runtime::Metrics::global()
                .counter("service.idle_timeouts")
                .increment();
            writeLine(conn,
                      formatErrorResponse(
                          0, ErrorCode::Protocol,
                          "frame incomplete after " +
                              std::to_string(static_cast<int>(
                                  opts_.idleTimeoutSeconds)) +
                              "s; closing"));
            open = false;
            break;
        case ReadStatus::Eof:
        case ReadStatus::Stopped:
        case ReadStatus::Error:
            open = false;
            break;
        }
    }
    conn->done.store(true, std::memory_order_release);
}

void
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const std::string &frame)
{
    auto &metrics = runtime::Metrics::global();
    Request req;
    try {
        req = parseRequest(frame);
    } catch (const Error &e) {
        metrics.counter("service.protocol_errors").increment();
        writeLine(conn, formatErrorResponse(0, e.code(), e.what()));
        return;
    } catch (const std::exception &e) {
        metrics.counter("service.protocol_errors").increment();
        writeLine(conn,
                  formatErrorResponse(0, ErrorCode::Unknown, e.what()));
        return;
    }
    metrics.counter("service.requests").increment();

    if (req.query == QueryType::Metrics) {
        // Telemetry must stay observable when the queue is saturated,
        // so it is answered here and never takes a queue slot.
        writeLine(conn,
                  formatMetricsResponse(req.id, metrics.toJson()));
        return;
    }
    if (req.query == QueryType::Health) {
        // Liveness probe: answered inline for the same reason — a
        // wedged worker pool must not block the question "are you
        // wedged?".
        writeLine(conn, formatHealthResponse(req.id, healthSnapshot()));
        return;
    }

    Job job;
    job.req = std::move(req);
    job.conn = conn;
    job.admitted = std::chrono::steady_clock::now();
    if (job.req.deadlineMs > 0.0)
        job.deadline =
            job.admitted +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(job.req.deadlineMs /
                                              1000.0));
    job.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t seq = job.seq;
    const std::uint64_t rid = job.req.id;
    const std::string key = scenarioKey(job.req);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.size() >= opts_.queueCapacity) {
            metrics.counter("service.shed").increment();
            writeLine(conn,
                      formatErrorResponse(
                          job.req.id, ErrorCode::Overloaded,
                          "request queue is full (capacity " +
                              std::to_string(opts_.queueCapacity) +
                              "); retry later"));
            return;
        }
        queue_.push_back(std::move(job));
        // Journal the admission under the queue lock: no worker can
        // answer (and journal "answered") a request whose "admitted"
        // record is not on disk yet.
        if (journal_)
            journal_->recordAdmitted(seq, rid, key);
    }
    queue_cv_.notify_one();
}

void
Server::workerLoop(std::size_t index)
{
    WorkerState &state = *worker_states_[index];
    for (;;) {
        Job job;
        std::vector<Job> extras;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return !queue_.empty() || workers_exit_;
            });
            if (queue_.empty())
                return; // workers_exit_ and the queue is drained
            job = std::move(queue_.front());
            queue_.pop_front();
            // Load-adaptive thread policy, decided at pickup from the
            // queue depth left behind: a shallow queue (fewer waiting
            // jobs than workers) grants the solve the engine's
            // --solver-threads for latency; a deep queue pins it to 1
            // thread — the workers already saturate the cores, and
            // threading individual solves would only add contention.
            // Purely a scheduling decision: results are bit-identical
            // at any thread count (DESIGN.md §17).
            const int thread_grant = opts_.engine.solverThreads;
            if (thread_grant > 0)
                job.solverThreads =
                    queue_.size() <
                            static_cast<std::size_t>(opts_.workers)
                        ? thread_grant
                        : 1;
            // Batch formation: drain the queued Steady jobs against
            // the same config text (the batch.* policy travels inside
            // the config) into one multi-RHS block solve. Jobs for
            // other configs or query kinds stay queued — a mixed
            // burst splits, it never cross-batches. Only a multigrid-
            // preconditioned CG solve amortises enough coefficient
            // bandwidth to win as a block (BENCH_solver.json shows
            // jacobi/line batches *slower* per solve than solo), so
            // other solver configs skip formation and serve serially.
            const core::BatchOptions &policy = job.req.config.batch;
            const thermal::SolverOptions &sopts = job.req.config.solver;
            const bool batch_profitable =
                sopts.kind == thermal::SolverKind::CG &&
                sopts.preconditioner ==
                    thermal::Preconditioner::Multigrid;
            if (job.req.query == QueryType::Steady && policy.enabled &&
                policy.maxRhs > 1) {
                const std::size_t cap = std::min(
                    static_cast<std::size_t>(policy.maxRhs),
                    thermal::kMaxBatchRhs);
                bool had_candidate = false;
                for (auto it = queue_.begin();
                     it != queue_.end() && extras.size() + 1 < cap;) {
                    if (it->req.query == QueryType::Steady &&
                        it->req.configText == job.req.configText) {
                        had_candidate = true;
                        if (!batch_profitable)
                            break;
                        extras.push_back(std::move(*it));
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }
                if (!batch_profitable && had_candidate)
                    runtime::Metrics::global()
                        .counter("service.batch_skipped_unprofitable")
                        .increment();
            }
        }
        // The adaptive decision, visible in metrics: which way did
        // the policy go for this pickup (nothing counted when no
        // --solver-threads grant is configured).
        if (job.solverThreads > 1)
            runtime::Metrics::global()
                .counter("service.threaded_solves")
                .increment();
        else if (job.solverThreads == 1)
            runtime::Metrics::global()
                .counter("service.singlethread_solves")
                .increment();
        // Heartbeat for the watchdog: busy from pickup to response.
        state.busySinceNs.store(steadyNowNs(),
                                std::memory_order_relaxed);
        if (const int stall =
                runtime::FaultInjector::global().workerStallMs(
                    job.seq))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall));
        if (extras.empty()) {
            process(std::move(job));
        } else {
            std::vector<Job> jobs;
            jobs.reserve(extras.size() + 1);
            jobs.push_back(std::move(job));
            for (Job &e : extras)
                jobs.push_back(std::move(e));
            runtime::Metrics::global()
                .counter("service.batches_formed")
                .increment();
            processBatch(std::move(jobs));
        }
        state.busySinceNs.store(0, std::memory_order_relaxed);
        state.stallCounted.store(false, std::memory_order_relaxed);
    }
}

void
Server::watchdogLoop()
{
    auto &stalls =
        runtime::Metrics::global().counter("watchdog.stalled_workers");
    const auto interval = std::chrono::duration<double>(
        opts_.watchdogIntervalSeconds > 0.0
            ? opts_.watchdogIntervalSeconds
            : 1.0);
    const double threshold = opts_.stallThresholdSeconds;
    auto next = std::chrono::steady_clock::now() + interval;
    while (!watchdog_exit_.load(std::memory_order_relaxed)) {
        // Sleep in short slices so drain() never waits a full period.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (std::chrono::steady_clock::now() < next)
            continue;
        next = std::chrono::steady_clock::now() + interval;
        int stalled = 0;
        for (const auto &state : worker_states_) {
            const std::uint64_t busy =
                state->busySinceNs.load(std::memory_order_relaxed);
            if (busy == 0)
                continue;
            const double busy_s =
                static_cast<double>(steadyNowNs() - busy) * 1e-9;
            if (threshold > 0.0 && busy_s > threshold) {
                ++stalled;
                // Count each stall episode once, not once per tick.
                if (!state->stallCounted.exchange(
                        true, std::memory_order_relaxed)) {
                    stalls.increment();
                    warn("watchdog: worker busy on one job for ",
                         busy_s, "s (threshold ", threshold, "s)");
                }
            }
        }
        stalled_workers_.store(stalled, std::memory_order_relaxed);
    }
}

HealthInfo
Server::healthSnapshot()
{
    HealthInfo h;
    h.accepting = accepting_.load(std::memory_order_relaxed);
    h.workers = static_cast<int>(worker_states_.size());
    h.stalledWorkers = stalled_workers_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        h.queueDepth = queue_.size();
    }
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        h.inflight = inflight_.size();
        for (const auto &[key, batch] : inflight_) {
            (void)key;
            const double age = secondsSince(batch->started);
            if (age > h.oldestInflightSeconds)
                h.oldestInflightSeconds = age;
        }
    }
    h.residentSystems = engine_.residentSystems();
    h.uptimeSeconds = secondsSince(start_time_);
    h.journalLostPrevious =
        journal_ ? journal_->recovery().lost.size() : 0;
    h.ready = h.accepting && h.stalledWorkers == 0;
    return h;
}

void
Server::process(Job job)
{
    auto &metrics = runtime::Metrics::global();
    job.queueSeconds = secondsSince(job.admitted);
    metrics.histogram("service.queue_seconds").observe(job.queueSeconds);

    // Shed work whose budget expired while queued: starting a solve
    // nobody is waiting for would only delay the requests behind it.
    if (expired(job.deadline)) {
        respond(job, false, EvalSummary{}, ErrorCode::DeadlineExceeded,
                "deadline expired while queued (" +
                    std::to_string(job.queueSeconds) + "s in queue)",
                0.0, /*dedup=*/false);
        return;
    }

    const std::string key = scenarioKey(job.req);
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // Identical solve already running: park as a follower;
            // the leader answers us from its result.
            it->second->followers.push_back(std::move(job));
            metrics.counter("service.dedup_hits").increment();
            return;
        }
        inflight_.emplace(key, std::make_shared<Batch>());
    }

    EvalSummary summary;
    ErrorCode code = ErrorCode::Unknown;
    std::string message;
    bool ok = true;
    const auto solve_start = std::chrono::steady_clock::now();
    try {
        summary = engine_.run(job.req, job.deadline, job.solverThreads);
    } catch (const Error &e) {
        ok = false;
        code = e.code();
        message = e.what();
    } catch (const std::exception &e) {
        ok = false;
        message = e.what();
    }
    const double solve_seconds = secondsSince(solve_start);
    metrics.histogram("service.solve_seconds").observe(solve_seconds);
    metrics.counter(ok ? "service.solves" : "service.solve_failures")
        .increment();

    // Detach the batch: followers that raced in after this point find
    // no in-flight entry and become leaders of a fresh solve.
    std::shared_ptr<Batch> batch;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        batch = it->second;
        inflight_.erase(it);
    }

    respond(job, ok, summary, code, message, solve_seconds,
            /*dedup=*/false);
    for (const Job &follower : batch->followers)
        respond(follower, ok, summary, code, message, solve_seconds,
                /*dedup=*/true);
}

void
Server::processBatch(std::vector<Job> jobs)
{
    auto &metrics = runtime::Metrics::global();
    for (Job &j : jobs) {
        j.queueSeconds = secondsSince(j.admitted);
        metrics.histogram("service.queue_seconds")
            .observe(j.queueSeconds);
    }

    // Dedup folds into batch formation: a job whose scenarioKey
    // matches an earlier batch member parks on that member; one that
    // matches a solve in flight on another worker parks there — the
    // same leader/follower flow as process(), per member.
    struct Member
    {
        Job job;
        std::string key;
        std::vector<Job> local; ///< followers from inside this batch
    };
    std::vector<Member> members;
    members.reserve(jobs.size());
    for (Job &j : jobs) {
        const std::string key = scenarioKey(j.req);
        Member *dup = nullptr;
        for (Member &m : members)
            if (m.key == key) {
                dup = &m;
                break;
            }
        if (dup) {
            dup->local.push_back(std::move(j));
            metrics.counter("service.dedup_hits").increment();
            continue;
        }
        bool parked = false;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end()) {
                it->second->followers.push_back(std::move(j));
                metrics.counter("service.dedup_hits").increment();
                parked = true;
            } else {
                inflight_.emplace(key, std::make_shared<Batch>());
            }
        }
        if (!parked)
            members.push_back(Member{std::move(j), key, {}});
    }
    if (members.empty())
        return;

    std::vector<const Request *> reqs;
    reqs.reserve(members.size());
    std::vector<Engine::Deadline> deadlines;
    deadlines.reserve(members.size());
    for (const Member &m : members) {
        reqs.push_back(&m.job.req);
        deadlines.push_back(m.job.deadline);
    }
    const auto solve_start = std::chrono::steady_clock::now();
    std::vector<Engine::BatchOutcome> outcomes;
    try {
        // The leader's pickup decided the thread policy for the whole
        // block (the drained extras were queued behind it).
        outcomes = engine_.runBatch(reqs, deadlines,
                                    members.front().job.solverThreads);
    } catch (const Error &e) {
        Engine::BatchOutcome failed;
        failed.code = e.code();
        failed.message = e.what();
        outcomes.assign(members.size(), failed);
    } catch (const std::exception &e) {
        Engine::BatchOutcome failed;
        failed.message = e.what();
        outcomes.assign(members.size(), failed);
    }
    const double solve_seconds = secondsSince(solve_start);

    for (std::size_t i = 0; i < members.size(); ++i) {
        const Member &m = members[i];
        const Engine::BatchOutcome &o = outcomes[i];
        // Per-member telemetry so request accounting matches serial
        // serving (one observation and one solves tick per request).
        metrics.histogram("service.solve_seconds")
            .observe(solve_seconds);
        metrics
            .counter(o.ok ? "service.solves" : "service.solve_failures")
            .increment();
        std::shared_ptr<Batch> batch;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto it = inflight_.find(m.key);
            batch = it->second;
            inflight_.erase(it);
        }
        respond(m.job, o.ok, o.summary, o.code, o.message,
                solve_seconds, /*dedup=*/false);
        for (const Job &f : m.local)
            respond(f, o.ok, o.summary, o.code, o.message,
                    solve_seconds, /*dedup=*/true);
        for (const Job &f : batch->followers)
            respond(f, o.ok, o.summary, o.code, o.message,
                    solve_seconds, /*dedup=*/true);
    }
}

void
Server::respond(const Job &job, bool ok, const EvalSummary &summary,
                ErrorCode code, const std::string &message,
                double solve_seconds, bool dedup)
{
    // A result that arrives after the budget is not the result the
    // client asked for: convert it to the typed deadline error rather
    // than pretend to be on time. (Errors keep their original code —
    // they carry more diagnosis than "too late" does.)
    std::string late_message;
    if (ok && expired(job.deadline)) {
        ok = false;
        code = ErrorCode::DeadlineExceeded;
        late_message = "deadline of " +
                       std::to_string(job.req.deadlineMs) +
                       "ms exceeded (solve completed late)";
    }
    RequestTelemetry t;
    t.queueSeconds = job.queueSeconds;
    t.solveSeconds = solve_seconds;
    t.serviceSeconds = secondsSince(job.admitted);
    t.dedup = dedup;
    const bool delivered = writeLine(
        job.conn,
        ok ? formatOkResponse(job.req, summary, t)
           : formatErrorResponse(
                 job.req.id, code,
                 late_message.empty() ? message : late_message));
    // Journal "answered" only after the bytes were handed to the
    // kernel: a crash in between over-reports the request as lost
    // (at-least-once replay), never under-reports.
    if (journal_ && delivered)
        journal_->recordAnswered(job.seq, job.req.id);
    auto &metrics = runtime::Metrics::global();
    metrics.histogram("service.latency_seconds")
        .observe(t.serviceSeconds);
    metrics.counter(ok ? "service.responses" : "service.errors")
        .increment();
    if (!ok && code == ErrorCode::DeadlineExceeded)
        metrics.counter("service.deadline_exceeded").increment();
}

bool
Server::writeLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    auto &injector = runtime::FaultInjector::global();
    std::size_t chunk_limit = 0;
    int chunk_delay_us = 0;
    if (injector.injectTornWrite(conn->id)) {
        chunk_limit = 7;     // responses reassemble from tiny chunks
        chunk_delay_us = 200;
    }
    const int timeout_ms =
        opts_.writeTimeoutSeconds > 0.0
            ? static_cast<int>(opts_.writeTimeoutSeconds * 1000.0)
            : 0;
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    std::string framed = line;
    framed += '\n';
    const SendStatus status = sendAllTimed(
        conn->fd.get(), framed, timeout_ms, chunk_limit, chunk_delay_us);
    if (status == SendStatus::Ok)
        return true;
    auto &metrics = runtime::Metrics::global();
    if (status == SendStatus::Timeout) {
        // The peer stopped draining: shed the whole connection so its
        // reader unblocks and no further work is queued for it.
        metrics.counter("service.write_timeouts").increment();
        ::shutdown(conn->fd.get(), SHUT_RDWR);
    } else {
        metrics.counter("service.write_failures").increment();
    }
    return false;
}

void
Server::reapConnections(bool join_all)
{
    std::vector<std::shared_ptr<Connection>> reaped;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        auto keep = connections_.begin();
        for (auto &conn : connections_) {
            if (join_all || conn->done.load(std::memory_order_acquire))
                reaped.push_back(std::move(conn));
            else
                *keep++ = std::move(conn);
        }
        connections_.erase(keep, connections_.end());
    }
    for (auto &conn : reaped)
        if (conn->reader.joinable())
            conn->reader.join();
    // Connections close here (last shared_ptr) — after their readers
    // have exited and every queued response has been written.
}

void
Server::drain()
{
    if (!started_)
        return;
    started_ = false;
    stop_.store(true, std::memory_order_relaxed);
    accepting_.store(false, std::memory_order_relaxed);

    // 1. Stop accepting: close the listener — and for a Unix
    //    endpoint, remove the socket file so new clients fail fast
    //    instead of hanging. (TCP has no filesystem residue.)
    listener_.reset();
    if (listen_endpoint_.kind == TransportKind::Unix &&
        !listen_endpoint_.path.empty())
        ::unlink(listen_endpoint_.path.c_str());

    // 2. The connection readers observe the stop in their next poll
    //    slice; joining them ends request admission.
    reapConnections(/*join_all=*/true);

    // 3. Workers drain every already-admitted job, then exit: an
    //    accepted request is always answered.
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        workers_exit_ = true;
    }
    queue_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();

    // The watchdog outlives the workers (so a wedged drain would
    // still be reported), then exits with them.
    watchdog_exit_.store(true, std::memory_order_relaxed);
    if (watchdog_.joinable())
        watchdog_.join();

    // 4. Flush telemetry.
    if (!opts_.metricsJsonPath.empty()) {
        std::ofstream out(opts_.metricsJsonPath);
        if (out)
            out << runtime::Metrics::global().toJson() << "\n";
        else
            warn("cannot write metrics to ", opts_.metricsJsonPath);
    }
    auto &metrics = runtime::Metrics::global();
    inform("drained: ", metrics.counter("service.responses").value(),
           " responses, ",
           metrics.counter("service.dedup_hits").value(),
           " dedup hits, ", metrics.counter("service.shed").value(),
           " shed");
}

} // namespace xylem::service
