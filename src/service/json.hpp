/**
 * @file
 * Minimal JSON support for the simulation service's wire protocol: a
 * tree value type, a strict recursive-descent parser, and a writer
 * whose doubles round-trip bit-exactly.
 *
 * The parser is built for hostile input (the daemon reads frames from
 * arbitrary local clients): it never recurses deeper than kMaxDepth,
 * rejects trailing junk, validates UTF-16 escapes, and reports every
 * failure as Error(ErrorCode::Protocol) with a byte offset — a
 * malformed frame can produce a typed error response but never a
 * crash or unbounded work.
 *
 * Doubles are formatted with std::to_chars (shortest round-trip), so
 * a value written by the server and re-parsed by a client compares
 * bit-identical — the property the service's "responses match batch
 * mode exactly" guarantee rests on.
 */

#ifndef XYLEM_SERVICE_JSON_HPP
#define XYLEM_SERVICE_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace xylem::service {

class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    using Array = std::vector<JsonValue>;
    /** std::map: object members serialise in sorted (canonical) order. */
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Boolean), bool_(b) {}
    JsonValue(double n) : type_(Type::Number), number_(n) {}
    JsonValue(int n) : type_(Type::Number), number_(n) {}
    JsonValue(const char *s) : type_(Type::String), string_(s) {}
    JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
    JsonValue(Array a) : type_(Type::Array), array_(std::move(a)) {}
    JsonValue(Object o) : type_(Type::Object), object_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBoolean() const { return type_ == Type::Boolean; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Checked accessors: throw Error(Protocol) on a type mismatch. */
    bool boolean() const;
    double number() const;
    const std::string &str() const;
    const Array &array() const;
    const Object &object() const;

    /** Object member, or null when absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Serialise (compact, members in sorted key order). */
    std::string dump() const;
    void dumpTo(std::string &out) const;

  private:
    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse one complete JSON value (plus surrounding whitespace only).
 * Throws Error(ErrorCode::Protocol) on any syntax violation, with the
 * byte offset of the problem in the message.
 */
JsonValue parseJson(std::string_view text);

/** Shortest decimal form that parses back to the identical double. */
std::string formatDouble(double v);

/** Append `s` as a quoted, escaped JSON string literal. */
void appendJsonString(std::string &out, std::string_view s);

} // namespace xylem::service

#endif // XYLEM_SERVICE_JSON_HPP
