#include "service/protocol.hpp"

#include <cmath>
#include <sstream>

#include "service/json.hpp"
#include "xylem/config_io.hpp"

namespace xylem::service {

namespace {

/** Checked finite-number field access. */
double
numberField(const JsonValue &v, const char *name)
{
    if (!v.isNumber())
        raise(ErrorCode::Protocol, "request field '", name,
              "' must be a number");
    const double d = v.number();
    if (!std::isfinite(d))
        raise(ErrorCode::Protocol, "request field '", name,
              "' is out of range");
    return d;
}

QueryType
queryFromString(const std::string &s)
{
    if (s == "steady")
        return QueryType::Steady;
    if (s == "transient")
        return QueryType::Transient;
    if (s == "boost")
        return QueryType::Boost;
    if (s == "metrics")
        return QueryType::Metrics;
    if (s == "health")
        return QueryType::Health;
    raise(ErrorCode::Protocol, "unknown query type '", s,
          "' (expected steady|transient|boost|metrics|health)");
}

/**
 * Render the request's config-override object into the config_io
 * `key = value` text form and parse it, so the service accepts
 * exactly the keys (and applies exactly the validation) of the
 * offline configuration files.
 */
core::SystemConfig
configFromOverrides(const JsonValue *overrides)
{
    std::ostringstream text;
    if (overrides) {
        if (!overrides->isObject())
            raise(ErrorCode::Protocol,
                  "request field 'config' must be an object");
        for (const auto &[key, value] : overrides->object()) {
            if (key.find_first_of("=#\n\r") != std::string::npos)
                raise(ErrorCode::Protocol, "invalid config key '", key,
                      "'");
            text << key << " = ";
            if (value.isString()) {
                const std::string &s = value.str();
                if (s.find_first_of("#\n\r") != std::string::npos ||
                    s.empty())
                    raise(ErrorCode::Protocol,
                          "invalid config value for '", key, "'");
                text << s;
            } else if (value.isNumber()) {
                text << formatDouble(numberField(value, key.c_str()));
            } else {
                raise(ErrorCode::Protocol, "config value for '", key,
                      "' must be a number or string");
            }
            text << "\n";
        }
    }
    try {
        std::istringstream in(text.str());
        return core::parseSystemConfig(in);
    } catch (const FatalError &e) {
        // Unknown keys / malformed values are the client's fault.
        raise(ErrorCode::Protocol, "bad config override: ", e.what());
    }
}

void
appendTelemetry(std::string &out, const RequestTelemetry &t)
{
    out += "\"telemetry\":{\"queue_s\":";
    out += formatDouble(t.queueSeconds);
    out += ",\"solve_s\":";
    out += formatDouble(t.solveSeconds);
    out += ",\"service_s\":";
    out += formatDouble(t.serviceSeconds);
    out += ",\"dedup\":";
    out += t.dedup ? "true" : "false";
    out += "}";
}

} // namespace

const char *
toString(QueryType q)
{
    switch (q) {
    case QueryType::Steady:
        return "steady";
    case QueryType::Transient:
        return "transient";
    case QueryType::Boost:
        return "boost";
    case QueryType::Metrics:
        return "metrics";
    case QueryType::Health:
        return "health";
    }
    return "steady";
}

Request
parseRequest(const std::string &frame)
{
    if (frame.size() > kMaxFrameBytes)
        raise(ErrorCode::Protocol, "request frame of ", frame.size(),
              " bytes exceeds the ", kMaxFrameBytes, "-byte limit");
    const JsonValue root = parseJson(frame);
    if (!root.isObject())
        raise(ErrorCode::Protocol, "request must be a JSON object");

    // Catch client typos early: an unknown top-level field is a
    // protocol error, not silently ignored configuration.
    static const char *const known[] = {"id",      "query",   "config",
                                        "app",     "freqGHz", "steps",
                                        "dtSeconds", "procCapC",
                                        "dramCapC", "deadline_ms"};
    for (const auto &[key, value] : root.object()) {
        (void)value;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            raise(ErrorCode::Protocol, "unknown request field '", key,
                  "'");
    }

    Request req;
    if (const JsonValue *id = root.find("id")) {
        const double v = numberField(*id, "id");
        if (v < 0 || v != std::floor(v) || v > 1e15)
            raise(ErrorCode::Protocol,
                  "request field 'id' must be a non-negative integer");
        req.id = static_cast<std::uint64_t>(v);
    }
    const JsonValue *query = root.find("query");
    if (!query || !query->isString())
        raise(ErrorCode::Protocol,
              "request field 'query' (string) is required");
    req.query = queryFromString(query->str());

    req.config = configFromOverrides(root.find("config"));
    req.configText = core::formatSystemConfig(req.config);

    if (const JsonValue *app = root.find("app")) {
        if (!app->isString())
            raise(ErrorCode::Protocol,
                  "request field 'app' must be a string");
        req.app = app->str();
    }
    if (const JsonValue *freq = root.find("freqGHz")) {
        req.freqGHz = numberField(*freq, "freqGHz");
        if (req.freqGHz <= 0.0 || req.freqGHz > 100.0)
            raise(ErrorCode::Protocol,
                  "request field 'freqGHz' is out of range");
    }
    if (const JsonValue *steps = root.find("steps")) {
        const double v = numberField(*steps, "steps");
        if (v < 1 || v != std::floor(v) || v > 10000)
            raise(ErrorCode::Protocol,
                  "request field 'steps' must be an integer in [1, 10000]");
        req.steps = static_cast<int>(v);
    }
    if (const JsonValue *dt = root.find("dtSeconds")) {
        req.dtSeconds = numberField(*dt, "dtSeconds");
        if (req.dtSeconds <= 0.0 || req.dtSeconds > 1e3)
            raise(ErrorCode::Protocol,
                  "request field 'dtSeconds' is out of range");
    }
    if (const JsonValue *cap = root.find("procCapC"))
        req.procCapC = numberField(*cap, "procCapC");
    if (const JsonValue *cap = root.find("dramCapC"))
        req.dramCapC = numberField(*cap, "dramCapC");
    if (const JsonValue *dl = root.find("deadline_ms")) {
        req.deadlineMs = numberField(*dl, "deadline_ms");
        if (req.deadlineMs < 0.0 || req.deadlineMs > 1e9)
            raise(ErrorCode::Protocol,
                  "request field 'deadline_ms' is out of range");
    }

    if (req.query != QueryType::Metrics &&
        req.query != QueryType::Health && req.app.empty())
        raise(ErrorCode::Protocol, "request field 'app' is required for ",
              toString(req.query), " queries");
    return req;
}

std::string
scenarioKey(const Request &req)
{
    std::string key = toString(req.query);
    key += '|';
    key += req.app;
    key += '|';
    key += formatDouble(req.freqGHz);
    if (req.query == QueryType::Transient) {
        key += '|';
        key += std::to_string(req.steps);
        key += '|';
        key += formatDouble(req.dtSeconds);
    }
    if (req.query == QueryType::Boost) {
        key += '|';
        key += formatDouble(req.procCapC);
        key += '|';
        key += formatDouble(req.dramCapC);
    }
    key += '|';
    key += req.configText;
    return key;
}

std::string
formatOkResponse(const Request &req, const EvalSummary &s,
                 const RequestTelemetry &t)
{
    std::string out = "{\"id\":";
    out += std::to_string(req.id);
    out += ",\"ok\":true,\"query\":\"";
    out += toString(req.query);
    out += "\",\"procHotspotC\":";
    out += formatDouble(s.procHotspotC);
    out += ",\"dramBottomHotspotC\":";
    out += formatDouble(s.dramBottomHotspotC);
    out += ",\"procPowerW\":";
    out += formatDouble(s.procPowerW);
    out += ",\"dramPowerW\":";
    out += formatDouble(s.dramPowerW);
    out += ",\"simSeconds\":";
    out += formatDouble(s.simSeconds);
    out += ",\"coreHotspotC\":[";
    for (std::size_t i = 0; i < s.coreHotspotC.size(); ++i) {
        if (i)
            out += ',';
        out += formatDouble(s.coreHotspotC[i]);
    }
    out += "],\"cgIterations\":";
    out += std::to_string(s.cgIterations);
    out += ",\"converged\":";
    out += s.converged ? "true" : "false";
    out += ",\"escalation\":";
    out += std::to_string(s.escalation);
    if (req.query == QueryType::Boost) {
        out += ",\"feasible\":";
        out += s.feasible ? "true" : "false";
        out += ",\"freqGHz\":";
        out += formatDouble(s.freqGHz);
    }
    out += ',';
    appendTelemetry(out, t);
    out += '}';
    return out;
}

std::string
formatErrorResponse(std::uint64_t id, ErrorCode code,
                    const std::string &message)
{
    std::string out = "{\"id\":";
    out += std::to_string(id);
    out += ",\"ok\":false,\"error\":{\"code\":\"";
    out += xylem::toString(code);
    out += "\",\"message\":";
    appendJsonString(out, message);
    out += "}}";
    return out;
}

std::string
formatMetricsResponse(std::uint64_t id, const std::string &metrics_json)
{
    std::string out = "{\"id\":";
    out += std::to_string(id);
    out += ",\"ok\":true,\"query\":\"metrics\",\"metrics\":";
    out += metrics_json;
    out += '}';
    return out;
}

std::string
formatHealthResponse(std::uint64_t id, const HealthInfo &h)
{
    std::string out = "{\"id\":";
    out += std::to_string(id);
    out += ",\"ok\":true,\"query\":\"health\",\"ready\":";
    out += h.ready ? "true" : "false";
    out += ",\"accepting\":";
    out += h.accepting ? "true" : "false";
    out += ",\"queueDepth\":";
    out += std::to_string(h.queueDepth);
    out += ",\"workers\":";
    out += std::to_string(h.workers);
    out += ",\"stalledWorkers\":";
    out += std::to_string(h.stalledWorkers);
    out += ",\"inflight\":";
    out += std::to_string(h.inflight);
    out += ",\"oldestInflightSeconds\":";
    out += formatDouble(h.oldestInflightSeconds);
    out += ",\"residentSystems\":";
    out += std::to_string(h.residentSystems);
    out += ",\"uptimeSeconds\":";
    out += formatDouble(h.uptimeSeconds);
    out += ",\"journalLostPrevious\":";
    out += std::to_string(h.journalLostPrevious);
    out += '}';
    return out;
}

} // namespace xylem::service
