/**
 * @file
 * The simulation daemon: accepts newline-delimited JSON requests on a
 * Unix-domain or TCP listener (socket.hpp endpoint strings), runs them
 * through a bounded queue + worker pool on the Engine, and answers
 * each with one JSON line. The hardening below (write/idle timeouts,
 * fault injection, reset accounting) is transport-independent.
 *
 * Concurrency layout. One accept loop (the thread that calls run()),
 * one reader thread per connection, `workers` solver threads sharing
 * a bounded job queue. Admission control is immediate: a frame that
 * arrives while the queue is at capacity is answered with an
 * "overloaded" error at once instead of blocking the connection —
 * shedding over queueing keeps tail latency bounded and lets the
 * client decide to back off.
 *
 * Dedup / micro-batching. Workers coalesce requests whose
 * scenarioKey() matches an in-flight solve: the first becomes the
 * leader and computes, the rest park as followers and are answered
 * from the leader's result (counted in service.dedup_hits). Because
 * the engine clears warm-start state per request, a deduped response
 * is bit-identical to the solo one.
 *
 * Batch formation (DESIGN.md §15). A worker that picks up a Steady
 * job additionally drains the queued Steady jobs against the same
 * config text (up to the config's batch.maxRhs, when batch.enabled)
 * and answers them all through one Engine::runBatch multi-RHS block
 * solve. Distinct-scenario requests that previously serialised on the
 * resident system's lock now share one solve; jobs for other configs
 * or query kinds stay queued — a mixed burst splits, it never
 * cross-batches. Responses stay byte-identical (up to telemetry) to
 * serial serving because every batch column solves cold in lockstep.
 *
 * Graceful drain. requestStop() — or SIGINT/SIGTERM via the shared
 * ShutdownSignal — makes the accept loop exit, after which run():
 * closes the listener and unlinks the socket, joins the connection
 * readers (their poll slices observe the stop), lets the workers
 * drain every queued job (in-flight requests are answered, never
 * dropped), flushes telemetry, then closes the connections.
 *
 * End-to-end deadlines (DESIGN.md §16). A request carrying
 * deadline_ms gets an absolute budget stamped at admission. Work
 * whose budget has already expired is shed at worker pickup with the
 * typed "deadline-exceeded" error — distinct from "overloaded": one
 * says "you asked too late", the other "come back later". A live
 * budget propagates into the engine's cooperative TaskContext
 * deadline, bounding every solve attempt; and a response that would
 * arrive after the budget is answered deadline-exceeded rather than
 * pretending to be on time.
 *
 * Supervision. A watchdog thread heartbeats the workers: a worker
 * busy on one job past the stall threshold trips
 * watchdog.stalled_workers and fails readiness. The `health` verb is
 * answered inline (never queued — a wedged pool cannot block the
 * probe) with queue depth, in-flight ages, stalled workers, resident
 * systems, uptime, and the previous incarnation's journal losses.
 *
 * Crash safety. With a journal path set, admissions and answers are
 * journaled (service/journal.hpp); after a SIGKILL the restarted
 * daemon reports exactly which admitted requests were never
 * answered. Per-connection write timeouts and a mid-frame idle
 * timeout bound the damage any single slow or dead peer can do.
 */

#ifndef XYLEM_SERVICE_SERVER_HPP
#define XYLEM_SERVICE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/engine.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "service/socket.hpp"

namespace xylem::service {

struct ServerOptions
{
    /** Endpoint the daemon listens on: "unix:/path", "tcp:host:port"
     *  (port 0 binds ephemeral — read it back via boundEndpoint()),
     *  or a bare path as unix: shorthand. */
    std::string endpoint = "unix:/tmp/xylem.sock";
    /** Solver worker threads. */
    int workers = 2;
    /** Bounded queue depth; requests beyond it are shed. */
    std::size_t queueCapacity = 64;
    /** Engine policy (retry ladder, deadline, resident systems). */
    EngineOptions engine;
    /** Write Metrics::toJson() here on drain; empty disables. */
    std::string metricsJsonPath;
    /** Per-connection response write timeout; 0 waits forever. */
    double writeTimeoutSeconds = 10.0;
    /** A frame must complete within this many seconds of its first
     *  byte (slow-loris guard); 0 disables. Idle BETWEEN frames is
     *  legitimate keep-alive and is never timed out. */
    double idleTimeoutSeconds = 30.0;
    /** Watchdog heartbeat period. */
    double watchdogIntervalSeconds = 1.0;
    /** A worker busy on one job longer than this is stalled. */
    double stallThresholdSeconds = 30.0;
    /** Crash-safe request journal path; empty disables journaling. */
    std::string journalPath;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the listener and spawn the workers; after start() returns
     * clients can connect. Throws Error(Io) when the socket cannot be
     * bound. Idempotent.
     */
    void start();

    /**
     * Serve until a stop is requested (requestStop() or the process
     * shutdown signal), then drain and return 0. Runs the accept loop
     * on the calling thread; calls start() first if needed.
     */
    int run();

    /** Ask the accept loop to exit; run() then drains. Thread-safe. */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    const ServerOptions &options() const { return opts_; }

    /**
     * Canonical endpoint string the listener actually bound — for a
     * tcp:host:0 request this carries the kernel-assigned port. Valid
     * after start().
     */
    const std::string &boundEndpoint() const { return bound_endpoint_; }

  private:
    /** One client connection and its reader thread. */
    struct Connection
    {
        FdGuard fd;
        std::uint64_t id = 0;  ///< fault-injection decision id
        std::mutex writeMutex; ///< serialises response lines
        std::thread reader;
        std::atomic<bool> done{false}; ///< reader finished (reapable)
    };

    /** One admitted request waiting for (or holding) a worker. */
    struct Job
    {
        Request req;
        std::shared_ptr<Connection> conn;
        std::uint64_t seq = 0; ///< admission sequence (journal key)
        std::chrono::steady_clock::time_point admitted;
        /** Absolute end-to-end budget; default value = none. */
        std::chrono::steady_clock::time_point deadline{};
        double queueSeconds = 0.0; ///< set at worker pickup
        /**
         * Intra-solve thread override decided at worker pickup by the
         * load-adaptive policy (0 = none): shallow queue ⇒ the
         * engine's --solver-threads grant, deep queue ⇒ 1 (the
         * workers already saturate the cores). Never changes results.
         */
        int solverThreads = 0;
    };

    /** Followers parked on an in-flight identical solve. */
    struct Batch
    {
        std::vector<Job> followers;
        std::chrono::steady_clock::time_point started =
            std::chrono::steady_clock::now();
    };

    /** Watchdog heartbeat slot of one worker thread. */
    struct WorkerState
    {
        /** steady_clock ns when the current job was picked up;
         *  0 = idle. */
        std::atomic<std::uint64_t> busySinceNs{0};
        std::atomic<bool> stallCounted{false};
    };

    bool stopRequested() const;
    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::string &frame);
    void workerLoop(std::size_t index);
    void watchdogLoop();
    HealthInfo healthSnapshot();
    void process(Job job);
    /**
     * Serve a leader plus the same-config Steady jobs drained behind
     * it through one Engine::runBatch block solve; responses are
     * byte-identical (up to telemetry) to serving each serially.
     */
    void processBatch(std::vector<Job> jobs);
    void respond(const Job &job, bool ok, const EvalSummary &summary,
                 ErrorCode code, const std::string &message,
                 double solve_seconds, bool dedup);
    /** Returns false when the response could not be delivered. */
    bool writeLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);
    void reapConnections(bool join_all);
    void drain();

    ServerOptions opts_;
    Engine engine_;
    FdGuard listener_;
    Endpoint listen_endpoint_{};   ///< parsed from opts_.endpoint
    std::string bound_endpoint_;   ///< canonical form actually bound
    bool started_ = false;
    std::atomic<bool> stop_{false};
    std::atomic<bool> accepting_{false};
    std::chrono::steady_clock::time_point start_time_{};
    std::atomic<std::uint64_t> next_conn_id_{0};
    std::atomic<std::uint64_t> next_seq_{0};
    std::unique_ptr<RequestJournal> journal_;

    std::mutex connections_mutex_;
    std::vector<std::shared_ptr<Connection>> connections_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;
    bool workers_exit_ = false;
    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerState>> worker_states_;
    std::thread watchdog_;
    std::atomic<bool> watchdog_exit_{false};
    std::atomic<int> stalled_workers_{0};

    std::mutex inflight_mutex_;
    std::unordered_map<std::string, std::shared_ptr<Batch>> inflight_;
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_SERVER_HPP
