/**
 * @file
 * Shared client-side call logic for the simulation service: connect
 * to an endpoint (unix:/path or tcp:host:port), send one JSON request
 * line, read one JSON response line — with the reconnect/retry/
 * deadline-budget policy that xylem_client, perf_service, and the
 * scale-out frontend all need and previously duplicated.
 *
 * Retry policy. Transport failures (connect refused, peer closed the
 * connection, no frame back) and typed "overloaded" responses are the
 * two outcomes where the same request can legitimately succeed a
 * moment later; both are retried up to `retries` times with capped
 * exponential backoff whose jitter is a pure hash of (salt, attempt)
 * — deterministic, so runs are reproducible. Any other typed error
 * (protocol, config, solver, deadline-exceeded, unavailable) is
 * final: replaying it would answer identically.
 *
 * Deadline budget. With deadlineMs set, the budget is measured from
 * call() entry across ALL attempts (including backoff sleeps), every
 * attempt's frame is built with the budget REMAINING at that moment
 * (so the server never works past the point the caller gave up), and
 * the wait for a response aborts at the budget — BudgetExhausted,
 * never a hang.
 *
 * Connections. keepAlive reuses one connection across call()s (the
 * load generator's and the frontend pool's mode); any transport
 * failure discards it, because a request/response stream that lost
 * sync cannot be trusted to pair frames correctly again.
 */

#ifndef XYLEM_SERVICE_CLIENT_HPP
#define XYLEM_SERVICE_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/socket.hpp"

namespace xylem::service {

/**
 * Backoff before retry `attempt` (1-based): base·2^(attempt-1) ms,
 * capped, jittered to [0.75, 1.25)× by an FNV-1a hash of
 * (salt, attempt) — no RNG state, same delays every run.
 */
std::chrono::milliseconds backoffDelay(int attempt,
                                       std::uint64_t salt = 0,
                                       double base_ms = 50.0,
                                       double cap_ms = 1000.0);

struct ClientOptions
{
    /** Endpoint string: unix:/path, tcp:host:port, or a bare path. */
    std::string endpoint;
    /** Extra attempts after the first (total attempts = retries+1). */
    int retries = 0;
    /** End-to-end budget across all attempts; 0 = none. */
    double deadlineMs = 0.0;
    /** Jitter stream for backoffDelay (e.g. a client index). */
    std::uint64_t backoffSalt = 0;
    double backoffBaseMs = 50.0;
    double backoffCapMs = 1000.0;
    /** Reuse the connection across call()s; failures discard it. */
    bool keepAlive = false;
};

enum class CallStatus
{
    Ok,               ///< a response with "ok":true
    ErrorResponse,    ///< a typed error response (final, or overload
                      ///< that survived every retry)
    TransportFailure, ///< no response after all attempts
    BudgetExhausted,  ///< the deadline ran out before an answer
};

struct CallResult
{
    CallStatus status = CallStatus::TransportFailure;
    /** Raw response frame (newline stripped); empty if none arrived. */
    std::string line;
    /** error.code token when status == ErrorResponse. */
    std::string errorCode;
    /** Transport diagnosis when no response arrived. */
    std::string message;
    int attempts = 0;   ///< attempts made (>= 1 unless budget was gone)
    int retries = 0;    ///< re-sent requests (attempts - 1)
    int reconnects = 0; ///< connections re-established mid-call
};

class ServiceClient
{
  public:
    /** Parses the endpoint eagerly: a bad string is a Config error at
     *  construction, not at the first call. */
    explicit ServiceClient(ClientOptions opts);

    /**
     * Builds the frame for one attempt. `remainingMs` is the budget
     * left at that moment (0 when no deadline is set); the returned
     * frame need not be newline-terminated. Rebuilding per attempt is
     * what lets every retry carry the shrunken budget.
     */
    using FrameBuilder = std::function<std::string(double remainingMs)>;

    /** Send/receive with the full retry + budget policy. */
    CallResult call(const FrameBuilder &build);

    /**
     * Same, with a per-call budget overriding options().deadlineMs —
     * how the frontend spends each request's REMAINING budget on a
     * pooled connection whose options were fixed at construction.
     */
    CallResult call(const FrameBuilder &build, double deadline_ms);

    /** Fixed-frame convenience: the same bytes on every attempt. */
    CallResult call(const std::string &frame);

    /** Drop the kept-alive connection (next call reconnects). */
    void disconnect();

    bool connected() const { return fd_.valid(); }

    const ClientOptions &options() const { return opts_; }

  private:
    bool ensureConnected(std::string &error);

    ClientOptions opts_;
    Endpoint endpoint_;
    FdGuard fd_;
    std::unique_ptr<LineReader> reader_;
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_CLIENT_HPP
