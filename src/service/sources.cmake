set(XYLEM_SERVICE_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/json.cpp
    ${CMAKE_CURRENT_LIST_DIR}/protocol.cpp
    ${CMAKE_CURRENT_LIST_DIR}/socket.cpp
    ${CMAKE_CURRENT_LIST_DIR}/client.cpp
    ${CMAKE_CURRENT_LIST_DIR}/engine.cpp
    ${CMAKE_CURRENT_LIST_DIR}/journal.cpp
    ${CMAKE_CURRENT_LIST_DIR}/server.cpp)
