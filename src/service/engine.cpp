#include "service/engine.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/task_context.hpp"
#include "cpu/multicore.hpp"
#include "runtime/metrics.hpp"
#include "workloads/profile.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::service {

namespace {

void
fillFromEval(EvalSummary &out, const core::EvalResult &r)
{
    out.procHotspotC = r.procHotspot;
    out.dramBottomHotspotC = r.dramBottomHotspot;
    out.procPowerW = r.procPowerTotal;
    out.dramPowerW = r.dramPowerTotal;
    out.simSeconds = r.seconds;
    out.coreHotspotC = r.coreHotspot;
    out.cgIterations = r.cgIterations;
    out.converged = true;
}

} // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts)
{}

std::size_t
Engine::residentSystems() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return systems_.size();
}

std::shared_ptr<Engine::Slot>
Engine::slotFor(const Request &req)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = systems_.find(req.configText);
    if (it != systems_.end()) {
        lru_.remove(req.configText);
        lru_.push_front(req.configText);
        return it->second;
    }
    auto slot = std::make_shared<Slot>(req.config);
    systems_.emplace(req.configText, slot);
    lru_.push_front(req.configText);
    runtime::Metrics::global()
        .counter("service.systems_built")
        .increment();
    // Evict least-recently-used idle systems beyond the cap. A system
    // another worker still holds (use_count > 1) is skipped — the cap
    // may be exceeded transiently rather than invalidate a live solve.
    auto pos = lru_.end();
    while (systems_.size() > opts_.maxResidentSystems &&
           pos != lru_.begin()) {
        --pos;
        auto victim = systems_.find(*pos);
        if (*pos != req.configText && victim != systems_.end() &&
            victim->second.use_count() == 1) {
            systems_.erase(victim);
            pos = lru_.erase(pos);
            runtime::Metrics::global()
                .counter("service.systems_evicted")
                .increment();
        }
    }
    return slot;
}

EvalSummary
Engine::runOnce(const Request &req, core::StackSystem &system)
{
    const workloads::Profile *profile = nullptr;
    try {
        profile = &workloads::profileByName(req.app);
    } catch (const FatalError &e) {
        // Unknown workload is the client's mistake, not a solver
        // failure: surface it typed, outside the retry budget.
        raise(ErrorCode::Config, e.what());
    }

    const core::SystemConfig &cfg = system.config();
    EvalSummary out;
    switch (req.query) {
    case QueryType::Steady: {
        fillFromEval(out, system.evaluate(*profile, req.freqGHz));
        break;
    }
    case QueryType::Boost: {
        const double proc_cap =
            req.procCapC > 0.0 ? req.procCapC : cfg.tjMaxProc;
        const double dram_cap =
            req.dramCapC > 0.0 ? req.dramCapC : cfg.tMaxDram;
        core::BoostResult boost =
            system.maxUniformFrequency(*profile, proc_cap, dram_cap);
        fillFromEval(out, boost.eval);
        out.feasible = boost.feasible;
        out.freqGHz = boost.freqGHz;
        break;
    }
    case QueryType::Transient: {
        const std::vector<double> freqs(
            static_cast<std::size_t>(cfg.cpu.numCores), req.freqGHz);
        cpu::MulticoreConfig sim_cfg = cfg.cpu;
        sim_cfg.coreFreqGHz = freqs;
        const core::SimResultPtr sim = core::cachedSimulate(
            sim_cfg, cpu::allCoresRunning(*profile, cfg.cpu.numCores));
        const thermal::PowerMap map = system.powerMapFor(*sim, freqs);

        const thermal::GridModel &model = system.thermalModel();
        thermal::TemperatureField field = model.ambientField();
        thermal::SolveStats stats;
        for (int step = 0; step < req.steps; ++step) {
            field = model.stepTransient(field, map, req.dtSeconds,
                                        &stats);
            out.cgIterations += stats.iterations;
            out.converged = out.converged && stats.converged;
        }
        const stack::BuiltStack &layers = system.builtStack();
        out.procHotspotC = field.maxOfLayer(
            static_cast<std::size_t>(layers.procMetal));
        if (!layers.dramMetal.empty())
            out.dramBottomHotspotC = field.maxOfLayer(
                static_cast<std::size_t>(layers.dramMetal.front()));
        out.procPowerW =
            system.powerModel().procPower(*sim, freqs).total();
        out.dramPowerW = sim->dramAveragePowerW();
        out.simSeconds = sim->seconds;
        break;
    }
    case QueryType::Metrics:
    case QueryType::Health:
        raise(ErrorCode::Protocol,
              "metrics/health queries are answered by the server, not "
              "the engine");
    }
    return out;
}

TaskContext
Engine::contextForRung(int rung, Deadline deadline,
                       int solverThreads) const
{
    TaskContext ctx;
    ctx.escalation = rung;
    ctx.strictSolver = opts_.maxRetries > 0;
    ctx.solverThreads = solverThreads;
    if (opts_.taskTimeoutSeconds > 0.0) {
        ctx.hasDeadline = true;
        ctx.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               opts_.taskTimeoutSeconds));
    }
    // The request's end-to-end budget tightens (never loosens) the
    // per-rung cooperative timeout.
    if (deadline != Deadline{} &&
        (!ctx.hasDeadline || deadline < ctx.deadline)) {
        ctx.hasDeadline = true;
        ctx.deadline = deadline;
    }
    return ctx;
}

EvalSummary
Engine::run(const Request &req, Deadline deadline, int solverThreads)
{
    auto slot = slotFor(req);
    std::lock_guard<std::mutex> guard(slot->mutex);
    return runLadder(req, *slot, deadline, solverThreads);
}

EvalSummary
Engine::runLadder(const Request &req, Slot &slot, Deadline deadline,
                  int solverThreads)
{
    auto &retries = runtime::Metrics::global().counter("service.retries");
    auto &escalations =
        runtime::Metrics::global().counter("service.escalations");
    const bool resilient = opts_.maxRetries > 0;
    const auto budget_gone = [&] {
        return deadline != Deadline{} &&
               std::chrono::steady_clock::now() >= deadline;
    };
    int rung = 0;
    int retries_left = opts_.maxRetries;
    for (;;) {
        if (budget_gone())
            raise(ErrorCode::DeadlineExceeded,
                  "request deadline expired before attempt at rung ",
                  rung);
        try {
            TaskContext ctx = contextForRung(rung, deadline, solverThreads);
            ScopedTaskContext scope(ctx);
            // Determinism contract: never inherit a warm start from a
            // previous request, so this response is bit-identical to
            // the same query run cold in a batch binary.
            slot.system.clearWarmStart();
            EvalSummary out = runOnce(req, slot.system);
            out.escalation = rung;
            return out;
        } catch (const Error &e) {
            // A DeadlineExceeded caused by the REQUEST budget running
            // out ends the ladder: escalating would spend time the
            // client no longer has. Only a per-rung timeout (budget
            // still remaining) earns another rung.
            if (e.code() == ErrorCode::DeadlineExceeded && budget_gone())
                throw;
            const bool escalatable =
                e.code() == ErrorCode::SolverNonConvergence ||
                e.code() == ErrorCode::SolverBreakdown ||
                e.code() == ErrorCode::DeadlineExceeded;
            if (resilient && escalatable && rung < kMaxEscalation) {
                ++rung;
                escalations.increment();
                continue;
            }
            // Client mistakes replay identically; don't burn retries.
            const bool deterministic_client_error =
                e.code() == ErrorCode::Config ||
                e.code() == ErrorCode::Protocol;
            if (resilient && !escalatable &&
                !deterministic_client_error && retries_left > 0) {
                --retries_left;
                retries.increment();
                continue;
            }
            throw;
        }
    }
}

std::vector<Engine::BatchOutcome>
Engine::runBatch(const std::vector<const Request *> &reqs,
                 const std::vector<Deadline> &deadlines,
                 int solverThreads)
{
    std::vector<BatchOutcome> out(reqs.size());
    if (reqs.empty())
        return out;
    XYLEM_ASSERT(reqs.size() <= thermal::kMaxBatchRhs,
                 "runBatch: ", reqs.size(),
                 " requests exceed the block-solve limit of ",
                 thermal::kMaxBatchRhs);
    XYLEM_ASSERT(deadlines.empty() || deadlines.size() == reqs.size(),
                 "runBatch: deadlines must be empty or positional");
    const auto deadline_of = [&](std::size_t i) {
        return i < deadlines.size() ? deadlines[i] : Deadline{};
    };
    // The member with the least budget decides when the shared block
    // attempt gives up; each member keeps its own deadline for the
    // fallback ladder.
    Deadline block_deadline{};
    for (std::size_t i = 0; i < deadlines.size(); ++i)
        if (deadlines[i] != Deadline{} &&
            (block_deadline == Deadline{} ||
             deadlines[i] < block_deadline))
            block_deadline = deadlines[i];
    auto slot = slotFor(*reqs.front());
    std::lock_guard<std::mutex> guard(slot->mutex);
    auto &metrics = runtime::Metrics::global();

    // Per-request validation up front: a bad app name is that one
    // request's typed Config error, never the batch's.
    std::vector<core::StackSystem::SteadyItem> items;
    std::vector<std::size_t> live; // outcome index of each item
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const Request &req = *reqs[i];
        XYLEM_ASSERT(req.query == QueryType::Steady,
                     "runBatch: only Steady queries batch");
        XYLEM_ASSERT(req.configText == reqs.front()->configText,
                     "runBatch: mixed configs in one batch");
        try {
            items.push_back(
                {&workloads::profileByName(req.app), req.freqGHz});
            live.push_back(i);
        } catch (const FatalError &e) {
            out[i].ok = false;
            out[i].code = ErrorCode::Config;
            out[i].message = e.what();
        }
    }
    if (items.empty())
        return out;

    // Fast path: the whole batch through one block solve on the
    // ladder's first rung (strict, so a non-converged column raises
    // instead of silently returning a bad field).
    try {
        TaskContext ctx =
            contextForRung(0, block_deadline, solverThreads);
        ScopedTaskContext scope(ctx);
        slot->system.clearWarmStart();
        std::vector<core::EvalResult> evals =
            slot->system.evaluateSteadyBatch(items);
        metrics.counter("service.batch_solves").increment();
        metrics.counter("service.batched_requests")
            .add(static_cast<std::uint64_t>(items.size()));
        for (std::size_t j = 0; j < live.size(); ++j) {
            BatchOutcome &o = out[live[j]];
            fillFromEval(o.summary, evals[j]);
            o.summary.escalation = 0;
            o.ok = true;
        }
        return out;
    } catch (const Error &) {
        metrics.counter("service.batch_fallbacks").increment();
    } catch (const std::exception &) {
        metrics.counter("service.batch_fallbacks").increment();
    }

    // Fallback: the full per-request resilience ladder, serially —
    // escalation/retry semantics identical to solo run(), and one
    // pathological member cannot take healthy ones down with it.
    for (const std::size_t i : live) {
        try {
            out[i].summary = runLadder(*reqs[i], *slot, deadline_of(i),
                                       solverThreads);
            out[i].ok = true;
        } catch (const Error &e) {
            out[i].ok = false;
            out[i].code = e.code();
            out[i].message = e.what();
        } catch (const std::exception &e) {
            out[i].ok = false;
            out[i].code = ErrorCode::Unknown;
            out[i].message = e.what();
        }
    }
    return out;
}

} // namespace xylem::service
