#include "service/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"

namespace xylem::service {

namespace {

constexpr std::uint32_t kAdmitted = 1;
constexpr std::uint32_t kAnswered = 2;
/** Sanity cap on one record's payload: a scenario key is bounded by
 *  the frame cap, so anything larger is a torn/garbage length. */
constexpr std::uint32_t kMaxPayload = 2u << 20;

std::vector<std::uint8_t>
readWholeFile(int fd)
{
    std::vector<std::uint8_t> bytes;
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            raise(ErrorCode::Io, "journal read: ", std::strerror(errno));
        }
        if (n == 0)
            return bytes;
        bytes.insert(bytes.end(), chunk, chunk + n);
    }
}

JournalRecovery
scanBytes(const std::vector<std::uint8_t> &bytes)
{
    JournalRecovery out;
    // seq -> (id, scenario) of admitted-but-not-yet-answered requests.
    std::map<std::uint64_t, std::pair<std::uint64_t, std::string>> open;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        runtime::BinaryReader header(bytes.data() + pos,
                                     bytes.size() - pos);
        std::uint32_t len = 0;
        std::uint64_t hash = 0;
        try {
            len = header.u32();
            hash = header.u64();
        } catch (const runtime::SerializeError &) {
            out.tornTail = true; // half-written header at the tail
            break;
        }
        const std::size_t payload_at = pos + sizeof len + sizeof hash;
        if (len > kMaxPayload || payload_at + len > bytes.size()) {
            out.tornTail = true; // length points past the file
            break;
        }
        const std::uint8_t *payload = bytes.data() + payload_at;
        if (runtime::DiskCache::fnv1a(payload, len) != hash) {
            out.tornTail = true; // torn payload
            break;
        }
        try {
            runtime::BinaryReader rec(payload, len);
            const std::uint32_t kind = rec.u32();
            const std::uint64_t seq = rec.u64();
            const std::uint64_t id = rec.u64();
            if (kind == kAdmitted) {
                ++out.admitted;
                open[seq] = {id, rec.str()};
            } else if (kind == kAnswered) {
                ++out.answered;
                open.erase(seq);
            }
            // Unknown kinds are skipped: the hash already proved the
            // record intact, so this is a future version's record,
            // not corruption.
        } catch (const runtime::SerializeError &) {
            out.tornTail = true;
            break;
        }
        pos = payload_at + len;
    }
    for (auto &[seq, rest] : open)
        out.lost.push_back({seq, rest.first, std::move(rest.second)});
    return out;
}

} // namespace

JournalRecovery
RequestJournal::scan(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT)
            return {};
        raise(ErrorCode::Io, "journal open('", path, "'): ",
              std::strerror(errno));
    }
    std::vector<std::uint8_t> bytes;
    try {
        bytes = readWholeFile(fd);
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return scanBytes(bytes);
}

RequestJournal::RequestJournal(const std::string &path)
{
    recovery_ = scan(path);
    // Fresh epoch: the previous incarnation's accounting now lives in
    // recovery_; O_TRUNC keeps the file from growing across restarts.
    fd_ = ::open(path.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        raise(ErrorCode::Io, "journal open('", path, "'): ",
              std::strerror(errno));
    if (!recovery_.lost.empty())
        runtime::Metrics::global()
            .counter("service.journal_lost")
            .add(recovery_.lost.size());
}

RequestJournal::~RequestJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
RequestJournal::append(const std::vector<std::uint8_t> &payload)
{
    runtime::BinaryWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u64(runtime::DiskCache::fnv1a(payload.data(), payload.size()));
    std::vector<std::uint8_t> bytes = frame.take();
    bytes.insert(bytes.end(), payload.begin(), payload.end());

    // One write(2) per record: O_APPEND makes the offset update and
    // the data atomic with respect to other appenders, and a SIGKILL
    // can only ever leave the final record torn, never reorder them.
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd_, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // A full disk must not take the serving path down; the
            // journal degrades to best-effort and says so.
            runtime::Metrics::global()
                .counter("service.journal_write_errors")
                .increment();
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void
RequestJournal::recordAdmitted(std::uint64_t seq, std::uint64_t id,
                               const std::string &scenario)
{
    runtime::BinaryWriter w;
    w.u32(kAdmitted);
    w.u64(seq);
    w.u64(id);
    w.str(scenario);
    append(w.bytes());
}

void
RequestJournal::recordAnswered(std::uint64_t seq, std::uint64_t id)
{
    runtime::BinaryWriter w;
    w.u32(kAnswered);
    w.u64(seq);
    w.u64(id);
    append(w.bytes());
}

} // namespace xylem::service
