#include "service/client.hpp"

#include <thread>
#include <utility>

#include "common/error.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace xylem::service {

std::chrono::milliseconds
backoffDelay(int attempt, std::uint64_t salt, double base_ms,
             double cap_ms)
{
    double ms = base_ms;
    for (int i = 1; i < attempt && ms < cap_ms; ++i)
        ms *= 2.0;
    if (ms > cap_ms)
        ms = cap_ms;
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ salt) * 0x100000001b3ull;
    h = (h ^ static_cast<std::uint64_t>(attempt)) * 0x100000001b3ull;
    h ^= h >> 33;
    const double jitter =
        0.75 + 0.5 * static_cast<double>(h % 1024) / 1024.0;
    return std::chrono::milliseconds(
        static_cast<long>(ms * jitter + 0.5));
}

ServiceClient::ServiceClient(ClientOptions opts)
    : opts_(std::move(opts)), endpoint_(parseEndpoint(opts_.endpoint))
{}

void
ServiceClient::disconnect()
{
    reader_.reset();
    fd_.reset();
}

bool
ServiceClient::ensureConnected(std::string &error)
{
    if (fd_.valid())
        return true;
    try {
        fd_ = connectEndpoint(endpoint_);
        reader_ =
            std::make_unique<LineReader>(fd_.get(), kMaxFrameBytes);
        return true;
    } catch (const Error &e) {
        error = e.what();
        disconnect();
        return false;
    }
}

CallResult
ServiceClient::call(const std::string &frame)
{
    return call([&frame](double) { return frame; });
}

CallResult
ServiceClient::call(const FrameBuilder &build)
{
    return call(build, opts_.deadlineMs);
}

CallResult
ServiceClient::call(const FrameBuilder &build, double deadline_ms)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    const auto remaining_ms = [&]() -> double {
        if (deadline_ms <= 0.0)
            return 0.0; // no budget: remaining is "unlimited"
        const double spent =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start)
                .count();
        return deadline_ms - spent;
    };
    const auto budget_gone = [&] {
        return deadline_ms > 0.0 && remaining_ms() <= 0.0;
    };

    CallResult result;
    bool lost_connection = false; // a success after this = reconnect
    for (int attempt = 0; attempt <= opts_.retries; ++attempt) {
        if (attempt > 0) {
            ++result.retries;
            auto delay =
                backoffDelay(attempt, opts_.backoffSalt,
                             opts_.backoffBaseMs, opts_.backoffCapMs);
            if (deadline_ms > 0.0) {
                const double left = remaining_ms();
                if (left <= 0.0)
                    break;
                if (std::chrono::duration<double, std::milli>(delay)
                        .count() > left)
                    delay = std::chrono::milliseconds(
                        static_cast<long>(left));
            }
            std::this_thread::sleep_for(delay);
        }
        if (budget_gone())
            break;
        std::string connect_error;
        if (!ensureConnected(connect_error)) {
            result.message = connect_error;
            lost_connection = true;
            continue; // daemon down or restarting: back off, retry
        }
        if (lost_connection) {
            ++result.reconnects;
            lost_connection = false;
        }
        ++result.attempts;

        std::string frame = build(remaining_ms());
        if (frame.empty() || frame.back() != '\n')
            frame += '\n';
        std::string line;
        bool transport_ok = sendAll(fd_.get(), frame);
        if (transport_ok) {
            const ReadStatus status =
                reader_->next(line, [&] { return budget_gone(); });
            if (status == ReadStatus::Stopped) {
                // The budget expired while waiting; the stream may
                // still deliver that response later, so the
                // connection cannot be reused for the next request.
                disconnect();
                result.status = CallStatus::BudgetExhausted;
                result.message = "deadline expired awaiting response";
                return result;
            }
            transport_ok = status == ReadStatus::Frame;
        }
        if (!transport_ok) {
            // Send failed or the peer closed/reset mid-read: the
            // connection lost frame sync and must be rebuilt.
            disconnect();
            lost_connection = true;
            result.message = "connection lost before a response";
            continue;
        }

        result.line = line;
        JsonValue response;
        try {
            response = parseJson(line);
        } catch (const std::exception &e) {
            // A frame that is not JSON means the stream is corrupt.
            disconnect();
            lost_connection = true;
            result.line.clear();
            result.message =
                std::string("malformed response frame: ") + e.what();
            continue;
        }
        const JsonValue *ok = response.find("ok");
        if (ok && ok->isBoolean() && ok->boolean()) {
            result.status = CallStatus::Ok;
            result.errorCode.clear();
            if (!opts_.keepAlive)
                disconnect();
            return result;
        }
        result.status = CallStatus::ErrorResponse;
        result.errorCode.clear();
        if (const JsonValue *err = response.find("error"))
            if (const JsonValue *code = err->find("code"))
                if (code->isString())
                    result.errorCode = code->str();
        if (result.errorCode == toString(ErrorCode::Overloaded) &&
            attempt < opts_.retries)
            continue; // typed shed: worth another try after backoff
        if (!opts_.keepAlive)
            disconnect();
        return result; // typed error (or overload out of retries)
    }

    if (result.status == CallStatus::TransportFailure && budget_gone())
        result.status = CallStatus::BudgetExhausted;
    if (result.message.empty())
        result.message = budget_gone() ? "deadline expired"
                                       : "no response from "
                                             + endpoint_.str();
    if (!opts_.keepAlive)
        disconnect();
    return result;
}

} // namespace xylem::service
