#include "service/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace xylem::service {

namespace {

/** Parser recursion bound: deeper nesting is hostile, not data. */
constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        skipWhitespace();
        JsonValue v = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        raise(ErrorCode::Protocol, "invalid JSON at byte ", pos_, ": ",
              what);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char
    next()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void
    expect(char c)
    {
        if (atEnd() || peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    expectLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            fail("invalid literal");
        pos_ += lit.size();
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        if (atEnd())
            fail("unexpected end of input");
        switch (peek()) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return JsonValue(parseString());
        case 't':
            expectLiteral("true");
            return JsonValue(true);
        case 'f':
            expectLiteral("false");
            return JsonValue(false);
        case 'n':
            expectLiteral("null");
            return JsonValue();
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue::Object obj;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return JsonValue(std::move(obj));
        }
        for (;;) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            skipWhitespace();
            // Duplicate keys: last one wins (the common convention).
            obj[std::move(key)] = parseValue(depth + 1);
            skipWhitespace();
            const char c = next();
            if (c == '}')
                return JsonValue(std::move(obj));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue::Array arr;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return JsonValue(std::move(arr));
        }
        for (;;) {
            skipWhitespace();
            arr.push_back(parseValue(depth + 1));
            skipWhitespace();
            const char c = next();
            if (c == ']')
                return JsonValue(std::move(arr));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    int
    hexDigit()
    {
        const char c = next();
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fail("invalid \\u escape digit");
    }

    unsigned
    parseHex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i)
            v = v * 16 + static_cast<unsigned>(hexDigit());
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a low surrogate must follow.
                    if (next() != '\\' || next() != 'u')
                        fail("unpaired UTF-16 surrogate");
                    const unsigned lo = parseHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired UTF-16 surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (!atEnd() && peek() >= '0' && peek() <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        // JSON grammar: int part is 0 or [1-9][0-9]*.
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("invalid number");
        if (peek() == '0') {
            ++pos_;
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                fail("leading zero in number");
        } else {
            digits();
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (digits() == 0)
                fail("missing digits after decimal point");
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (digits() == 0)
                fail("missing exponent digits");
        }
        const std::string token(text_.substr(start, pos_ - start));
        // The token already matches the JSON grammar; strtod consumes
        // exactly it. Out-of-range values clamp to ±inf, which the
        // protocol layer rejects with a range check where it matters.
        const double v = std::strtod(token.c_str(), nullptr);
        return JsonValue(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

[[noreturn]] void
typeMismatch(const char *wanted)
{
    raise(ErrorCode::Protocol, "JSON value is not ", wanted);
}

} // namespace

bool
JsonValue::boolean() const
{
    if (type_ != Type::Boolean)
        typeMismatch("a boolean");
    return bool_;
}

double
JsonValue::number() const
{
    if (type_ != Type::Number)
        typeMismatch("a number");
    return number_;
}

const std::string &
JsonValue::str() const
{
    if (type_ != Type::String)
        typeMismatch("a string");
    return string_;
}

const JsonValue::Array &
JsonValue::array() const
{
    if (type_ != Type::Array)
        typeMismatch("an array");
    return array_;
}

const JsonValue::Object &
JsonValue::object() const
{
    if (type_ != Type::Object)
        typeMismatch("an object");
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Boolean:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number:
        out += formatDouble(number_);
        break;
    case Type::String:
        appendJsonString(out, string_);
        break;
    case Type::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &v : array_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
    }
    case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, v] : object_) {
            if (!first)
                out += ',';
            first = false;
            appendJsonString(out, key);
            out += ':';
            v.dumpTo(out);
        }
        out += '}';
        break;
    }
    }
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

std::string
formatDouble(double v)
{
    // JSON has no inf/nan literals; emit null (never produced by the
    // solver on the happy path, but a response must stay parseable).
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace xylem::service
