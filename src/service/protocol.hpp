/**
 * @file
 * Wire protocol of the thermal simulation service (xylem_serve).
 *
 * Transport: a local SOCK_STREAM Unix-domain socket carrying
 * newline-delimited JSON — one request object per line from the
 * client, one response object per line from the server. Frames are
 * capped at kMaxFrameBytes; responses to one connection may arrive
 * out of order (requests are matched by `id`, chosen by the client).
 *
 * Request object:
 *   id        number   client-chosen correlation id (default 0)
 *   query     string   "steady" | "transient" | "boost" | "metrics" |
 *                      "health"
 *   config    object   optional SystemConfig overrides; keys are
 *                      exactly the config_io keys ("scheme",
 *                      "gridNx", "ambientCelsius", ...), values are
 *                      numbers or strings. Unknown keys are a
 *                      protocol error.
 *   app       string   workload profile name (e.g. "FFT"); required
 *                      for steady/transient/boost
 *   freqGHz   number   uniform core frequency (default 2.4); ignored
 *                      by boost
 *   steps     number   transient only: implicit-Euler steps from
 *                      ambient (default 1)
 *   dtSeconds number   transient only: step size (default 1e-3)
 *   procCapC  number   boost only: processor cap (default tjMaxProc)
 *   dramCapC  number   boost only: DRAM cap (default tMaxDram)
 *   deadline_ms number end-to-end deadline budget in milliseconds,
 *                      measured from server-side admission (0 = no
 *                      deadline). Work that cannot finish inside the
 *                      budget is answered with the typed
 *                      "deadline-exceeded" error — distinct from
 *                      "overloaded" — in bounded time.
 *
 * Response object (ok): {"id":..,"ok":true,"query":..., results...,
 * "telemetry":{...}}; see protocol.cpp formatters for the exact
 * fields. All doubles round-trip bit-exactly (shortest to_chars), so
 * a served temperature equals the batch-mode double bit for bit.
 *
 * Response object (error):
 *   {"id":..,"ok":false,"error":{"code":"protocol","message":"..."}}
 * where code is the ErrorCode token — a malformed frame, an unknown
 * query type, an over-capacity queue ("overloaded"), or a failed
 * solve each map to their own code and never tear down the server.
 */

#ifndef XYLEM_SERVICE_PROTOCOL_HPP
#define XYLEM_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "thermal/grid_model.hpp"
#include "xylem/system.hpp"

namespace xylem::service {

/** Hard cap on one request/response line (admission control). */
constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class QueryType
{
    Steady,    ///< steady-state evaluate at (app, freq)
    Transient, ///< N implicit-Euler steps from ambient
    Boost,     ///< max uniform frequency under the temperature caps
    Metrics,   ///< server telemetry snapshot (never queued)
    Health,    ///< liveness/readiness probe (never queued)
};

const char *toString(QueryType q);

/** A parsed, validated simulation request. */
struct Request
{
    std::uint64_t id = 0;
    QueryType query = QueryType::Steady;
    /** Full effective SystemConfig (defaults + overrides). */
    core::SystemConfig config;
    /**
     * Canonical formatSystemConfig() text of `config`: the system
     * cache key and the config part of the dedup scenario key.
     */
    std::string configText;
    std::string app;
    double freqGHz = 2.4;
    int steps = 1;
    double dtSeconds = 1e-3;
    double procCapC = 0.0; ///< 0 = config.tjMaxProc
    double dramCapC = 0.0; ///< 0 = config.tMaxDram
    /**
     * End-to-end budget in ms from admission (0 = none). Not part of
     * the scenario key: the deadline changes when an answer is still
     * useful, never what the answer is.
     */
    double deadlineMs = 0.0;
};

/**
 * Parse one request frame. Throws Error(Protocol) on malformed JSON,
 * wrong field types, unknown query types, unknown config keys, or
 * out-of-range values.
 */
Request parseRequest(const std::string &frame);

/**
 * Canonical identity of the simulation a request asks for: requests
 * with equal keys are satisfied by one solve (dedup/micro-batching)
 * and must produce bit-identical results.
 */
std::string scenarioKey(const Request &req);

/** Scalar results of one query (the response payload). */
struct EvalSummary
{
    double procHotspotC = 0.0;
    double dramBottomHotspotC = 0.0;
    double procPowerW = 0.0;
    double dramPowerW = 0.0;
    double simSeconds = 0.0;
    std::vector<double> coreHotspotC;
    int cgIterations = 0;
    bool converged = true;
    int escalation = 0; ///< resilience-ladder rung that produced it
    // Boost only.
    bool feasible = false;
    double freqGHz = 0.0;
};

/** Per-request service telemetry echoed in the response. */
struct RequestTelemetry
{
    double queueSeconds = 0.0;   ///< admission -> worker pickup
    double solveSeconds = 0.0;   ///< engine compute time
    double serviceSeconds = 0.0; ///< admission -> response write
    bool dedup = false;          ///< satisfied by another request's solve
};

std::string formatOkResponse(const Request &req, const EvalSummary &s,
                             const RequestTelemetry &t);
std::string formatErrorResponse(std::uint64_t id, ErrorCode code,
                                const std::string &message);
/** `metrics_json` must already be valid JSON (Metrics::toJson()). */
std::string formatMetricsResponse(std::uint64_t id,
                                  const std::string &metrics_json);

/** Snapshot answered by the `health` verb (served inline, never
 *  queued — a wedged worker pool cannot block the probe). */
struct HealthInfo
{
    bool ready = false; ///< accepting and no worker is stalled
    bool accepting = false;
    std::size_t queueDepth = 0;
    int workers = 0;
    int stalledWorkers = 0;
    std::size_t inflight = 0; ///< distinct scenarios being solved
    double oldestInflightSeconds = 0.0;
    std::size_t residentSystems = 0;
    double uptimeSeconds = 0.0;
    /** Admitted-but-unanswered requests a previous incarnation lost
     *  (recovered from the request journal at startup). */
    std::size_t journalLostPrevious = 0;
};

std::string formatHealthResponse(std::uint64_t id, const HealthInfo &h);

} // namespace xylem::service

#endif // XYLEM_SERVICE_PROTOCOL_HPP
