#include "service/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace xylem::service {

namespace {

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path)
        raise(ErrorCode::Config, "socket path '", path,
              "' is empty or exceeds ", sizeof addr.sun_path - 1,
              " bytes");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** Resolve host:port to an IPv4 stream address via getaddrinfo. */
sockaddr_in
tcpAddress(const std::string &host, int port)
{
    addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr)
        raise(ErrorCode::Io, "resolve('", host, "'): ",
              rc != 0 ? ::gai_strerror(rc) : "no addresses");
    sockaddr_in addr = {};
    std::memcpy(&addr, res->ai_addr,
                std::min(sizeof addr,
                         static_cast<std::size_t>(res->ai_addrlen)));
    ::freeaddrinfo(res);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return addr;
}

} // namespace

void
FdGuard::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

FdGuard
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        raise(ErrorCode::Io, "socket(): ", std::strerror(errno));
    // A previous daemon instance may have left its socket file behind;
    // binding over it needs the unlink (ignore ENOENT).
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0)
        raise(ErrorCode::Io, "bind('", path, "'): ",
              std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        raise(ErrorCode::Io, "listen('", path, "'): ",
              std::strerror(errno));
    return fd;
}

FdGuard
connectUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        raise(ErrorCode::Io, "socket(): ", std::strerror(errno));
    for (;;) {
        if (::connect(fd.get(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        if (errno != EINTR)
            raise(ErrorCode::Io, "connect('", path, "'): ",
                  std::strerror(errno));
    }
}

std::string
Endpoint::str() const
{
    if (kind == TransportKind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

std::size_t
maxUnixPathBytes()
{
    return sizeof(sockaddr_un{}.sun_path) - 1;
}

Endpoint
parseEndpoint(const std::string &text)
{
    Endpoint ep;
    std::string rest;
    if (text.rfind("unix:", 0) == 0) {
        ep.kind = TransportKind::Unix;
        rest = text.substr(5);
    } else if (text.rfind("tcp:", 0) == 0) {
        ep.kind = TransportKind::Tcp;
        rest = text.substr(4);
    } else if (text.find(':') == std::string::npos) {
        // Bare path: shorthand for unix: (pre-TCP endpoint strings).
        ep.kind = TransportKind::Unix;
        rest = text;
    } else {
        raise(ErrorCode::Config, "endpoint '", text,
              "' has an unknown scheme (want unix:PATH, tcp:HOST:PORT, "
              "or a bare socket path)");
    }

    if (ep.kind == TransportKind::Unix) {
        if (rest.empty())
            raise(ErrorCode::Config, "endpoint '", text,
                  "' names an empty socket path");
        if (rest.size() > maxUnixPathBytes())
            raise(ErrorCode::Config, "endpoint '", text, "' path is ",
                  rest.size(), " bytes; sun_path holds at most ",
                  maxUnixPathBytes(),
                  " (the kernel would silently truncate it)");
        ep.path = rest;
        return ep;
    }

    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size())
        raise(ErrorCode::Config, "endpoint '", text,
              "' is not tcp:HOST:PORT");
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.find_first_not_of("0123456789") != std::string::npos)
        raise(ErrorCode::Config, "endpoint '", text, "' port '",
              port_text, "' is not a number");
    errno = 0;
    char *end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (errno != 0 || end == port_text.c_str() || port < 0 ||
        port > 65535)
        raise(ErrorCode::Config, "endpoint '", text, "' port '",
              port_text, "' is outside 0..65535");
    ep.port = static_cast<int>(port);
    return ep;
}

FdGuard
listenEndpoint(const Endpoint &ep, int backlog)
{
    if (ep.kind == TransportKind::Unix)
        return listenUnix(ep.path, backlog);
    const sockaddr_in addr = tcpAddress(ep.host, ep.port);
    FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        raise(ErrorCode::Io, "socket(): ", std::strerror(errno));
    // Restarted daemons must not trip over TIME_WAIT remnants.
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0)
        raise(ErrorCode::Io, "bind('", ep.str(), "'): ",
              std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        raise(ErrorCode::Io, "listen('", ep.str(), "'): ",
              std::strerror(errno));
    return fd;
}

FdGuard
connectEndpoint(const Endpoint &ep)
{
    if (ep.kind == TransportKind::Unix)
        return connectUnix(ep.path);
    const sockaddr_in addr = tcpAddress(ep.host, ep.port);
    FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        raise(ErrorCode::Io, "socket(): ", std::strerror(errno));
    for (;;) {
        if (::connect(fd.get(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            setTcpNoDelay(fd.get());
            return fd;
        }
        if (errno != EINTR)
            raise(ErrorCode::Io, "connect('", ep.str(), "'): ",
                  std::strerror(errno));
    }
}

FdGuard
connectEndpoint(const std::string &endpoint)
{
    return connectEndpoint(parseEndpoint(endpoint));
}

Endpoint
boundEndpoint(const FdGuard &listener, const Endpoint &configured)
{
    if (configured.kind == TransportKind::Unix)
        return configured;
    sockaddr_in addr = {};
    socklen_t len = sizeof addr;
    if (::getsockname(listener.get(),
                      reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        raise(ErrorCode::Io, "getsockname('", configured.str(),
              "'): ", std::strerror(errno));
    Endpoint ep = configured;
    ep.port = static_cast<int>(ntohs(addr.sin_port));
    return ep;
}

void
setTcpNoDelay(int fd)
{
    const int one = 1;
    // EOPNOTSUPP on Unix sockets is expected; ignore all failures —
    // Nagle is a latency knob, never a correctness one.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool
sendAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // peer gone (EPIPE/ECONNRESET) or fatal error
    }
    return true;
}

SendStatus
sendAllTimed(int fd, std::string_view data, int timeout_ms,
             std::size_t chunk_limit, int chunk_delay_us)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::size_t off = 0;
    while (off < data.size()) {
        std::size_t want = data.size() - off;
        if (chunk_limit > 0)
            want = std::min(want, chunk_limit);
        const ssize_t n = ::send(fd, data.data() + off, want,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            if (chunk_limit > 0 && chunk_delay_us > 0 &&
                off < data.size())
                std::this_thread::sleep_for(
                    std::chrono::microseconds(chunk_delay_us));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Kernel buffer full: wait for the peer to drain it, but
            // only up to the write timeout — a peer that never reads
            // must not pin this thread.
            int wait_ms = -1; // no timeout: wait forever
            if (timeout_ms > 0) {
                const auto left =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
                if (left <= 0)
                    return SendStatus::Timeout;
                wait_ms = static_cast<int>(left);
            }
            pollfd pfd = {};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            const int pr = ::poll(&pfd, 1, wait_ms);
            if (pr < 0 && errno != EINTR)
                return SendStatus::Closed;
            if (pr == 0)
                return SendStatus::Timeout;
            continue;
        }
        return SendStatus::Closed; // EPIPE/ECONNRESET or fatal error
    }
    return SendStatus::Ok;
}

LineReader::LineReader(int fd, std::size_t max_bytes, int poll_ms)
    : fd_(fd), max_bytes_(max_bytes), poll_ms_(poll_ms)
{}

ReadStatus
LineReader::next(std::string &line, const std::function<bool()> &stop)
{
    for (;;) {
        // Serve a buffered complete frame first.
        const auto nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            if (discarding_) {
                // Tail of an oversized frame: drop through the
                // newline and report the truncation once.
                buffer_.erase(0, nl + 1);
                discarding_ = false;
                restartFrameClock();
                return ReadStatus::Oversized;
            }
            line.assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            restartFrameClock();
            return ReadStatus::Frame;
        }
        if (buffer_.size() > max_bytes_ && !discarding_) {
            // Oversized and still no newline: switch to discard mode
            // so one hostile frame cannot grow the buffer unboundedly.
            buffer_.clear();
            discarding_ = true;
        }
        if (frame_timeout_ms_ > 0 && timing_frame_ &&
            std::chrono::steady_clock::now() - frame_start_ >=
                std::chrono::milliseconds(frame_timeout_ms_)) {
            // Slow loris: the frame's first byte arrived long ago and
            // its newline never did. Abandon it so the caller can shed
            // the connection instead of holding this thread hostage.
            buffer_.clear();
            discarding_ = false;
            timing_frame_ = false;
            return ReadStatus::Idle;
        }

        if (stop && stop())
            return ReadStatus::Stopped;
        pollfd pfd = {};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, poll_ms_);
        if (pr < 0) {
            if (errno == EINTR)
                continue; // signal: loop re-checks the stop predicate
            return ReadStatus::Error;
        }
        if (pr == 0)
            continue; // timeout slice: re-check stop, poll again
        char chunk[4096];
        std::size_t want = sizeof chunk;
        if (read_limit_ > 0)
            want = std::min(want, read_limit_); // torn-read fault
        const ssize_t n = ::read(fd_, chunk, want);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == ECONNRESET || errno == ECONNABORTED)
                return ReadStatus::Reset;
            return ReadStatus::Error;
        }
        if (n == 0) {
            if (discarding_ || !buffer_.empty()) {
                buffer_.clear();
                discarding_ = false;
                return ReadStatus::Truncated;
            }
            return ReadStatus::Eof;
        }
        if (!timing_frame_) {
            // First byte of a new frame starts its completion clock.
            timing_frame_ = true;
            frame_start_ = std::chrono::steady_clock::now();
        }
        if (discarding_) {
            // Keep only bytes after a newline, if one arrived.
            const char *p = static_cast<const char *>(
                std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
            if (p) {
                buffer_.assign(p + 1,
                               static_cast<std::size_t>(chunk + n -
                                                        (p + 1)));
                discarding_ = false;
                restartFrameClock();
                return ReadStatus::Oversized;
            }
        } else {
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }
}

} // namespace xylem::service
