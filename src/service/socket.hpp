/**
 * @file
 * Unix-domain stream sockets for the simulation service: RAII fd
 * ownership, listen/connect helpers, SIGPIPE-safe full writes, and a
 * bounded, interruptible line-frame reader shared by the daemon's
 * connection readers and the clients.
 *
 * All failures surface as Error(ErrorCode::Io); nothing in this file
 * installs signal handlers or blocks uninterruptibly — reads poll in
 * short slices and re-check a caller-supplied stop predicate, which
 * is how the daemon's graceful drain reaches threads parked on idle
 * connections.
 */

#ifndef XYLEM_SERVICE_SOCKET_HPP
#define XYLEM_SERVICE_SOCKET_HPP

#include <functional>
#include <string>
#include <string_view>

namespace xylem::service {

/** Close-on-destruct file descriptor. */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : fd_(fd) {}
    ~FdGuard() { reset(); }
    FdGuard(FdGuard &&other) noexcept : fd_(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/**
 * Bind and listen on a Unix-domain socket. A stale socket file from a
 * previous run is unlinked first. Throws Error(Io) on failure, and
 * Error(Config) when `path` exceeds the sun_path limit.
 */
FdGuard listenUnix(const std::string &path, int backlog = 64);

/** Connect to a listening Unix-domain socket. Throws Error(Io). */
FdGuard connectUnix(const std::string &path);

/**
 * Write all of `data`, retrying partial writes and EINTR; SIGPIPE is
 * suppressed (MSG_NOSIGNAL). Returns false when the peer is gone.
 */
bool sendAll(int fd, std::string_view data);

/** Outcome of LineReader::next(). */
enum class ReadStatus
{
    Frame,     ///< one complete line is in `line` (newline stripped)
    Eof,       ///< orderly shutdown; no partial data pending
    Truncated, ///< EOF with an unterminated partial frame buffered
    Oversized, ///< frame exceeded the byte cap; discarded to newline
    Stopped,   ///< the stop predicate fired before a frame completed
    Error,     ///< read error; connection unusable
};

/**
 * Incremental newline-delimited frame reader over a blocking socket.
 * Reads in poll() slices of `poll_ms` so the stop predicate is
 * re-checked at that granularity; frames longer than `max_bytes` are
 * discarded (through the next newline) and reported as Oversized —
 * the reader stays usable for subsequent frames.
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t max_bytes,
                        int poll_ms = 100);

    ReadStatus next(std::string &line,
                    const std::function<bool()> &stop = {});

  private:
    int fd_;
    std::size_t max_bytes_;
    int poll_ms_;
    std::string buffer_;
    bool discarding_ = false; ///< inside an oversized frame
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_SOCKET_HPP
