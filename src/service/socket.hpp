/**
 * @file
 * Stream-socket transport for the simulation service: RAII fd
 * ownership, endpoint-string listen/connect helpers over Unix-domain
 * AND TCP sockets, SIGPIPE-safe full writes, and a bounded,
 * interruptible line-frame reader shared by the daemon's connection
 * readers and the clients.
 *
 * Endpoint grammar (one string names both transports):
 *
 *   unix:/path/to.sock   Unix-domain stream socket
 *   tcp:host:port        TCP (IPv4; host may be a name, port 0 on a
 *                        listener binds an ephemeral port)
 *   /path/to.sock        bare absolute path: shorthand for unix:
 *
 * Every daemon, client, and bench in the repo accepts these strings,
 * so the same binary serves a local socket or a network port. Bad
 * endpoint strings raise Error(Config) — including a Unix path that
 * would not fit sockaddr_un::sun_path, which would otherwise be
 * silently truncated by the kernel.
 *
 * All transport failures surface as Error(ErrorCode::Io); nothing in
 * this file installs signal handlers or blocks uninterruptibly —
 * reads poll in short slices and re-check a caller-supplied stop
 * predicate, which is how the daemon's graceful drain reaches threads
 * parked on idle connections.
 */

#ifndef XYLEM_SERVICE_SOCKET_HPP
#define XYLEM_SERVICE_SOCKET_HPP

#include <chrono>
#include <functional>
#include <string>
#include <string_view>

namespace xylem::service {

/** Close-on-destruct file descriptor. */
class FdGuard
{
  public:
    FdGuard() = default;
    explicit FdGuard(int fd) : fd_(fd) {}
    ~FdGuard() { reset(); }
    FdGuard(FdGuard &&other) noexcept : fd_(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset(int fd = -1);

  private:
    int fd_ = -1;
};

/**
 * Bind and listen on a Unix-domain socket. A stale socket file from a
 * previous run is unlinked first. Throws Error(Io) on failure, and
 * Error(Config) when `path` exceeds the sun_path limit.
 */
FdGuard listenUnix(const std::string &path, int backlog = 64);

/** Connect to a listening Unix-domain socket. Throws Error(Io). */
FdGuard connectUnix(const std::string &path);

/** Transport named by an endpoint string. */
enum class TransportKind
{
    Unix, ///< unix:/path — local filesystem socket
    Tcp,  ///< tcp:host:port — IPv4 stream socket
};

/**
 * A parsed endpoint: where a daemon listens or a client connects.
 * Produced by parseEndpoint(); str() renders the canonical form
 * ("unix:/path" or "tcp:host:port").
 */
struct Endpoint
{
    TransportKind kind = TransportKind::Unix;
    std::string path;      ///< Unix only
    std::string host;      ///< TCP only
    int port = 0;          ///< TCP only; 0 binds ephemeral (listen)

    std::string str() const;
};

/**
 * Parse "unix:PATH", "tcp:HOST:PORT", or a bare absolute path
 * (shorthand for unix:). Throws Error(Config) on an unknown scheme,
 * an empty host/path, a non-numeric or out-of-range port, or a Unix
 * path longer than sockaddr_un::sun_path holds (kMaxUnixPath bytes)
 * — the kernel would silently truncate it, so it is rejected here
 * with the exact limit in the message.
 */
Endpoint parseEndpoint(const std::string &text);

/** Longest Unix socket path that fits sun_path (with its NUL). */
std::size_t maxUnixPathBytes();

/**
 * Bind and listen on an endpoint. Unix endpoints unlink a stale
 * socket file first; TCP listeners set SO_REUSEADDR and may bind
 * port 0 (read the kernel's choice back via boundEndpoint()).
 * Throws Error(Io) / Error(Config).
 */
FdGuard listenEndpoint(const Endpoint &ep, int backlog = 64);

/** Connect to a listening endpoint. TCP connections get
 *  TCP_NODELAY (the protocol is small request/response lines).
 *  Throws Error(Io). */
FdGuard connectEndpoint(const Endpoint &ep);

/** Convenience: parseEndpoint() + connectEndpoint(). */
FdGuard connectEndpoint(const std::string &endpoint);

/**
 * The endpoint a listener actually bound: for TCP this resolves an
 * ephemeral port-0 bind to the kernel-assigned port; for Unix it
 * echoes the configured path.
 */
Endpoint boundEndpoint(const FdGuard &listener, const Endpoint &configured);

/** Disable Nagle on a TCP fd; harmless no-op on Unix sockets. */
void setTcpNoDelay(int fd);

/**
 * Write all of `data`, retrying partial writes and EINTR; SIGPIPE is
 * suppressed (MSG_NOSIGNAL). Returns false when the peer is gone.
 */
bool sendAll(int fd, std::string_view data);

/** Outcome of sendAllTimed(). */
enum class SendStatus
{
    Ok,      ///< every byte handed to the kernel
    Timeout, ///< the peer stopped draining within the write timeout
    Closed,  ///< peer gone (EPIPE/ECONNRESET) or fatal send error
};

/**
 * Write all of `data` with a per-call wall-clock timeout: a peer that
 * stops reading (slow loris) cannot pin the writing thread past
 * `timeout_ms` (0 = wait forever). When `chunk_limit` is nonzero the
 * write is deliberately torn into chunks of at most that many bytes
 * with `chunk_delay_us` pauses between them — the write_torn fault.
 * Partial writes and EINTR are retried; SIGPIPE is suppressed.
 */
SendStatus sendAllTimed(int fd, std::string_view data, int timeout_ms,
                        std::size_t chunk_limit = 0,
                        int chunk_delay_us = 0);

/** Outcome of LineReader::next(). */
enum class ReadStatus
{
    Frame,     ///< one complete line is in `line` (newline stripped)
    Eof,       ///< orderly shutdown; no partial data pending
    Truncated, ///< EOF with an unterminated partial frame buffered
    Reset,     ///< peer reset the connection (ECONNRESET), not clean EOF
    Oversized, ///< frame exceeded the byte cap; discarded to newline
    Idle,      ///< a partial frame stalled past the frame timeout
    Stopped,   ///< the stop predicate fired before a frame completed
    Error,     ///< read error; connection unusable
};

/**
 * Incremental newline-delimited frame reader over a blocking socket.
 * Reads in poll() slices of `poll_ms` so the stop predicate is
 * re-checked at that granularity; frames longer than `max_bytes` are
 * discarded (through the next newline) and reported as Oversized —
 * the reader stays usable for subsequent frames.
 *
 * A peer that resets mid-stream is reported as Reset, distinct from
 * the clean-shutdown Eof/Truncated pair. With a frame timeout set, a
 * frame whose first byte arrived more than that many ms ago without
 * its newline is abandoned and reported as Idle — the slow-loris
 * guard: trickling bytes can never pin a reader thread indefinitely.
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t max_bytes,
                        int poll_ms = 100);

    /** Torn-read fault: consume at most `bytes` per read (0 = off). */
    void setReadChunkLimit(std::size_t bytes) { read_limit_ = bytes; }

    /** Slow-loris guard: a frame must complete within `ms` of its
     *  first byte (0 = no timeout). */
    void setFrameTimeout(int ms) { frame_timeout_ms_ = ms; }

    ReadStatus next(std::string &line,
                    const std::function<bool()> &stop = {});

  private:
    /** After a frame boundary: leftover buffered bytes are the start
     *  of the next frame, so their completion clock begins now. */
    void
    restartFrameClock()
    {
        timing_frame_ = !buffer_.empty();
        if (timing_frame_)
            frame_start_ = std::chrono::steady_clock::now();
    }

    int fd_;
    std::size_t max_bytes_;
    int poll_ms_;
    std::size_t read_limit_ = 0;
    int frame_timeout_ms_ = 0;
    bool timing_frame_ = false; ///< frame_start_ is valid
    std::chrono::steady_clock::time_point frame_start_{};
    std::string buffer_;
    bool discarding_ = false; ///< inside an oversized frame
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_SOCKET_HPP
