/**
 * @file
 * Crash-safe request journal for the serving daemon.
 *
 * The daemon appends one small binary record when a request is
 * admitted and another when its response has been written back.
 * After a crash (SIGKILL, OOM-kill, power button) the restarted
 * daemon scans the previous journal and can report EXACTLY which
 * admitted-but-unanswered requests were lost — turning "the server
 * died, who knows what happened to my requests" into an enumerable
 * list a client can replay.
 *
 * Durability model: records are written with a single O_APPEND
 * write(2) each, no fsync. A killed process loses nothing — the page
 * cache belongs to the kernel, not the process — so the journal is
 * exact across every crash short of whole-machine power loss. The
 * write ordering makes the accounting err only in the safe
 * direction: `admitted` is journaled before the job becomes visible
 * to workers, and `answered` is journaled only AFTER the response
 * bytes were handed to the kernel. A crash between response write
 * and the answered record over-reports that request as lost
 * (at-least-once replay), never under-reports.
 *
 * Record framing (host-endian, like the result cache):
 *   u32 payload_len | u64 fnv1a(payload) | payload
 * payload: u32 kind (1 = admitted, 2 = answered) | u64 seq | u64 id
 *          | kind 1 adds: str scenarioKey
 * A torn tail record (half-written length, hash mismatch, truncated
 * payload) ends the scan — everything before it is intact because
 * records are appended with a single write each.
 */

#ifndef XYLEM_SERVICE_JOURNAL_HPP
#define XYLEM_SERVICE_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace xylem::service {

/** One request a previous incarnation admitted but never answered. */
struct LostRequest
{
    std::uint64_t seq = 0; ///< server-assigned admission sequence
    std::uint64_t id = 0;  ///< client-chosen correlation id
    std::string scenario;  ///< scenarioKey at admission
};

/** What a journal scan found in a previous incarnation's file. */
struct JournalRecovery
{
    std::uint64_t admitted = 0;
    std::uint64_t answered = 0;
    /** admitted - answered, ordered by admission sequence. */
    std::vector<LostRequest> lost;
    /** Scan stopped at a half-written tail record. */
    bool tornTail = false;
};

class RequestJournal
{
  public:
    /**
     * Open (creating if needed) the journal at `path`. Any existing
     * content — the previous incarnation's journal — is scanned
     * first and summarised in recovery(), then the file is truncated
     * so this incarnation starts a fresh epoch. Throws Error(Io).
     */
    explicit RequestJournal(const std::string &path);
    ~RequestJournal();
    RequestJournal(const RequestJournal &) = delete;
    RequestJournal &operator=(const RequestJournal &) = delete;

    /** What the previous incarnation left behind. */
    const JournalRecovery &recovery() const { return recovery_; }

    /** Journal an admission; call before workers can see the job. */
    void recordAdmitted(std::uint64_t seq, std::uint64_t id,
                        const std::string &scenario);

    /** Journal an answer; call after the response write succeeded. */
    void recordAnswered(std::uint64_t seq, std::uint64_t id);

    /** Scan a journal file without opening it for writing (tests,
     *  post-mortem tooling). A missing file is an empty recovery. */
    static JournalRecovery scan(const std::string &path);

  private:
    void append(const std::vector<std::uint8_t> &payload);

    std::mutex mutex_;
    int fd_ = -1;
    JournalRecovery recovery_;
};

} // namespace xylem::service

#endif // XYLEM_SERVICE_JOURNAL_HPP
