#include "runtime/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"

namespace xylem::runtime {

namespace {

/**
 * Deterministic decision in [0, 1): a pure hash of (seed, kind, id),
 * so outcomes never depend on thread interleaving or attempt history.
 */
double
decision(std::uint64_t seed, const char *kind, std::uint64_t id)
{
    std::uint64_t h = DiskCache::fnv1a(&seed, sizeof seed);
    h ^= DiskCache::fnv1a(kind, std::char_traits<char>::length(kind));
    h *= 0x100000001b3ull;
    h ^= DiskCache::fnv1a(&id, sizeof id);
    h *= 0x100000001b3ull;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
contains(const std::vector<std::uint64_t> &v, std::uint64_t x)
{
    for (std::uint64_t e : v)
        if (e == x)
            return true;
    return false;
}

double
parseProbability(const std::string &key, const std::string &value)
{
    double p = 0.0;
    try {
        p = std::stod(value);
    } catch (const std::exception &) {
        raise(ErrorCode::Config, "fault spec: invalid value '", value,
              "' for ", key);
    }
    if (p < 0.0 || p > 1.0)
        raise(ErrorCode::Config, "fault spec: ", key,
              " must be in [0, 1], got ", value);
    return p;
}

std::vector<std::uint64_t>
parseIndexList(const std::string &key, const std::string &value)
{
    std::vector<std::uint64_t> out;
    std::size_t pos = 0;
    while (pos < value.size()) {
        const std::size_t semi = value.find(';', pos);
        const std::string tok = value.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        try {
            out.push_back(std::stoull(tok));
        } catch (const std::exception &) {
            raise(ErrorCode::Config, "fault spec: invalid index '", tok,
                  "' for ", key);
        }
        if (semi == std::string::npos)
            break;
        pos = semi + 1;
    }
    return out;
}

} // namespace

bool
FaultSpec::any() const
{
    return cacheCorrupt > 0.0 || taskFail > 0.0 || !taskKill.empty() ||
           !cgNoconv.empty() || cgNoconvP > 0.0 || delay > 0.0 ||
           acceptFail > 0.0 || readTorn > 0.0 || writeTorn > 0.0 ||
           slowClient > 0.0 || connReset > 0.0 || workerStall > 0.0;
}

FaultSpec
FaultSpec::parse(const std::string &spec)
{
    FaultSpec out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos,
            comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) {
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos)
                raise(ErrorCode::Config,
                      "fault spec: expected key=value, got '", item, "'");
            const std::string key = item.substr(0, eq);
            const std::string value = item.substr(eq + 1);
            try {
                if (key == "seed") {
                    out.seed = std::stoull(value);
                } else if (key == "cache_corrupt") {
                    out.cacheCorrupt = parseProbability(key, value);
                } else if (key == "task_fail") {
                    out.taskFail = parseProbability(key, value);
                } else if (key == "task_fail_attempts") {
                    out.taskFailAttempts = std::stoi(value);
                } else if (key == "task_kill") {
                    out.taskKill = parseIndexList(key, value);
                } else if (key == "cg_noconv") {
                    out.cgNoconv = parseIndexList(key, value);
                } else if (key == "cg_noconv_p") {
                    out.cgNoconvP = parseProbability(key, value);
                } else if (key == "delay") {
                    out.delay = parseProbability(key, value);
                } else if (key == "delay_ms") {
                    out.delayMs = std::stoi(value);
                } else if (key == "accept_fail") {
                    out.acceptFail = parseProbability(key, value);
                } else if (key == "read_torn") {
                    out.readTorn = parseProbability(key, value);
                } else if (key == "write_torn") {
                    out.writeTorn = parseProbability(key, value);
                } else if (key == "slow_client") {
                    out.slowClient = parseProbability(key, value);
                } else if (key == "conn_reset") {
                    out.connReset = parseProbability(key, value);
                } else if (key == "worker_stall") {
                    out.workerStall = parseProbability(key, value);
                } else if (key == "stall_ms") {
                    out.stallMs = std::stoi(value);
                } else {
                    raise(ErrorCode::Config, "fault spec: unknown key '",
                          key, "'");
                }
            } catch (const Error &) {
                throw;
            } catch (const std::exception &) {
                raise(ErrorCode::Config, "fault spec: invalid value '",
                      value, "' for ", key);
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector;
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *env = std::getenv("XYLEM_FAULT_SPEC")) {
            try {
                injector.configure(env);
                if (injector.active())
                    warn("fault injection armed from XYLEM_FAULT_SPEC: ",
                         env);
            } catch (const Error &e) {
                warn("ignoring malformed XYLEM_FAULT_SPEC: ", e.what());
            }
        }
    });
    return injector;
}

void
FaultInjector::configure(const std::string &spec)
{
    auto parsed = std::make_shared<const FaultSpec>(FaultSpec::parse(spec));
    std::lock_guard<std::mutex> lock(mutex_);
    spec_ = parsed->any() ? std::move(parsed) : nullptr;
    spec_string_ = spec_ ? spec : std::string();
}

std::shared_ptr<const FaultSpec>
FaultInjector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spec_;
}

bool
FaultInjector::active() const
{
    return snapshot() != nullptr;
}

std::string
FaultInjector::spec() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spec_string_;
}

bool
FaultInjector::injectTaskFailure(std::uint64_t index, int attempt) const
{
    const auto spec = snapshot();
    if (!spec)
        return false;
    if (contains(spec->taskKill, index)) {
        Metrics::global().counter("fault.task_failures").increment();
        return true;
    }
    if (attempt < spec->taskFailAttempts && spec->taskFail > 0.0 &&
        decision(spec->seed, "task_fail", index) < spec->taskFail) {
        Metrics::global().counter("fault.task_failures").increment();
        return true;
    }
    return false;
}

bool
FaultInjector::forceCgNonConvergence(std::uint64_t index) const
{
    const auto spec = snapshot();
    if (!spec)
        return false;
    if (contains(spec->cgNoconv, index))
        return true;
    return spec->cgNoconvP > 0.0 &&
           decision(spec->seed, "cg_noconv", index) < spec->cgNoconvP;
}

bool
FaultInjector::maybeCorruptCachePayload(
    const std::string &key, std::vector<std::uint8_t> &payload) const
{
    const auto spec = snapshot();
    if (!spec || spec->cacheCorrupt <= 0.0)
        return false;
    if (decision(spec->seed, "cache_corrupt", DiskCache::fnv1a(key)) >=
        spec->cacheCorrupt)
        return false;
    // Truncate so any codec that reads its full record throws, and
    // flip the remaining bytes so even a prefix-tolerant decoder sees
    // garbage rather than a silently-valid half record.
    payload.resize(payload.size() / 2);
    for (auto &b : payload)
        b ^= 0xA5;
    Metrics::global().counter("fault.cache_corruptions").increment();
    return true;
}

void
FaultInjector::maybeDelay(std::uint64_t index) const
{
    const auto spec = snapshot();
    if (!spec || spec->delay <= 0.0 || spec->delayMs <= 0)
        return;
    if (decision(spec->seed, "delay", index) < spec->delay) {
        Metrics::global().counter("fault.delays").increment();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec->delayMs));
    }
}

bool
FaultInjector::injectAcceptFailure(std::uint64_t conn_id) const
{
    const auto spec = snapshot();
    if (!spec || spec->acceptFail <= 0.0)
        return false;
    if (decision(spec->seed, "accept_fail", conn_id) >= spec->acceptFail)
        return false;
    Metrics::global().counter("fault.accept_failures").increment();
    return true;
}

std::size_t
FaultInjector::tornReadLimit(std::uint64_t conn_id) const
{
    const auto spec = snapshot();
    if (!spec || spec->readTorn <= 0.0)
        return 0;
    if (decision(spec->seed, "read_torn", conn_id) >= spec->readTorn)
        return 0;
    Metrics::global().counter("fault.torn_reads").increment();
    return 3; // a few bytes per read: frames reassemble over many slices
}

bool
FaultInjector::injectTornWrite(std::uint64_t conn_id) const
{
    const auto spec = snapshot();
    if (!spec || spec->writeTorn <= 0.0)
        return false;
    if (decision(spec->seed, "write_torn", conn_id) >= spec->writeTorn)
        return false;
    Metrics::global().counter("fault.torn_writes").increment();
    return true;
}

int
FaultInjector::slowClientPauseMs(std::uint64_t conn_id) const
{
    const auto spec = snapshot();
    if (!spec || spec->slowClient <= 0.0 || spec->stallMs <= 0)
        return 0;
    if (decision(spec->seed, "slow_client", conn_id) >= spec->slowClient)
        return 0;
    Metrics::global().counter("fault.slow_clients").increment();
    return spec->stallMs;
}

bool
FaultInjector::injectConnReset(std::uint64_t conn_id) const
{
    const auto spec = snapshot();
    if (!spec || spec->connReset <= 0.0)
        return false;
    if (decision(spec->seed, "conn_reset", conn_id) >= spec->connReset)
        return false;
    Metrics::global().counter("fault.conn_resets").increment();
    return true;
}

int
FaultInjector::workerStallMs(std::uint64_t seq) const
{
    const auto spec = snapshot();
    if (!spec || spec->workerStall <= 0.0 || spec->stallMs <= 0)
        return 0;
    if (decision(spec->seed, "worker_stall", seq) >= spec->workerStall)
        return 0;
    Metrics::global().counter("fault.worker_stalls").increment();
    return spec->stallMs;
}

FaultInjector::ScopedSpec::ScopedSpec(const std::string &spec)
    : previous_(FaultInjector::global().spec())
{
    FaultInjector::global().configure(spec);
}

FaultInjector::ScopedSpec::~ScopedSpec()
{
    try {
        FaultInjector::global().configure(previous_);
    } catch (const Error &) {
        // The previous spec parsed once already; parsing cannot fail.
    }
}

} // namespace xylem::runtime
