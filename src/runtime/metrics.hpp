/**
 * @file
 * Per-task telemetry for the experiment runtime: a process-wide
 * registry of named counters (monotonic, atomic) and timings
 * (count/total/min/max wall seconds).
 *
 * Producers grab a counter once and bump it from any thread:
 *
 * @code
 *   auto &iters = runtime::Metrics::global().counter("solver.iterations");
 *   iters.add(stats.iterations);
 *   runtime::ScopedTimer t("task.seconds");   // records on scope exit
 * @endcode
 *
 * Consumers take a Snapshot (a plain map copy) and render it with
 * printSummary() or toJson(). Counter references stay valid for the
 * life of the registry (node-based storage), so hot paths never
 * re-hash strings.
 *
 * Well-known counter families:
 *   solver.*            CG solves/iterations, warm vs cold split, and
 *                       solver.nonconverged (tolerance misses)
 *   runner.* simcache.* experiment-runtime task and cache telemetry
 *   verify.selfcheck.*  invariant checks run / failed when the bench
 *                       --selfcheck flag arms the verification layer
 */

#ifndef XYLEM_RUNTIME_METRICS_HPP
#define XYLEM_RUNTIME_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace xylem::runtime {

/** A monotonically increasing, thread-safe counter. */
class Counter
{
  public:
    void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    void increment() { add(1); }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Aggregated wall-time observations for one named timing. */
struct TimingStats
{
    std::uint64_t count = 0;
    double totalSeconds = 0.0;
    double minSeconds = 0.0;
    double maxSeconds = 0.0;

    double meanSeconds() const
    {
        return count ? totalSeconds / static_cast<double>(count) : 0.0;
    }
};

class Metrics
{
  public:
    /** The process-wide registry used by the runtime and experiments. */
    static Metrics &global();

    /** Find-or-create; the reference stays valid until reset(). */
    Counter &counter(const std::string &name);

    /** Fold one wall-time observation into the named timing. */
    void addTiming(const std::string &name, double seconds);

    /** A consistent copy of every counter and timing. */
    struct Snapshot
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, TimingStats> timings;

        /** Counter value or 0 when absent. */
        std::uint64_t count(const std::string &name) const;

        /** Total seconds of a timing, or 0 when absent. */
        double timingTotal(const std::string &name) const;
    };
    Snapshot snapshot() const;

    /** Drop every counter and timing (tests, bench restarts). */
    void reset();

    /** Render a column-aligned telemetry summary table. */
    void printSummary(std::ostream &os) const;

    /** Render the snapshot as a single JSON object. */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    // node-based: counter() hands out long-lived references
    std::map<std::string, Counter> counters_;
    std::map<std::string, TimingStats> timings_;
};

/** Records the wall time of a scope into Metrics::global(). */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}
    ~ScopedTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        Metrics::global().addTiming(
            name_, std::chrono::duration<double>(end - start_).count());
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_METRICS_HPP
