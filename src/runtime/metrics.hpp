/**
 * @file
 * Per-task telemetry for the experiment runtime: a process-wide
 * registry of named counters (monotonic, atomic), timings
 * (count/total/min/max wall seconds), and bounded-memory latency
 * histograms (fixed log-spaced buckets with p50/p95/p99 extraction).
 *
 * Producers grab a counter once and bump it from any thread:
 *
 * @code
 *   auto &iters = runtime::Metrics::global().counter("solver.iterations");
 *   iters.add(stats.iterations);
 *   runtime::ScopedTimer t("task.seconds");   // records on scope exit
 * @endcode
 *
 * Consumers take a Snapshot (a plain map copy) and render it with
 * printSummary() or toJson(). Counter references stay valid for the
 * life of the registry (node-based storage), so hot paths never
 * re-hash strings.
 *
 * Well-known counter families:
 *   solver.*            CG solves/iterations, warm vs cold split, and
 *                       solver.nonconverged (tolerance misses)
 *   runner.* simcache.* experiment-runtime task and cache telemetry
 *   service.*           simulation-service queue/batching/latency
 *                       telemetry (requests, dedup_hits, shed)
 *   verify.selfcheck.*  invariant checks run / failed when the bench
 *                       --selfcheck flag arms the verification layer
 */

#ifndef XYLEM_RUNTIME_METRICS_HPP
#define XYLEM_RUNTIME_METRICS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace xylem::runtime {

/** A monotonically increasing, thread-safe counter. */
class Counter
{
  public:
    void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    void increment() { add(1); }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A bounded-memory latency histogram: fixed log-spaced buckets from
 * 1 µs to ~1000 s (constant ~11% bucket width), lock-free observe()
 * from any thread, and percentile extraction from a snapshot. Memory
 * is a fixed ~1.5 KiB per histogram regardless of observation count —
 * the property that lets the service keep one per latency stage for
 * the life of the daemon.
 */
class LatencyHistogram
{
  public:
    /** kMinSeconds * kGrowth^kBuckets ≈ 1.1e3 s. */
    static constexpr int kBuckets = 192;
    static constexpr double kMinSeconds = 1e-6;

    /** Record one observation (thread-safe, wait-free). */
    void observe(double seconds);

    /** Immutable copy of the bucket state. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double totalSeconds = 0.0;
        /** [0] = underflow (< kMinSeconds), [kBuckets+1] = overflow. */
        std::array<std::uint64_t, kBuckets + 2> buckets{};

        /**
         * Value at quantile q in [0, 1]: geometric interpolation by
         * the rank's fractional position inside the bucket holding
         * the q-th observation (≤ ~6% off the true value by
         * construction, and nearby quantiles stay distinct even when
         * they share a bucket). 0 when empty.
         */
        double quantile(double q) const;

        double meanSeconds() const
        {
            return count ? totalSeconds / static_cast<double>(count) : 0.0;
        }
    };
    Snapshot snapshot() const;

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> total_seconds_{0.0};
    std::array<std::atomic<std::uint64_t>, kBuckets + 2> buckets_{};
};

/** Aggregated wall-time observations for one named timing. */
struct TimingStats
{
    std::uint64_t count = 0;
    double totalSeconds = 0.0;
    double minSeconds = 0.0;
    double maxSeconds = 0.0;

    double meanSeconds() const
    {
        return count ? totalSeconds / static_cast<double>(count) : 0.0;
    }
};

class Metrics
{
  public:
    /** The process-wide registry used by the runtime and experiments. */
    static Metrics &global();

    /** Find-or-create; the reference stays valid until reset(). */
    Counter &counter(const std::string &name);

    /** Find-or-create; the reference stays valid until reset(). */
    LatencyHistogram &histogram(const std::string &name);

    /** Fold one wall-time observation into the named timing. */
    void addTiming(const std::string &name, double seconds);

    /** A consistent copy of every counter, timing, and histogram. */
    struct Snapshot
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, TimingStats> timings;
        std::map<std::string, LatencyHistogram::Snapshot> histograms;

        /** Counter value or 0 when absent. */
        std::uint64_t count(const std::string &name) const;

        /** Total seconds of a timing, or 0 when absent. */
        double timingTotal(const std::string &name) const;

        /** Histogram quantile, or 0 when the histogram is absent. */
        double histogramQuantile(const std::string &name, double q) const;
    };
    Snapshot snapshot() const;

    /** Drop every counter and timing (tests, bench restarts). */
    void reset();

    /** Render a column-aligned telemetry summary table. */
    void printSummary(std::ostream &os) const;

    /** Render the snapshot as a single JSON object. */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    // node-based: counter()/histogram() hand out long-lived references
    std::map<std::string, Counter> counters_;
    std::map<std::string, TimingStats> timings_;
    std::map<std::string, LatencyHistogram> histograms_;
};

/**
 * Records the wall time of a scope into Metrics::global() — as a
 * timing always, and additionally into the same-named latency
 * histogram when `with_histogram` is set (tail percentiles then show
 * up in printSummary() and every bench --json summary).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string name, bool with_histogram = false)
        : name_(std::move(name)), with_histogram_(with_histogram),
          start_(std::chrono::steady_clock::now())
    {}
    ~ScopedTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - start_).count();
        Metrics::global().addTiming(name_, seconds);
        if (with_histogram_)
            Metrics::global().histogram(name_).observe(seconds);
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    std::string name_;
    bool with_histogram_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_METRICS_HPP
