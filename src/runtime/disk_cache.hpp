/**
 * @file
 * Persistent on-disk result cache for the experiment runtime.
 *
 * One record per key, stored under `<dir>/<hash>.xyc` where `hash`
 * is the FNV-1a fingerprint of the full key string. Each record is a
 * versioned binary envelope that embeds the key itself (collisions
 * are detected and treated as misses) and a payload checksum, so any
 * corrupt, truncated, or stale-version file simply reads as a miss —
 * the cache is always safe to reuse across runs and code changes.
 *
 * Writes go through a unique temp file followed by an atomic rename,
 * so concurrent readers (and concurrent writers of the same key) see
 * either the old record or the new one, never a torn file.
 */

#ifndef XYLEM_RUNTIME_DISK_CACHE_HPP
#define XYLEM_RUNTIME_DISK_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xylem::runtime {

class DiskCache
{
  public:
    /**
     * @param dir     cache directory; created when absent
     * @param version caller's record-schema version — bump it when
     *                the payload layout changes and old records read
     *                as misses
     */
    DiskCache(std::string dir, std::uint32_t version);

    const std::string &directory() const { return dir_; }
    std::uint32_t version() const { return version_; }

    /** Fetch the payload for `key`; nullopt on miss/corruption. */
    std::optional<std::vector<std::uint8_t>>
    load(const std::string &key) const;

    /** Persist `payload` under `key` (atomic replace). */
    void store(const std::string &key,
               const std::vector<std::uint8_t> &payload) const;

    /** Number of records currently on disk (tests/diagnostics). */
    std::size_t recordCount() const;

    /** 64-bit FNV-1a over a byte string. */
    static std::uint64_t fnv1a(const void *data, std::size_t size);
    static std::uint64_t fnv1a(const std::string &s);

  private:
    std::string pathFor(const std::string &key) const;

    std::string dir_;
    std::uint32_t version_;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_DISK_CACHE_HPP
