/**
 * @file
 * Persistent on-disk result cache for the experiment runtime.
 *
 * One record per key, stored under `<dir>/<hash>.xyc` where `hash`
 * is the FNV-1a fingerprint of the full key string. Each record is a
 * versioned binary envelope that embeds the key itself (collisions
 * are detected and treated as misses) and a payload checksum, so any
 * corrupt, truncated, or stale-version file simply reads as a miss —
 * the cache is always safe to reuse across runs and code changes.
 *
 * Writes go through a unique temp file followed by an atomic rename,
 * so concurrent readers (and concurrent writers of the same key) see
 * either the old record or the new one, never a torn file.
 */

#ifndef XYLEM_RUNTIME_DISK_CACHE_HPP
#define XYLEM_RUNTIME_DISK_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xylem::runtime {

class DiskCache
{
  public:
    /**
     * @param dir     cache directory; created when absent. When it
     *                cannot be created (or later proves unwritable),
     *                the cache degrades gracefully: one warning,
     *                persistence disabled, loads keep working — a
     *                broken cache must never fail a sweep.
     * @param version caller's record-schema version — bump it when
     *                the payload layout changes and old records read
     *                as misses
     */
    DiskCache(std::string dir, std::uint32_t version);

    DiskCache(DiskCache &&other) noexcept
        : dir_(std::move(other.dir_)), version_(other.version_),
          disabled_(other.disabled_.load()) {}

    const std::string &directory() const { return dir_; }
    std::uint32_t version() const { return version_; }

    /** Fetch the payload for `key`; nullopt on miss/corruption. */
    std::optional<std::vector<std::uint8_t>>
    load(const std::string &key) const;

    /**
     * Persist `payload` under `key` (atomic replace). A store failure
     * (unwritable directory, full disk) warns once, disables further
     * persistence, and returns — it never throws out of a task.
     */
    void store(const std::string &key,
               const std::vector<std::uint8_t> &payload) const;

    /** Has persistence been disabled by a directory/write failure? */
    bool persistenceDisabled() const
    {
        return disabled_.load(std::memory_order_relaxed);
    }

    /** Number of records currently on disk (tests/diagnostics). */
    std::size_t recordCount() const;

    /** 64-bit FNV-1a over a byte string. */
    static std::uint64_t fnv1a(const void *data, std::size_t size);
    static std::uint64_t fnv1a(const std::string &s);

  private:
    std::string pathFor(const std::string &key) const;

    /** Warn once and stop persisting; loads are unaffected. */
    void disablePersistence(const std::string &why) const;

    std::string dir_;
    std::uint32_t version_;
    mutable std::atomic<bool> disabled_{false};
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_DISK_CACHE_HPP
