/**
 * @file
 * Sweep checkpoint manifests: the durable record that lets an
 * interrupted multi-hour grid resume instead of restarting.
 *
 * A manifest is one small text file per sweep, keyed by the sweep id
 * (a hash of the task count and every task's cache key, so a resumed
 * run can only adopt progress from an identical grid). It lists the
 * completed task indices with their cache-key hashes, plus a failure
 * record per quarantined task — the "failure manifest" that makes a
 * multi-failure grid debuggable in one pass.
 *
 * Writes go through a temp file + atomic rename (the DiskCache::store
 * discipline), so a manifest is never observed torn; a manifest that
 * fails to parse or names a different sweep id is ignored with a
 * warning. The persisted results themselves live in the DiskCache —
 * the manifest records *progress*, the cache records *data* — which
 * is what makes `--resume` bit-identical: a resumed run replays
 * completed tasks as cache hits and computes only the remainder.
 */

#ifndef XYLEM_RUNTIME_CHECKPOINT_HPP
#define XYLEM_RUNTIME_CHECKPOINT_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace xylem::runtime {

/** One permanently failed (quarantined) sweep task. */
struct TaskFailure
{
    std::uint64_t index = 0;
    int attempts = 0;        ///< total attempts, retries included
    std::string code;        ///< ErrorCode token, e.g. "injected-fault"
    std::string message;     ///< what() of the final attempt's error
};

/** The persisted progress + failure record of one sweep. */
struct SweepManifest
{
    std::uint64_t sweepId = 0;
    std::uint64_t numTasks = 0;
    bool interrupted = false; ///< last run was drained by SIGINT/SIGTERM
    std::map<std::uint64_t, std::uint64_t> completed; ///< index -> key hash
    std::vector<TaskFailure> failures;

    /** Canonical manifest path inside a cache directory. */
    static std::string pathFor(const std::string &dir,
                               std::uint64_t sweep_id);

    /** Atomic-rename write; returns false (with a warning) on error. */
    bool save(const std::string &path) const;

    /** Parse a manifest; nullopt (with a warning) when malformed. */
    static std::optional<SweepManifest> load(const std::string &path);
};

/**
 * Thread-safe progress tracker that persists a SweepManifest every
 * `checkpoint_interval` completions and at finalise(). An empty path
 * disables persistence (no cache directory configured) while the
 * in-memory failure aggregation keeps working.
 */
class SweepProgress
{
  public:
    SweepProgress(std::string path, std::uint64_t sweep_id,
                  std::uint64_t num_tasks, int checkpoint_interval);

    /**
     * Adopt a previous run's manifest (resume). Returns the number of
     * completed tasks adopted; 0 when absent or from a different
     * sweep.
     */
    std::size_t adoptExisting();

    void markCompleted(std::uint64_t index, std::uint64_t key_hash);
    void markFailed(TaskFailure failure);

    /** Write the final manifest (also records interruption). */
    void finalise(bool interrupted);

    /** Failures so far, sorted by task index. */
    std::vector<TaskFailure> failures() const;
    std::size_t completedCount() const;

  private:
    void saveLocked();

    mutable std::mutex mutex_;
    SweepManifest manifest_;
    std::string path_;
    int interval_;
    int sinceSave_ = 0;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_CHECKPOINT_HPP
