set(XYLEM_RUNTIME_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/thread_pool.cpp
    ${CMAKE_CURRENT_LIST_DIR}/metrics.cpp
    ${CMAKE_CURRENT_LIST_DIR}/disk_cache.cpp
    ${CMAKE_CURRENT_LIST_DIR}/fault_injection.cpp
    ${CMAKE_CURRENT_LIST_DIR}/checkpoint.cpp
    ${CMAKE_CURRENT_LIST_DIR}/sweep_runner.cpp)
