/**
 * @file
 * Deterministic fault-injection harness for the experiment runtime.
 *
 * Every recovery path in the fault-tolerance layer (retry, solver
 * escalation, cache-corruption fallback, deadline abort, quarantine)
 * must be testable on demand, not only when real hardware misbehaves.
 * The injector is driven by a spec string (XYLEM_FAULT_SPEC or
 * `--fault-spec`), e.g.
 *
 *   seed=7,cache_corrupt=0.5,task_fail=0.05,cg_noconv=0;3,delay=0.1,delay_ms=20
 *
 * Keys:
 *   seed=N               decision seed (default 1)
 *   cache_corrupt=P      corrupt a loaded cache record with prob. P
 *                        (truncated so decoding throws; the runner
 *                        must fall back to recompute)
 *   task_fail=P          a task's first `task_fail_attempts` attempts
 *                        throw Error(InjectedFault) with prob. P
 *   task_fail_attempts=N leading attempts that fail (default 1)
 *   task_kill=I;J        task indices that fail on EVERY attempt
 *                        (exhausts the ladder -> quarantine)
 *   cg_noconv=I;J        task indices whose CG solves are forced to
 *                        miss tolerance (dense rung still succeeds)
 *   cg_noconv_p=P        probabilistic variant of cg_noconv
 *   delay=P              delay a task by delay_ms with prob. P
 *   delay_ms=M           artificial task delay (default 50)
 *
 * Service-layer keys (the ServiceFaultInjector vocabulary, enacted by
 * the daemon's socket/server layers and by chaos-test clients):
 *   accept_fail=P        close an accepted connection immediately
 *   read_torn=P          cap a connection's reads to a few bytes, so
 *                        frames arrive torn across many poll slices
 *   write_torn=P         write a connection's responses in tiny
 *                        chunks with sub-ms pauses between them
 *   slow_client=P        a chaos client trickles its request bytes
 *                        (server side must reap it via the idle-read
 *                        timeout, never pin a reader thread)
 *   conn_reset=P         a chaos client hard-resets (SO_LINGER 0)
 *                        after sending a frame
 *   worker_stall=P       a worker sleeps stall_ms before serving a
 *                        picked-up job (the watchdog must notice)
 *   stall_ms=M           worker stall / slow-client pause (default 200)
 *
 * Every decision is a pure hash of (seed, fault kind, task index or
 * cache key) — independent of thread count, scheduling, and attempt
 * history — so a faulty run is exactly reproducible and a test can
 * query the injector to predict which tasks are hit. Service decisions
 * hash the connection or job sequence number the same way.
 */

#ifndef XYLEM_RUNTIME_FAULT_INJECTION_HPP
#define XYLEM_RUNTIME_FAULT_INJECTION_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xylem::runtime {

/** Parsed form of a fault spec string. */
struct FaultSpec
{
    std::uint64_t seed = 1;
    double cacheCorrupt = 0.0;
    double taskFail = 0.0;
    int taskFailAttempts = 1;
    std::vector<std::uint64_t> taskKill;
    std::vector<std::uint64_t> cgNoconv;
    double cgNoconvP = 0.0;
    double delay = 0.0;
    int delayMs = 50;
    // Service-layer (socket/server) faults.
    double acceptFail = 0.0;
    double readTorn = 0.0;
    double writeTorn = 0.0;
    double slowClient = 0.0;
    double connReset = 0.0;
    double workerStall = 0.0;
    int stallMs = 200;

    bool any() const;

    /** Parse a spec string; throws Error(Config) on malformed input. */
    static FaultSpec parse(const std::string &spec);
};

class FaultInjector
{
  public:
    /**
     * The process-wide injector. First use configures it from
     * XYLEM_FAULT_SPEC when set (a malformed environment spec warns
     * and disables injection; the `--fault-spec` flag path surfaces
     * the parse error instead).
     */
    static FaultInjector &global();

    /** Install a spec; "" disables injection. Throws Error(Config). */
    void configure(const std::string &spec);

    bool active() const;
    std::string spec() const;

    /** Should this attempt of task `index` throw InjectedFault? */
    bool injectTaskFailure(std::uint64_t index, int attempt) const;

    /** Should CG solves of task `index` be forced non-convergent? */
    bool forceCgNonConvergence(std::uint64_t index) const;

    /**
     * Possibly corrupt a just-loaded cache payload (truncate + flip,
     * guaranteeing the decoder throws). Returns true when corrupted.
     */
    bool maybeCorruptCachePayload(const std::string &key,
                                  std::vector<std::uint8_t> &payload) const;

    /** Possibly sleep the artificial task delay. */
    void maybeDelay(std::uint64_t index) const;

    // Service-layer decisions (see the spec vocabulary above). All are
    // pure hashes of (seed, kind, id), so the daemon and a chaos-test
    // client armed with the same spec agree on which connection or job
    // is hit.

    /** Should connection `conn_id` be dropped right after accept? */
    bool injectAcceptFailure(std::uint64_t conn_id) const;

    /**
     * Torn-read cap for connection `conn_id` in bytes (0 = no fault):
     * the reader consumes at most this many bytes per read call.
     */
    std::size_t tornReadLimit(std::uint64_t conn_id) const;

    /** Should responses on `conn_id` be written in torn chunks? */
    bool injectTornWrite(std::uint64_t conn_id) const;

    /** Milliseconds a slow-loris client pauses mid-frame (0 = none). */
    int slowClientPauseMs(std::uint64_t conn_id) const;

    /** Should a chaos client hard-reset connection `conn_id`? */
    bool injectConnReset(std::uint64_t conn_id) const;

    /** Milliseconds worker processing of job `seq` stalls (0 = none). */
    int workerStallMs(std::uint64_t seq) const;

    /** RAII spec override for tests; restores the old spec on exit. */
    class ScopedSpec
    {
      public:
        explicit ScopedSpec(const std::string &spec);
        ~ScopedSpec();
        ScopedSpec(const ScopedSpec &) = delete;
        ScopedSpec &operator=(const ScopedSpec &) = delete;

      private:
        std::string previous_;
    };

  private:
    std::shared_ptr<const FaultSpec> snapshot() const;

    mutable std::mutex mutex_;
    std::shared_ptr<const FaultSpec> spec_;
    std::string spec_string_;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_FAULT_INJECTION_HPP
