/**
 * @file
 * Minimal binary record serialisation for the persistent result
 * cache: little-endian-native fixed-width integers, raw IEEE doubles
 * (bit-exact round trips, which the byte-identical replay guarantees
 * rely on), and length-prefixed strings/vectors.
 *
 * The reader throws SerializeError on any truncation or bound
 * violation; DiskCache and its callers translate that into a cache
 * miss, which makes corrupt or half-written records self-healing.
 * Records are host-format (the cache directory is per-machine, not an
 * interchange format).
 */

#ifndef XYLEM_RUNTIME_SERIALIZE_HPP
#define XYLEM_RUNTIME_SERIALIZE_HPP

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace xylem::runtime {

/** Thrown by BinaryReader on truncated or malformed input. */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what_arg)
        : std::runtime_error("serialize: " + what_arg)
    {}
};

class BinaryWriter
{
  public:
    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    void
    u32(std::uint32_t v)
    {
        raw(&v, sizeof v);
    }
    void
    u64(std::uint64_t v)
    {
        raw(&v, sizeof v);
    }
    void
    i32(std::int32_t v)
    {
        raw(&v, sizeof v);
    }
    void
    f64(double v)
    {
        raw(&v, sizeof v);
    }
    void
    boolean(bool v)
    {
        const std::uint8_t b = v ? 1 : 0;
        raw(&b, sizeof b);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }
    void
    vecF64(const std::vector<double> &v)
    {
        u64(v.size());
        raw(v.data(), v.size() * sizeof(double));
    }
    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size() * sizeof(std::uint64_t));
    }

  private:
    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<std::uint8_t> buf_;
};

class BinaryReader
{
  public:
    explicit BinaryReader(const std::vector<std::uint8_t> &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {}
    BinaryReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    std::uint32_t
    u32()
    {
        std::uint32_t v;
        raw(&v, sizeof v);
        return v;
    }
    std::uint64_t
    u64()
    {
        std::uint64_t v;
        raw(&v, sizeof v);
        return v;
    }
    std::int32_t
    i32()
    {
        std::int32_t v;
        raw(&v, sizeof v);
        return v;
    }
    double
    f64()
    {
        double v;
        raw(&v, sizeof v);
        return v;
    }
    bool
    boolean()
    {
        std::uint8_t b;
        raw(&b, sizeof b);
        return b != 0;
    }
    std::string
    str()
    {
        const std::uint64_t n = length(1);
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }
    std::vector<double>
    vecF64()
    {
        const std::uint64_t n = length(sizeof(double));
        std::vector<double> v(n);
        raw(v.data(), n * sizeof(double));
        return v;
    }
    std::vector<std::uint64_t>
    vecU64()
    {
        const std::uint64_t n = length(sizeof(std::uint64_t));
        std::vector<std::uint64_t> v(n);
        raw(v.data(), n * sizeof(std::uint64_t));
        return v;
    }

  private:
    /** Read an element count and bound it by the remaining bytes. */
    std::uint64_t
    length(std::size_t elem_size)
    {
        const std::uint64_t n = u64();
        if (n > remaining() / elem_size)
            throw SerializeError("length exceeds remaining bytes");
        return n;
    }

    void
    raw(void *p, std::size_t n)
    {
        if (n > remaining())
            throw SerializeError("read past end of record");
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_SERIALIZE_HPP
