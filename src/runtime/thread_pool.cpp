#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace xylem::runtime {

namespace {

// Set while a worker thread runs so that submissions from inside the
// pool land on the submitter's own deque (classic work-stealing
// locality) instead of the round-robin cursor.
thread_local ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

} // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t max_pending)
    : max_pending_(max_pending)
{
    const int n = resolveJobs(num_threads);
    queues_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back(
            [this, i]() { workerLoop(static_cast<std::size_t>(i)); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
        work_available_.notify_all();
        space_available_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

int
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("XYLEM_JOBS")) {
        try {
            const int n = std::stoi(env);
            if (n >= 1)
                return n;
        } catch (const std::exception &) {
            // fall through to the serial default
        }
        warn("ignoring invalid XYLEM_JOBS='", env, "'");
    }
    return 1;
}

int
ThreadPool::resolveJobs(int jobs)
{
    if (jobs >= 1)
        return jobs;
    return defaultJobs();
}

void
ThreadPool::post(Task task)
{
    std::unique_lock<std::mutex> lock(mutex_);
    space_available_.wait(lock, [&] {
        return max_pending_ == 0 || pending_ < max_pending_ || stopping_;
    });
    std::size_t qi;
    if (tls_pool == this) {
        qi = tls_index;
    } else {
        qi = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    {
        // mutex_ -> queue mutex is the one-way lock order everywhere.
        std::lock_guard<std::mutex> qlock(queues_[qi]->mutex);
        queues_[qi]->tasks.push_back(std::move(task));
    }
    ++pending_;
    work_available_.notify_one();
}

bool
ThreadPool::tryTake(std::size_t self, Task &out)
{
    {
        std::lock_guard<std::mutex> qlock(queues_[self]->mutex);
        if (!queues_[self]->tasks.empty()) {
            out = std::move(queues_[self]->tasks.back());
            queues_[self]->tasks.pop_back(); // own deque: LIFO
            return true;
        }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        const std::size_t victim = (self + k) % queues_.size();
        std::lock_guard<std::mutex> qlock(queues_[victim]->mutex);
        if (!queues_[victim]->tasks.empty()) {
            out = std::move(queues_[victim]->tasks.front());
            queues_[victim]->tasks.pop_front(); // steal: FIFO
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tls_pool = this;
    tls_index = index;
    for (;;) {
        Task task;
        if (tryTake(index, task)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --pending_;
                space_available_.notify_one();
            }
            try {
                task();
            } catch (...) {
                // submit() routes exceptions through the future; a
                // throwing raw task would be a library bug.
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock,
                             [&] { return stopping_ || pending_ > 0; });
        if (stopping_ && pending_ == 0)
            return;
        // pending_ > 0: a task exists (or was pushed after our scan);
        // loop around and scan the deques again.
    }
}

void
ThreadPool::parallelFor(ThreadPool *pool, std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (pool == nullptr || pool->threadCount() <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    const std::size_t chunks = std::min<std::size_t>(
        n, static_cast<std::size_t>(pool->threadCount()) * 4);
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = n * c / chunks;
        const std::size_t hi = n * (c + 1) / chunks;
        futures.push_back(pool->submit([lo, hi, &fn]() {
            for (std::size_t i = lo; i < hi; ++i)
                fn(i);
        }));
    }
    // get() in chunk order so the lowest-index failure propagates.
    for (auto &f : futures)
        f.get();
}

} // namespace xylem::runtime
