#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace xylem::runtime {

namespace {

/** Per-bucket growth factor: kMin * growth^kBuckets ≈ 1.1e3 s. */
const double kBucketGrowth =
    std::pow(1e9, 1.0 / LatencyHistogram::kBuckets);
const double kLogBucketGrowth = std::log(kBucketGrowth);

/** Upper bound of bucket i (1-based grid bucket). */
double
bucketUpperBound(int i)
{
    return LatencyHistogram::kMinSeconds *
           std::pow(kBucketGrowth, static_cast<double>(i));
}

} // namespace

void
LatencyHistogram::observe(double seconds)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    total_seconds_.fetch_add(seconds, std::memory_order_relaxed);
    int idx;
    if (!(seconds > kMinSeconds)) {
        idx = 0; // underflow (and NaN, which compares false)
    } else {
        idx = static_cast<int>(std::floor(std::log(seconds / kMinSeconds) /
                                          kLogBucketGrowth)) +
              1;
        if (idx < 1)
            idx = 1;
        else if (idx > kBuckets)
            idx = kBuckets + 1; // overflow
    }
    buckets_[static_cast<std::size_t>(idx)].fetch_add(
        1, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    Snapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.totalSeconds = total_seconds_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return snap;
}

double
LatencyHistogram::Snapshot::quantile(double q) const
{
    // The per-bucket totals may lag `count` slightly under concurrent
    // observe() calls; rank against the bucket sum for consistency.
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th observation, 1-based.
    const std::uint64_t rank = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(total))),
        1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            if (i == 0)
                return kMinSeconds;
            if (i == buckets.size() - 1)
                return bucketUpperBound(kBuckets);
            // Interpolate geometrically by the rank's fractional
            // position inside [lower, upper): quantiles sharing a
            // bucket (p95 vs p99 of a tight distribution) still come
            // out distinct instead of collapsing to one midpoint.
            const std::uint64_t before = seen - buckets[i];
            const double frac = std::clamp(
                (static_cast<double>(rank - before) - 0.5) /
                    static_cast<double>(buckets[i]),
                0.0, 1.0);
            const double lower =
                bucketUpperBound(static_cast<int>(i) - 1);
            const double upper = bucketUpperBound(static_cast<int>(i));
            return lower * std::pow(upper / lower, frac);
        }
    }
    return bucketUpperBound(kBuckets);
}

Metrics &
Metrics::global()
{
    static Metrics instance;
    return instance;
}

Counter &
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

LatencyHistogram &
Metrics::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return histograms_[name];
}

void
Metrics::addTiming(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimingStats &t = timings_[name];
    if (t.count == 0) {
        t.minSeconds = seconds;
        t.maxSeconds = seconds;
    } else {
        t.minSeconds = std::min(t.minSeconds, seconds);
        t.maxSeconds = std::max(t.maxSeconds, seconds);
    }
    ++t.count;
    t.totalSeconds += seconds;
}

std::uint64_t
Metrics::Snapshot::count(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

double
Metrics::Snapshot::timingTotal(const std::string &name) const
{
    auto it = timings.find(name);
    return it == timings.end() ? 0.0 : it->second.totalSeconds;
}

double
Metrics::Snapshot::histogramQuantile(const std::string &name,
                                     double q) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? 0.0 : it->second.quantile(q);
}

Metrics::Snapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c.value();
    snap.timings = timings_;
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h.snapshot();
    return snap;
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    timings_.clear();
    histograms_.clear();
}

void
Metrics::printSummary(std::ostream &os) const
{
    const Snapshot snap = snapshot();
    if (!snap.counters.empty()) {
        Table t({"counter", "value"});
        for (const auto &[name, v] : snap.counters)
            t.addRow({name, std::to_string(v)});
        os << "Telemetry counters:\n";
        t.print(os);
    }
    if (!snap.timings.empty()) {
        Table t({"timing", "count", "total [s]", "mean [s]", "min [s]",
                 "max [s]"});
        for (const auto &[name, ts] : snap.timings) {
            t.addRow({name, std::to_string(ts.count),
                      Table::num(ts.totalSeconds, 3),
                      Table::num(ts.meanSeconds(), 4),
                      Table::num(ts.minSeconds, 4),
                      Table::num(ts.maxSeconds, 4)});
        }
        os << "Telemetry timings:\n";
        t.print(os);
    }
    if (!snap.histograms.empty()) {
        Table t({"histogram", "count", "mean [s]", "p50 [s]", "p95 [s]",
                 "p99 [s]"});
        for (const auto &[name, h] : snap.histograms) {
            t.addRow({name, std::to_string(h.count),
                      Table::num(h.meanSeconds(), 5),
                      Table::num(h.quantile(0.50), 5),
                      Table::num(h.quantile(0.95), 5),
                      Table::num(h.quantile(0.99), 5)});
        }
        os << "Telemetry latency histograms:\n";
        t.print(os);
    }
}

std::string
Metrics::toJson() const
{
    const Snapshot snap = snapshot();
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        os << (first ? "" : ",") << '"' << name << "\":" << v;
        first = false;
    }
    os << "},\"timings\":{";
    first = true;
    for (const auto &[name, ts] : snap.timings) {
        os << (first ? "" : ",") << '"' << name << "\":{\"count\":"
           << ts.count << ",\"total_s\":" << ts.totalSeconds
           << ",\"mean_s\":" << ts.meanSeconds()
           << ",\"min_s\":" << ts.minSeconds
           << ",\"max_s\":" << ts.maxSeconds << '}';
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        os << (first ? "" : ",") << '"' << name << "\":{\"count\":"
           << h.count << ",\"total_s\":" << h.totalSeconds
           << ",\"mean_s\":" << h.meanSeconds()
           << ",\"p50_s\":" << h.quantile(0.50)
           << ",\"p95_s\":" << h.quantile(0.95)
           << ",\"p99_s\":" << h.quantile(0.99) << '}';
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace xylem::runtime
