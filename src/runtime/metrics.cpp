#include "runtime/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace xylem::runtime {

Metrics &
Metrics::global()
{
    static Metrics instance;
    return instance;
}

Counter &
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

void
Metrics::addTiming(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimingStats &t = timings_[name];
    if (t.count == 0) {
        t.minSeconds = seconds;
        t.maxSeconds = seconds;
    } else {
        t.minSeconds = std::min(t.minSeconds, seconds);
        t.maxSeconds = std::max(t.maxSeconds, seconds);
    }
    ++t.count;
    t.totalSeconds += seconds;
}

std::uint64_t
Metrics::Snapshot::count(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

double
Metrics::Snapshot::timingTotal(const std::string &name) const
{
    auto it = timings.find(name);
    return it == timings.end() ? 0.0 : it->second.totalSeconds;
}

Metrics::Snapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c.value();
    snap.timings = timings_;
    return snap;
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    timings_.clear();
}

void
Metrics::printSummary(std::ostream &os) const
{
    const Snapshot snap = snapshot();
    if (!snap.counters.empty()) {
        Table t({"counter", "value"});
        for (const auto &[name, v] : snap.counters)
            t.addRow({name, std::to_string(v)});
        os << "Telemetry counters:\n";
        t.print(os);
    }
    if (!snap.timings.empty()) {
        Table t({"timing", "count", "total [s]", "mean [s]", "min [s]",
                 "max [s]"});
        for (const auto &[name, ts] : snap.timings) {
            t.addRow({name, std::to_string(ts.count),
                      Table::num(ts.totalSeconds, 3),
                      Table::num(ts.meanSeconds(), 4),
                      Table::num(ts.minSeconds, 4),
                      Table::num(ts.maxSeconds, 4)});
        }
        os << "Telemetry timings:\n";
        t.print(os);
    }
}

std::string
Metrics::toJson() const
{
    const Snapshot snap = snapshot();
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        os << (first ? "" : ",") << '"' << name << "\":" << v;
        first = false;
    }
    os << "},\"timings\":{";
    first = true;
    for (const auto &[name, ts] : snap.timings) {
        os << (first ? "" : ",") << '"' << name << "\":{\"count\":"
           << ts.count << ",\"total_s\":" << ts.totalSeconds
           << ",\"mean_s\":" << ts.meanSeconds()
           << ",\"min_s\":" << ts.minSeconds
           << ",\"max_s\":" << ts.maxSeconds << '}';
        first = false;
    }
    os << "}}";
    return os.str();
}

} // namespace xylem::runtime
