#include "runtime/disk_cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/logging.hpp"
#include "runtime/serialize.hpp"

namespace fs = std::filesystem;

namespace xylem::runtime {

namespace {

constexpr std::uint32_t kMagic = 0x52435958; // "XYCR"
constexpr std::uint32_t kContainerVersion = 1;

std::string
hexHash(std::uint64_t h)
{
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

std::optional<std::vector<std::uint8_t>>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return bytes;
}

} // namespace

DiskCache::DiskCache(std::string dir, std::uint32_t version)
    : dir_(std::move(dir)), version_(version)
{
    XYLEM_ASSERT(!dir_.empty(), "cache directory must be non-empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        disablePersistence("cannot create cache directory '" + dir_ +
                           "': " + ec.message());
}

void
DiskCache::disablePersistence(const std::string &why) const
{
    if (!disabled_.exchange(true, std::memory_order_relaxed))
        warn("cache: ", why, "; persisting disabled for this run "
             "(reads still served when possible)");
}

std::uint64_t
DiskCache::fnv1a(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
DiskCache::fnv1a(const std::string &s)
{
    return fnv1a(s.data(), s.size());
}

std::string
DiskCache::pathFor(const std::string &key) const
{
    return dir_ + "/" + hexHash(fnv1a(key)) + ".xyc";
}

std::optional<std::vector<std::uint8_t>>
DiskCache::load(const std::string &key) const
{
    const auto bytes = readFile(pathFor(key));
    if (!bytes)
        return std::nullopt;
    try {
        BinaryReader r(*bytes);
        if (r.u32() != kMagic)
            return std::nullopt;
        if (r.u32() != kContainerVersion)
            return std::nullopt;
        if (r.u32() != version_)
            return std::nullopt;
        const std::uint64_t hash = r.u64();
        if (hash != fnv1a(key))
            return std::nullopt;
        if (r.str() != key) // same hash, different key: collision
            return std::nullopt;
        const std::uint64_t payload_len = r.u64();
        if (r.remaining() < payload_len + sizeof(std::uint64_t))
            return std::nullopt; // truncated record
        const std::size_t off = bytes->size() - r.remaining();
        std::vector<std::uint8_t> payload(
            bytes->begin() + static_cast<std::ptrdiff_t>(off),
            bytes->begin() +
                static_cast<std::ptrdiff_t>(off + payload_len));
        std::uint64_t checksum;
        std::memcpy(&checksum, bytes->data() + off + payload_len,
                    sizeof checksum);
        if (checksum != fnv1a(payload.data(), payload.size()))
            return std::nullopt;
        return payload;
    } catch (const SerializeError &) {
        return std::nullopt;
    }
}

void
DiskCache::store(const std::string &key,
                 const std::vector<std::uint8_t> &payload) const
{
    if (disabled_.load(std::memory_order_relaxed))
        return;
    BinaryWriter w;
    w.u32(kMagic);
    w.u32(kContainerVersion);
    w.u32(version_);
    w.u64(fnv1a(key));
    w.str(key);
    w.u64(payload.size());
    const std::vector<std::uint8_t> &record = w.bytes();

    static std::atomic<std::uint64_t> tmp_counter{0};
    std::ostringstream tmp;
    tmp << dir_ << "/.tmp." << ::getpid() << '.'
        << std::hash<std::thread::id>{}(std::this_thread::get_id()) << '.'
        << tmp_counter.fetch_add(1);
    {
        std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
        if (!out) {
            disablePersistence("cannot open temp file '" + tmp.str() +
                               "'");
            return;
        }
        out.write(reinterpret_cast<const char *>(record.data()),
                  static_cast<std::streamsize>(record.size()));
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        const std::uint64_t checksum =
            fnv1a(payload.data(), payload.size());
        out.write(reinterpret_cast<const char *>(&checksum),
                  sizeof checksum);
        if (!out.good()) {
            disablePersistence("short write to '" + tmp.str() + "'");
            out.close();
            std::error_code ec;
            fs::remove(tmp.str(), ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp.str(), pathFor(key), ec);
    if (ec) {
        disablePersistence("rename into '" + pathFor(key) +
                           "' failed: " + ec.message());
        fs::remove(tmp.str(), ec);
    }
}

std::size_t
DiskCache::recordCount() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().extension() == ".xyc")
            ++n;
    }
    return n;
}

} // namespace xylem::runtime
