/**
 * @file
 * SweepRunner: executes an experiment grid as independent tasks on
 * the work-stealing pool, with deterministic result ordering, an
 * optional persistent result cache, and a per-task fault-tolerance
 * policy (retries, a solver escalation ladder, cooperative deadlines,
 * quarantine, and checkpoint/resume).
 *
 * An experiment expresses its grid as `n` index-addressed tasks; the
 * runner guarantees that results come back in index order regardless
 * of the execution interleaving, so a `--jobs N` run is bit-identical
 * to the serial one (every task is internally deterministic and never
 * shares mutable state with its siblings).
 *
 * When a cache directory is configured, each task may supply a key
 * string that fully fingerprints its inputs; hits skip the compute
 * entirely and decode the stored record, misses compute and persist.
 * Corrupt or stale records fall back to compute transparently.
 *
 * Failure model. Each task attempt runs under a thread-local
 * TaskContext. A generic exception (including injected faults and
 * records that throw during decode) is retried up to
 * `RunnerOptions::maxRetries` times at the same rung — a retried task
 * replays bit-identically, because tasks are deterministic. A
 * *solver-level* failure (non-convergence, CG breakdown, a missed
 * deadline) instead advances the escalation ladder: cold start →
 * alternate preconditioner → dense direct solve (see
 * common/task_context.hpp). A task that exhausts both budgets is
 * quarantined: the rest of the grid still completes, the failure is
 * recorded in the sweep manifest, and run() reports every failure in
 * one aggregated SweepError instead of rethrowing only the first.
 * Only rung-0 results are persisted to the cache, so escalated
 * recoveries can never leak byte-different records into later runs.
 *
 * Checkpoint/resume. With a cache directory configured the runner
 * persists a SweepManifest (completed task indices + key hashes,
 * atomic rename) every `checkpointInterval` completions and on
 * SIGINT/SIGTERM, which drain in-flight tasks instead of aborting.
 * A re-run with `resume` (or simply the same cache directory) replays
 * completed tasks as cache hits, bit-identically.
 */

#ifndef XYLEM_RUNTIME_SWEEP_RUNNER_HPP
#define XYLEM_RUNTIME_SWEEP_RUNNER_HPP

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/task_context.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"
#include "runtime/thread_pool.hpp"

namespace xylem::runtime {

/**
 * Bump when any persisted experiment-record layout changes; old cache
 * directories then read as misses instead of mis-decoding.
 */
constexpr std::uint32_t kResultCacheVersion = 1;

/** Execution knobs shared by every experiment driver. */
struct RunnerOptions
{
    /** Worker threads; <= 1 runs inline on the calling thread. */
    int jobs = 1;
    /** Persistent result cache directory; empty disables it. */
    std::string cacheDir;
    /**
     * Plain same-rung replays of a failed task before it counts as a
     * solver-escalation candidate or quarantine; 0 disables the whole
     * resilience layer (first failure is final, solver failures only
     * warn — the pre-fault-tolerance behaviour).
     */
    int maxRetries = 1;
    /** Per-attempt cooperative wall-clock deadline; 0 disables. */
    double taskTimeoutSeconds = 0.0;
    /** Adopt a previous run's checkpoint manifest when present. */
    bool resume = false;
    /** Completions between periodic manifest writes. */
    int checkpointInterval = 16;

    /**
     * Read XYLEM_JOBS / XYLEM_CACHE_DIR / XYLEM_MAX_RETRIES /
     * XYLEM_TASK_TIMEOUT / XYLEM_RESUME.
     */
    static RunnerOptions fromEnv();
};

/**
 * Aggregate failure report of a sweep: every quarantined task, not
 * just the first exception.
 */
class SweepError : public Error
{
  public:
    SweepError(std::string message, std::vector<TaskFailure> failures)
        : Error(ErrorCode::TaskFailed, std::move(message)),
          failures_(std::move(failures))
    {}

    const std::vector<TaskFailure> &failures() const { return failures_; }

  private:
    std::vector<TaskFailure> failures_;
};

/** Result of a fault-tolerant sweep: per-task results or failures. */
template <typename R>
struct SweepOutcome
{
    /** Index-ordered; nullopt = the task was quarantined. */
    std::vector<std::optional<R>> results;
    /** One record per quarantined task, sorted by index. */
    std::vector<TaskFailure> failures;

    bool complete() const { return failures.empty(); }
};

class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts);
    ~SweepRunner();

    int jobs() const { return jobs_; }
    const RunnerOptions &options() const { return opts_; }
    bool hasDiskCache() const { return cache_.has_value(); }
    const DiskCache *diskCache() const
    {
        return cache_ ? &*cache_ : nullptr;
    }

    /**
     * Install SIGINT/SIGTERM handlers that request a cooperative
     * drain: running tasks finish, queued tasks are skipped, the
     * checkpoint manifest is written, and the sweep throws
     * Error(Interrupted). Idempotent.
     */
    static void installSignalHandlers();
    /** Has a drain been requested (signal or requestInterrupt())? */
    static bool interruptRequested();
    /** Programmatic drain request (tests, embedding applications). */
    static void requestInterrupt();
    /** Reset the drain flag (a new sweep after a handled interrupt). */
    static void clearInterruptRequest();

    /**
     * Run `n` independent tasks and return their results in index
     * order. `key_fn` may return "" for an uncachable task. Failures
     * are retried/escalated per RunnerOptions; if any task is
     * quarantined, every failure is aggregated into one SweepError
     * thrown after the grid drains.
     */
    template <typename R>
    std::vector<R>
    run(std::size_t n,
        const std::function<std::string(std::size_t)> &key_fn,
        const std::function<R(std::size_t)> &compute_fn,
        const std::function<void(BinaryWriter &, const R &)> &encode_fn,
        const std::function<R(BinaryReader &)> &decode_fn)
    {
        SweepOutcome<R> outcome =
            runTolerant<R>(n, key_fn, compute_fn, encode_fn, decode_fn);
        if (!outcome.failures.empty()) {
            std::ostringstream os;
            os << outcome.failures.size() << " of " << n
               << " sweep tasks failed permanently:";
            for (const auto &f : outcome.failures)
                os << " [task " << f.index << ", " << f.attempts
                   << " attempts] " << f.message << ";";
            throw SweepError(os.str(), std::move(outcome.failures));
        }
        std::vector<R> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            XYLEM_ASSERT(outcome.results[i].has_value(),
                         "sweep task produced no result");
            out.push_back(std::move(*outcome.results[i]));
        }
        return out;
    }

    /**
     * The fault-tolerant core: like run(), but task failures never
     * throw — quarantined tasks come back as nullopt plus a
     * TaskFailure, so callers can keep partial results. Throws only
     * Error(Interrupted) after a drain (the checkpoint manifest is
     * written first, so the run is resumable).
     */
    template <typename R>
    SweepOutcome<R>
    runTolerant(std::size_t n,
                const std::function<std::string(std::size_t)> &key_fn,
                const std::function<R(std::size_t)> &compute_fn,
                const std::function<void(BinaryWriter &, const R &)>
                    &encode_fn,
                const std::function<R(BinaryReader &)> &decode_fn)
    {
        SweepOutcome<R> outcome;
        outcome.results.resize(n);

        // Keys are needed up front for the sweep identity; reuse them
        // in the tasks instead of re-deriving.
        std::vector<std::string> keys(n);
        if (key_fn)
            for (std::size_t i = 0; i < n; ++i)
                keys[i] = key_fn(i);
        auto progress = makeProgress(n, keys);

        auto &tasks_total = Metrics::global().counter("runner.tasks");
        auto &cache_hits =
            Metrics::global().counter("runner.cache_hits");
        auto &computed = Metrics::global().counter("runner.computed");
        auto &corrupt_records =
            Metrics::global().counter("runner.cache_corrupt_records");

        ThreadPool::parallelFor(pool_.get(), n, [&](std::size_t i) {
            if (interruptRequested())
                return; // drain: leave queued tasks untouched
            tasks_total.increment();
            const std::string &key = keys[i];
            const FaultInjector &faults = FaultInjector::global();
            if (cache_ && !key.empty()) {
                if (auto payload = cache_->load(key)) {
                    faults.maybeCorruptCachePayload(key, *payload);
                    try {
                        BinaryReader r(*payload);
                        outcome.results[i] = decode_fn(r);
                        cache_hits.increment();
                        progress->markCompleted(i, DiskCache::fnv1a(key));
                        return;
                    } catch (const std::exception &) {
                        // Corrupt record: recompute (and re-store)
                        // below. Any decoder failure counts — a
                        // mangled length prefix surfaces as
                        // std::length_error from the vector, not as a
                        // SerializeError.
                        corrupt_records.increment();
                    }
                }
            }
            TaskFailure failure;
            const int rung =
                attemptTask<R>(i, compute_fn, outcome.results[i],
                               failure);
            if (!outcome.results[i].has_value()) {
                if (interruptRequested() && failure.attempts == 0)
                    return; // drained before the first attempt started
                Metrics::global().counter("runner.failed").increment();
                progress->markFailed(failure);
                return;
            }
            computed.increment();
            // Persist rung-0 results only: an escalated recovery is
            // numerically sound but not bit-identical to the normal
            // path, and must not leak into later (healthy) runs.
            if (cache_ && !key.empty() && rung == 0) {
                BinaryWriter w;
                encode_fn(w, *outcome.results[i]);
                cache_->store(key, w.bytes());
            }
            progress->markCompleted(i, DiskCache::fnv1a(key));
        });

        const bool interrupted = interruptRequested();
        progress->finalise(interrupted);
        if (interrupted) {
            raise(ErrorCode::Interrupted,
                  "sweep drained after interrupt: ",
                  progress->completedCount(), " of ", n,
                  " tasks completed",
                  cache_ ? " (re-run with the same cache directory to "
                           "resume)"
                         : "");
        }
        outcome.failures = progress->failures();
        return outcome;
    }

  private:
    /**
     * Run one task through the retry/escalation ladder. On success
     * `slot` is filled and the final rung is returned; on permanent
     * failure `slot` stays empty and `failure` describes the last
     * error.
     */
    template <typename R>
    int
    attemptTask(std::size_t i,
                const std::function<R(std::size_t)> &compute_fn,
                std::optional<R> &slot, TaskFailure &failure)
    {
        const FaultInjector &faults = FaultInjector::global();
        const bool resilient = opts_.maxRetries > 0;
        auto &retries = Metrics::global().counter("runner.retries");
        auto &escalations =
            Metrics::global().counter("runner.escalations");
        auto &deadline_exceeded =
            Metrics::global().counter("runner.deadline_exceeded");

        int rung = 0;
        int retries_left = opts_.maxRetries;
        int attempt = 0;
        for (;;) {
            if (attempt > 0 && interruptRequested())
                break; // record the failure; the drain reports overall
            TaskContext ctx;
            ctx.escalation = rung;
            ctx.strictSolver = resilient;
            ctx.forceCgNonConvergence = faults.forceCgNonConvergence(i);
            if (opts_.taskTimeoutSeconds > 0.0) {
                ctx.hasDeadline = true;
                ctx.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            opts_.taskTimeoutSeconds));
            }
            try {
                ScopedTaskContext scope(ctx);
                faults.maybeDelay(i);
                if (faults.injectTaskFailure(i, attempt))
                    raise(ErrorCode::InjectedFault,
                          "injected failure of task ", i, " (attempt ",
                          attempt, ")");
                ScopedTimer timer("runner.task_seconds",
                                  /*with_histogram=*/true);
                slot = compute_fn(i);
                return rung;
            } catch (const Error &e) {
                ++attempt;
                failure = {i, attempt, toString(e.code()), e.what()};
                if (e.code() == ErrorCode::DeadlineExceeded)
                    deadline_exceeded.increment();
                const bool escalatable =
                    e.code() == ErrorCode::SolverNonConvergence ||
                    e.code() == ErrorCode::SolverBreakdown ||
                    e.code() == ErrorCode::DeadlineExceeded;
                if (resilient && escalatable && rung < kMaxEscalation) {
                    ++rung;
                    escalations.increment();
                    continue;
                }
                if (resilient && !escalatable && retries_left > 0) {
                    --retries_left;
                    retries.increment();
                    continue;
                }
            } catch (const std::exception &e) {
                ++attempt;
                failure = {i, attempt, toString(ErrorCode::Unknown),
                           e.what()};
                if (resilient && retries_left > 0) {
                    --retries_left;
                    retries.increment();
                    continue;
                }
            }
            break; // budgets exhausted: quarantine
        }
        return rung;
    }

    /** Build the progress tracker (+ resume adoption) for one sweep. */
    std::unique_ptr<SweepProgress>
    makeProgress(std::size_t n, const std::vector<std::string> &keys);

    RunnerOptions opts_;
    int jobs_;
    std::optional<DiskCache> cache_;
    std::unique_ptr<ThreadPool> pool_; ///< null when jobs_ <= 1
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_SWEEP_RUNNER_HPP
