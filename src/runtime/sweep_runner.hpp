/**
 * @file
 * SweepRunner: executes an experiment grid as independent tasks on
 * the work-stealing pool, with deterministic result ordering and an
 * optional persistent result cache.
 *
 * An experiment expresses its grid as `n` index-addressed tasks; the
 * runner guarantees that results come back in index order regardless
 * of the execution interleaving, so a `--jobs N` run is bit-identical
 * to the serial one (every task is internally deterministic and never
 * shares mutable state with its siblings).
 *
 * When a cache directory is configured, each task may supply a key
 * string that fully fingerprints its inputs; hits skip the compute
 * entirely and decode the stored record, misses compute and persist.
 * Corrupt or stale records fall back to compute transparently.
 */

#ifndef XYLEM_RUNTIME_SWEEP_RUNNER_HPP
#define XYLEM_RUNTIME_SWEEP_RUNNER_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/metrics.hpp"
#include "runtime/serialize.hpp"
#include "runtime/thread_pool.hpp"

namespace xylem::runtime {

/**
 * Bump when any persisted experiment-record layout changes; old cache
 * directories then read as misses instead of mis-decoding.
 */
constexpr std::uint32_t kResultCacheVersion = 1;

/** Execution knobs shared by every experiment driver. */
struct RunnerOptions
{
    /** Worker threads; <= 1 runs inline on the calling thread. */
    int jobs = 1;
    /** Persistent result cache directory; empty disables it. */
    std::string cacheDir;

    /** Read XYLEM_JOBS / XYLEM_CACHE_DIR. */
    static RunnerOptions fromEnv();
};

class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts);
    ~SweepRunner();

    int jobs() const { return jobs_; }
    bool hasDiskCache() const { return cache_.has_value(); }
    const DiskCache *diskCache() const
    {
        return cache_ ? &*cache_ : nullptr;
    }

    /**
     * Run `n` independent tasks and return their results in index
     * order. `key_fn` may return "" for an uncachable task. The first
     * task exception (lowest index) is rethrown after the grid
     * drains.
     */
    template <typename R>
    std::vector<R>
    run(std::size_t n,
        const std::function<std::string(std::size_t)> &key_fn,
        const std::function<R(std::size_t)> &compute_fn,
        const std::function<void(BinaryWriter &, const R &)> &encode_fn,
        const std::function<R(BinaryReader &)> &decode_fn)
    {
        std::vector<std::optional<R>> slots(n);
        auto &tasks_total = Metrics::global().counter("runner.tasks");
        auto &cache_hits =
            Metrics::global().counter("runner.cache_hits");
        auto &computed = Metrics::global().counter("runner.computed");

        ThreadPool::parallelFor(pool_.get(), n, [&](std::size_t i) {
            tasks_total.increment();
            const std::string key = key_fn ? key_fn(i) : std::string();
            if (cache_ && !key.empty()) {
                if (auto payload = cache_->load(key)) {
                    try {
                        BinaryReader r(*payload);
                        slots[i] = decode_fn(r);
                        cache_hits.increment();
                        return;
                    } catch (const SerializeError &) {
                        // stale/corrupt record: recompute below
                    }
                }
            }
            {
                ScopedTimer timer("runner.task_seconds");
                slots[i] = compute_fn(i);
            }
            computed.increment();
            if (cache_ && !key.empty()) {
                BinaryWriter w;
                encode_fn(w, *slots[i]);
                cache_->store(key, w.bytes());
            }
        });

        std::vector<R> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            XYLEM_ASSERT(slots[i].has_value(),
                         "sweep task produced no result");
            out.push_back(std::move(*slots[i]));
        }
        return out;
    }

  private:
    int jobs_;
    std::optional<DiskCache> cache_;
    std::unique_ptr<ThreadPool> pool_; ///< null when jobs_ <= 1
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_SWEEP_RUNNER_HPP
