#include "runtime/sweep_runner.hpp"

#include <cstdlib>

namespace xylem::runtime {

RunnerOptions
RunnerOptions::fromEnv()
{
    RunnerOptions opts;
    opts.jobs = ThreadPool::defaultJobs();
    if (const char *dir = std::getenv("XYLEM_CACHE_DIR"))
        opts.cacheDir = dir;
    return opts;
}

SweepRunner::SweepRunner(RunnerOptions opts)
    : jobs_(ThreadPool::resolveJobs(opts.jobs))
{
    if (!opts.cacheDir.empty())
        cache_.emplace(opts.cacheDir, kResultCacheVersion);
    if (jobs_ > 1)
        pool_ = std::make_unique<ThreadPool>(jobs_);
}

SweepRunner::~SweepRunner() = default;

} // namespace xylem::runtime
