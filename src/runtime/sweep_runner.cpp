#include "runtime/sweep_runner.hpp"

#include <cstdlib>

#include "common/signal.hpp"

namespace xylem::runtime {

RunnerOptions
RunnerOptions::fromEnv()
{
    RunnerOptions opts;
    opts.jobs = ThreadPool::defaultJobs();
    if (const char *dir = std::getenv("XYLEM_CACHE_DIR"))
        opts.cacheDir = dir;
    if (const char *retries = std::getenv("XYLEM_MAX_RETRIES"))
        opts.maxRetries = std::atoi(retries);
    if (const char *timeout = std::getenv("XYLEM_TASK_TIMEOUT"))
        opts.taskTimeoutSeconds = std::atof(timeout);
    if (const char *resume = std::getenv("XYLEM_RESUME"))
        opts.resume = std::atoi(resume) != 0;
    return opts;
}

SweepRunner::SweepRunner(RunnerOptions opts)
    : opts_(std::move(opts)), jobs_(ThreadPool::resolveJobs(opts_.jobs))
{
    if (!opts_.cacheDir.empty())
        cache_.emplace(opts_.cacheDir, kResultCacheVersion);
    if (jobs_ > 1)
        pool_ = std::make_unique<ThreadPool>(jobs_);
}

SweepRunner::~SweepRunner() = default;

// The sweep runner shares the process-wide shutdown flag with every
// other long-running driver (see common/signal.hpp); these wrappers
// keep the historical SweepRunner API working.

void
SweepRunner::installSignalHandlers()
{
    ShutdownSignal::install();
}

bool
SweepRunner::interruptRequested()
{
    return ShutdownSignal::requested();
}

void
SweepRunner::requestInterrupt()
{
    ShutdownSignal::request();
}

void
SweepRunner::clearInterruptRequest()
{
    ShutdownSignal::clear();
}

std::unique_ptr<SweepProgress>
SweepRunner::makeProgress(std::size_t n,
                          const std::vector<std::string> &keys)
{
    // The sweep id fingerprints the whole grid: task count + every
    // cache key. A manifest from a different grid can never be
    // adopted by accident.
    std::uint64_t id = DiskCache::fnv1a(&n, sizeof n);
    for (const std::string &key : keys) {
        id ^= DiskCache::fnv1a(key);
        id *= 0x100000001b3ull;
    }
    std::string path;
    if (cache_)
        path = SweepManifest::pathFor(cache_->directory(), id);
    auto progress = std::make_unique<SweepProgress>(
        path, id, n, opts_.checkpointInterval);
    if (opts_.resume) {
        const std::size_t adopted = progress->adoptExisting();
        if (adopted > 0)
            inform("resume: adopted ", adopted, " of ", n,
                   " completed tasks from '", path, "'");
    }
    return progress;
}

} // namespace xylem::runtime
