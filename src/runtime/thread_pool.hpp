/**
 * @file
 * A work-stealing thread pool for the experiment runtime.
 *
 * Each worker owns a bounded deque; submissions are distributed
 * round-robin (or pushed to the submitting worker's own deque when
 * called from inside the pool). Workers pop their own deque LIFO for
 * cache locality and steal FIFO from their siblings when idle, so an
 * unbalanced experiment grid still keeps every core busy.
 *
 * Tasks are arbitrary callables; submit() returns a std::future that
 * carries the result or rethrows the task's exception. The destructor
 * performs a graceful shutdown: every task submitted before
 * destruction runs to completion before the workers join.
 *
 * All synchronisation is plain mutex/condition-variable (no lock-free
 * tricks) so the pool is ThreadSanitizer-clean by construction.
 */

#ifndef XYLEM_RUNTIME_THREAD_POOL_HPP
#define XYLEM_RUNTIME_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace xylem::runtime {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param num_threads worker count; 0 selects defaultJobs()
     * @param max_pending backpressure bound on queued-but-not-started
     *                    tasks; submit() blocks while the bound is
     *                    reached (0 = unbounded)
     */
    explicit ThreadPool(int num_threads = 0,
                        std::size_t max_pending = 4096);

    /** Graceful shutdown: runs every queued task, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * The `--jobs`/XYLEM_JOBS default: the environment variable when
     * set to a positive integer, otherwise 1 (parallelism is always
     * opt-in).
     */
    static int defaultJobs();

    /** Clamp a jobs request: 0 -> defaultJobs(), negative -> 1. */
    static int resolveJobs(int jobs);

    /** Submit a callable; the future carries result or exception. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        post([task]() { (*task)(); });
        return fut;
    }

    /**
     * Run fn(i) for i in [0, n) on the pool and block until all
     * complete. The first exception (lowest index) is rethrown.
     * With a null/empty pool the loop runs inline.
     */
    static void parallelFor(ThreadPool *pool, std::size_t n,
                            const std::function<void(std::size_t)> &fn);

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    /** Type-erased enqueue with backpressure. */
    void post(Task task);

    void workerLoop(std::size_t index);
    bool tryTake(std::size_t self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake + shutdown + backpressure state.
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable space_available_;
    std::size_t pending_ = 0;   ///< queued + running tasks
    std::size_t max_pending_ = 0;
    std::size_t next_queue_ = 0; ///< round-robin submission cursor
    bool stopping_ = false;
};

} // namespace xylem::runtime

#endif // XYLEM_RUNTIME_THREAD_POOL_HPP
