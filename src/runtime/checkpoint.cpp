#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hpp"

namespace fs = std::filesystem;

namespace xylem::runtime {

namespace {

constexpr const char *kHeader = "xylem-sweep-manifest v1";

std::string
oneLine(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c == '\n' || c == '\r')
            c = ' ';
    return out;
}

} // namespace

std::string
SweepManifest::pathFor(const std::string &dir, std::uint64_t sweep_id)
{
    std::ostringstream os;
    os << dir << "/sweep-" << std::hex << sweep_id << ".manifest";
    return os.str();
}

bool
SweepManifest::save(const std::string &path) const
{
    std::ostringstream body;
    body << kHeader << "\n";
    body << "sweep " << std::hex << sweepId << std::dec << "\n";
    body << "tasks " << numTasks << "\n";
    body << "interrupted " << (interrupted ? 1 : 0) << "\n";
    for (const auto &[index, hash] : completed)
        body << "completed " << index << " " << std::hex << hash
             << std::dec << "\n";
    for (const auto &f : failures)
        body << "failed " << f.index << " " << f.attempts << " " << f.code
             << " " << oneLine(f.message) << "\n";

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("checkpoint: cannot open temp file '", tmp, "'");
            return false;
        }
        out << body.str();
        if (!out.good()) {
            warn("checkpoint: short write to '", tmp, "'");
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("checkpoint: rename into '", path, "' failed: ", ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<SweepManifest>
SweepManifest::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string line;
    if (!std::getline(in, line) || line != kHeader) {
        warn("checkpoint: '", path, "' is not a sweep manifest");
        return std::nullopt;
    }
    SweepManifest m;
    bool saw_sweep = false, saw_tasks = false;
    while (std::getline(in, line)) {
        std::istringstream is(line);
        std::string tag;
        is >> tag;
        if (tag == "sweep") {
            is >> std::hex >> m.sweepId >> std::dec;
            saw_sweep = !is.fail();
        } else if (tag == "tasks") {
            is >> m.numTasks;
            saw_tasks = !is.fail();
        } else if (tag == "interrupted") {
            int v = 0;
            is >> v;
            m.interrupted = v != 0;
        } else if (tag == "completed") {
            std::uint64_t index = 0, hash = 0;
            is >> index >> std::hex >> hash >> std::dec;
            if (is.fail()) {
                warn("checkpoint: malformed line in '", path, "': ", line);
                return std::nullopt;
            }
            m.completed[index] = hash;
        } else if (tag == "failed") {
            TaskFailure f;
            is >> f.index >> f.attempts >> f.code;
            if (is.fail()) {
                warn("checkpoint: malformed line in '", path, "': ", line);
                return std::nullopt;
            }
            std::getline(is >> std::ws, f.message);
            m.failures.push_back(std::move(f));
        } else if (!tag.empty()) {
            warn("checkpoint: unknown tag '", tag, "' in '", path, "'");
            return std::nullopt;
        }
    }
    if (!saw_sweep || !saw_tasks) {
        warn("checkpoint: '", path, "' is missing sweep/tasks headers");
        return std::nullopt;
    }
    return m;
}

SweepProgress::SweepProgress(std::string path, std::uint64_t sweep_id,
                             std::uint64_t num_tasks,
                             int checkpoint_interval)
    : path_(std::move(path)),
      interval_(checkpoint_interval > 0 ? checkpoint_interval : 16)
{
    manifest_.sweepId = sweep_id;
    manifest_.numTasks = num_tasks;
}

std::size_t
SweepProgress::adoptExisting()
{
    if (path_.empty())
        return 0;
    auto previous = SweepManifest::load(path_);
    if (!previous)
        return 0;
    if (previous->sweepId != manifest_.sweepId ||
        previous->numTasks != manifest_.numTasks) {
        warn("checkpoint: manifest '", path_,
             "' belongs to a different sweep; ignoring it");
        return 0;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    manifest_.completed = std::move(previous->completed);
    // Failures are not adopted: a resumed run retries previously
    // quarantined tasks from scratch (the fault may have been
    // environmental).
    return manifest_.completed.size();
}

void
SweepProgress::markCompleted(std::uint64_t index, std::uint64_t key_hash)
{
    std::lock_guard<std::mutex> lock(mutex_);
    manifest_.completed[index] = key_hash;
    if (++sinceSave_ >= interval_) {
        sinceSave_ = 0;
        saveLocked();
    }
}

void
SweepProgress::markFailed(TaskFailure failure)
{
    std::lock_guard<std::mutex> lock(mutex_);
    manifest_.failures.push_back(std::move(failure));
}

void
SweepProgress::finalise(bool interrupted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    manifest_.interrupted = interrupted;
    std::sort(manifest_.failures.begin(), manifest_.failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    saveLocked();
}

std::vector<TaskFailure>
SweepProgress::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto out = manifest_.failures;
    std::sort(out.begin(), out.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return out;
}

std::size_t
SweepProgress::completedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return manifest_.completed.size();
}

void
SweepProgress::saveLocked()
{
    if (!path_.empty())
        manifest_.save(path_);
}

} // namespace xylem::runtime
