#include "workloads/stream.hpp"

namespace xylem::workloads {

ThreadStream::ThreadStream(const Profile &profile, int thread_id,
                           std::uint64_t seed)
    : profile_(&profile),
      rng_(seed ^ (0x517cc1b727220a95ull *
                   static_cast<std::uint64_t>(thread_id + 1))),
      privateBase_(static_cast<std::uint64_t>(thread_id + 1) << 32),
      sharedBase_(1ull << 40),
      streamPtrPrivate_(privateBase_),
      streamPtrShared_(sharedBase_ +
                       (static_cast<std::uint64_t>(thread_id) << 22))
{
    profile.validate();
}

std::uint64_t
ThreadStream::genAddress()
{
    const Profile &p = *profile_;
    const bool shared = rng_.chance(p.sharedFraction);
    const std::uint64_t base = shared ? sharedBase_ : privateBase_;

    const double u = rng_.uniform();
    if (u < p.probHot) {
        // Hot region: always private (stack/locals-like).
        return privateBase_ + (rng_.below(hotBytes_) & ~7ull);
    }
    if (u < p.probHot + p.probWarm) {
        return base + hotBytes_ + (rng_.below(warmBytes_) & ~7ull);
    }
    // Cold region: streaming or random over the working set. A shared
    // cold region is sized as the union of all threads' sets.
    const std::uint64_t ws = p.workingSetBytes;
    const std::uint64_t cold_base = base + hotBytes_ + warmBytes_;
    if (rng_.chance(p.streamFraction)) {
        std::uint64_t &ptr = shared ? streamPtrShared_ : streamPtrPrivate_;
        if (ptr < cold_base || ptr >= cold_base + ws)
            ptr = cold_base + (rng_.below(ws) & ~63ull);
        const std::uint64_t addr = ptr;
        ptr += 64; // next cache line
        if (ptr >= cold_base + ws)
            ptr = cold_base;
        return addr;
    }
    return cold_base + (rng_.below(ws) & ~7ull);
}

Op
ThreadStream::next()
{
    const Profile &p = *profile_;
    Op op;
    op.instMiss = rng_.chance(p.l1iMissPerKilo / 1000.0);

    const double u = rng_.uniform();
    double edge = p.fracFpu;
    if (u < edge) {
        op.kind = Op::Kind::Fpu;
        return op;
    }
    edge += p.fracBranch;
    if (u < edge) {
        op.kind = Op::Kind::Branch;
        op.mispredict = rng_.chance(p.branchMispredictRate);
        return op;
    }
    edge += p.fracLoad;
    if (u < edge) {
        op.kind = Op::Kind::Load;
        op.addr = genAddress();
        return op;
    }
    edge += p.fracStore;
    if (u < edge) {
        op.kind = Op::Kind::Store;
        op.addr = genAddress();
        return op;
    }
    op.kind = Op::Kind::IntAlu;
    return op;
}

} // namespace xylem::workloads
