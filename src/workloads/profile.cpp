#include "workloads/profile.hpp"

#include "common/logging.hpp"

namespace xylem::workloads {

const char *
toString(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::Compute: return "compute";
      case WorkloadClass::Mixed: return "mixed";
      case WorkloadClass::Memory: return "memory";
    }
    return "?";
}

void
Profile::validate() const
{
    XYLEM_ASSERT(fracFpu >= 0 && fracBranch >= 0 && fracLoad >= 0 &&
                     fracStore >= 0 && fracAlu() >= 0,
                 "instruction mix of ", name, " out of range");
    XYLEM_ASSERT(probHot >= 0 && probWarm >= 0 && probCold >= 0,
                 "locality probabilities of ", name, " out of range");
    const double p = probHot + probWarm + probCold;
    XYLEM_ASSERT(p > 0.999 && p < 1.001,
                 "locality probabilities of ", name, " must sum to 1, got ",
                 p);
    XYLEM_ASSERT(issueEfficiency > 0.0 && issueEfficiency <= 1.0,
                 "issue efficiency of ", name, " out of range");
    XYLEM_ASSERT(mlp >= 1.0, "MLP of ", name, " must be >= 1");
    XYLEM_ASSERT(workingSetBytes >= (1u << 20),
                 "working set of ", name, " suspiciously small");
}

namespace {

/**
 * Construct the 17-application suite.
 *
 * Classification notes (matching the paper's qualitative statements):
 *  - Cholesky, Barnes, Radiosity and LU(NAS) run close to Tj,max in
 *    the base design at 2.4 GHz (§7.2) — highest issue efficiency
 *    and FPU intensity here.
 *  - FT is called out as memory-intensive (+10 °C from 2.4 to
 *    3.5 GHz), LU(NAS) as compute-intensive (+30 °C).
 *  - IS is the memory-intensive partner of the λ-aware placement
 *    experiment (§7.6.1); LU(NAS) the compute-intensive one.
 */
std::vector<Profile>
makeSuite()
{
    std::vector<Profile> apps;
    auto add = [&apps](Profile p) {
        p.validate();
        apps.push_back(std::move(p));
    };

    const auto MB = [](double m) {
        return static_cast<std::uint64_t>(m * 1024.0 * 1024.0);
    };

    Profile p;

    // ---------------- SPLASH-2 ----------------
    p = {};
    p.name = "FFT"; p.suite = "SPLASH-2"; p.klass = WorkloadClass::Mixed;
    p.fracFpu = 0.22; p.fracBranch = 0.10; p.fracLoad = 0.24;
    p.fracStore = 0.12; p.branchMispredictRate = 0.012;
    p.issueEfficiency = 0.48; p.l1iMissPerKilo = 1.5;
    p.probHot = 0.93; p.probWarm = 0.05; p.probCold = 0.02;
    p.workingSetBytes = MB(8); p.streamFraction = 0.7;
    p.sharedFraction = 0.15; p.mlp = 3.0;
    add(p);

    p = {};
    p.name = "Cholesky"; p.suite = "SPLASH-2";
    p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.28; p.fracBranch = 0.08; p.fracLoad = 0.22;
    p.fracStore = 0.10; p.branchMispredictRate = 0.008;
    p.issueEfficiency = 0.60; p.l1iMissPerKilo = 1.2;
    p.probHot = 0.975; p.probWarm = 0.020; p.probCold = 0.005;
    p.workingSetBytes = MB(4); p.streamFraction = 0.5;
    p.sharedFraction = 0.10; p.mlp = 1.8;
    add(p);

    p = {};
    p.name = "LU"; p.suite = "SPLASH-2"; p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.30; p.fracBranch = 0.08; p.fracLoad = 0.22;
    p.fracStore = 0.10; p.branchMispredictRate = 0.006;
    p.issueEfficiency = 0.56; p.l1iMissPerKilo = 1.0;
    p.probHot = 0.970; p.probWarm = 0.025; p.probCold = 0.005;
    p.workingSetBytes = MB(4); p.streamFraction = 0.7;
    p.sharedFraction = 0.10; p.mlp = 2.0;
    add(p);

    p = {};
    p.name = "Radix"; p.suite = "SPLASH-2"; p.klass = WorkloadClass::Memory;
    p.fracFpu = 0.02; p.fracBranch = 0.10; p.fracLoad = 0.28;
    p.fracStore = 0.18; p.branchMispredictRate = 0.035;
    p.issueEfficiency = 0.46; p.l1iMissPerKilo = 1.0;
    p.probHot = 0.90; p.probWarm = 0.06; p.probCold = 0.04;
    p.workingSetBytes = MB(16); p.streamFraction = 0.55;
    p.sharedFraction = 0.10; p.mlp = 4.0;
    add(p);

    p = {};
    p.name = "Barnes"; p.suite = "SPLASH-2";
    p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.26; p.fracBranch = 0.12; p.fracLoad = 0.24;
    p.fracStore = 0.08; p.branchMispredictRate = 0.018;
    p.issueEfficiency = 0.61; p.l1iMissPerKilo = 2.0;
    p.probHot = 0.975; p.probWarm = 0.020; p.probCold = 0.005;
    p.workingSetBytes = MB(2); p.streamFraction = 0.3;
    p.sharedFraction = 0.20; p.mlp = 1.6;
    add(p);

    p = {};
    p.name = "FMM"; p.suite = "SPLASH-2"; p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.28; p.fracBranch = 0.10; p.fracLoad = 0.24;
    p.fracStore = 0.08; p.branchMispredictRate = 0.015;
    p.issueEfficiency = 0.56; p.l1iMissPerKilo = 2.0;
    p.probHot = 0.970; p.probWarm = 0.025; p.probCold = 0.005;
    p.workingSetBytes = MB(4); p.streamFraction = 0.4;
    p.sharedFraction = 0.15; p.mlp = 1.8;
    add(p);

    p = {};
    p.name = "Radiosity"; p.suite = "SPLASH-2";
    p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.22; p.fracBranch = 0.12; p.fracLoad = 0.24;
    p.fracStore = 0.10; p.branchMispredictRate = 0.02;
    p.issueEfficiency = 0.60; p.l1iMissPerKilo = 3.0;
    p.probHot = 0.970; p.probWarm = 0.025; p.probCold = 0.005;
    p.workingSetBytes = MB(4); p.streamFraction = 0.3;
    p.sharedFraction = 0.25; p.mlp = 1.6;
    add(p);

    p = {};
    p.name = "Raytrace"; p.suite = "SPLASH-2";
    p.klass = WorkloadClass::Mixed;
    p.fracFpu = 0.20; p.fracBranch = 0.12; p.fracLoad = 0.26;
    p.fracStore = 0.06; p.branchMispredictRate = 0.028;
    p.issueEfficiency = 0.50; p.l1iMissPerKilo = 4.0;
    p.probHot = 0.94; p.probWarm = 0.045; p.probCold = 0.015;
    p.workingSetBytes = MB(8); p.streamFraction = 0.3;
    p.sharedFraction = 0.15; p.mlp = 1.8;
    add(p);

    // ---------------- PARSEC ----------------
    p = {};
    p.name = "Fluid."; p.suite = "PARSEC"; p.klass = WorkloadClass::Mixed;
    p.fracFpu = 0.24; p.fracBranch = 0.08; p.fracLoad = 0.25;
    p.fracStore = 0.10; p.branchMispredictRate = 0.012;
    p.issueEfficiency = 0.50; p.l1iMissPerKilo = 1.5;
    p.probHot = 0.94; p.probWarm = 0.045; p.probCold = 0.015;
    p.workingSetBytes = MB(8); p.streamFraction = 0.5;
    p.sharedFraction = 0.15; p.mlp = 2.2;
    add(p);

    p = {};
    p.name = "Black."; p.suite = "PARSEC"; p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.32; p.fracBranch = 0.06; p.fracLoad = 0.22;
    p.fracStore = 0.08; p.branchMispredictRate = 0.004;
    p.issueEfficiency = 0.55; p.l1iMissPerKilo = 0.5;
    p.probHot = 0.980; p.probWarm = 0.015; p.probCold = 0.005;
    p.workingSetBytes = MB(1); p.streamFraction = 0.8;
    p.sharedFraction = 0.02; p.mlp = 2.0;
    add(p);

    // ---------------- NAS Parallel Benchmarks ----------------
    p = {};
    p.name = "BT"; p.suite = "NPB"; p.klass = WorkloadClass::Mixed;
    p.fracFpu = 0.30; p.fracBranch = 0.06; p.fracLoad = 0.24;
    p.fracStore = 0.12; p.branchMispredictRate = 0.006;
    p.issueEfficiency = 0.53; p.l1iMissPerKilo = 1.2;
    p.probHot = 0.95; p.probWarm = 0.035; p.probCold = 0.015;
    p.workingSetBytes = MB(12); p.streamFraction = 0.7;
    p.sharedFraction = 0.10; p.mlp = 2.6;
    add(p);

    p = {};
    p.name = "CG"; p.suite = "NPB"; p.klass = WorkloadClass::Memory;
    p.fracFpu = 0.18; p.fracBranch = 0.08; p.fracLoad = 0.30;
    p.fracStore = 0.06; p.branchMispredictRate = 0.01;
    p.issueEfficiency = 0.40; p.l1iMissPerKilo = 0.8;
    p.probHot = 0.86; p.probWarm = 0.08; p.probCold = 0.06;
    p.workingSetBytes = MB(24); p.streamFraction = 0.4;
    p.sharedFraction = 0.20; p.mlp = 3.5;
    add(p);

    p = {};
    p.name = "FT"; p.suite = "NPB"; p.klass = WorkloadClass::Memory;
    p.fracFpu = 0.22; p.fracBranch = 0.06; p.fracLoad = 0.26;
    p.fracStore = 0.12; p.branchMispredictRate = 0.006;
    p.issueEfficiency = 0.42; p.l1iMissPerKilo = 0.8;
    p.probHot = 0.87; p.probWarm = 0.08; p.probCold = 0.05;
    p.workingSetBytes = MB(32); p.streamFraction = 0.7;
    p.sharedFraction = 0.15; p.mlp = 4.0;
    add(p);

    p = {};
    p.name = "IS"; p.suite = "NPB"; p.klass = WorkloadClass::Memory;
    p.fracFpu = 0.02; p.fracBranch = 0.08; p.fracLoad = 0.30;
    p.fracStore = 0.16; p.branchMispredictRate = 0.03;
    p.issueEfficiency = 0.38; p.l1iMissPerKilo = 0.5;
    p.probHot = 0.85; p.probWarm = 0.08; p.probCold = 0.07;
    p.workingSetBytes = MB(24); p.streamFraction = 0.4;
    p.sharedFraction = 0.20; p.mlp = 4.0;
    add(p);

    p = {};
    p.name = "LU(NAS)"; p.suite = "NPB"; p.klass = WorkloadClass::Compute;
    p.fracFpu = 0.32; p.fracBranch = 0.06; p.fracLoad = 0.22;
    p.fracStore = 0.10; p.branchMispredictRate = 0.005;
    p.issueEfficiency = 0.60; p.l1iMissPerKilo = 0.8;
    p.probHot = 0.980; p.probWarm = 0.015; p.probCold = 0.005;
    p.workingSetBytes = MB(2); p.streamFraction = 0.7;
    p.sharedFraction = 0.08; p.mlp = 1.8;
    add(p);

    p = {};
    p.name = "MG"; p.suite = "NPB"; p.klass = WorkloadClass::Memory;
    p.fracFpu = 0.24; p.fracBranch = 0.06; p.fracLoad = 0.28;
    p.fracStore = 0.10; p.branchMispredictRate = 0.006;
    p.issueEfficiency = 0.44; p.l1iMissPerKilo = 0.8;
    p.probHot = 0.90; p.probWarm = 0.06; p.probCold = 0.04;
    p.workingSetBytes = MB(28); p.streamFraction = 0.7;
    p.sharedFraction = 0.10; p.mlp = 3.6;
    add(p);

    p = {};
    p.name = "SP"; p.suite = "NPB"; p.klass = WorkloadClass::Mixed;
    p.fracFpu = 0.28; p.fracBranch = 0.06; p.fracLoad = 0.25;
    p.fracStore = 0.11; p.branchMispredictRate = 0.006;
    p.issueEfficiency = 0.50; p.l1iMissPerKilo = 1.0;
    p.probHot = 0.93; p.probWarm = 0.05; p.probCold = 0.02;
    p.workingSetBytes = MB(16); p.streamFraction = 0.7;
    p.sharedFraction = 0.10; p.mlp = 2.8;
    add(p);

    return apps;
}

} // namespace

const std::vector<Profile> &
suite()
{
    static const std::vector<Profile> apps = makeSuite();
    return apps;
}

const Profile &
profileByName(const std::string &name)
{
    for (const auto &p : suite())
        if (p.name == name)
            return p;
    fatal("unknown workload '", name, "'");
}

} // namespace xylem::workloads
