/**
 * @file
 * Synthetic per-thread instruction/address streams generated from a
 * workload profile. The stream is deterministic given (profile,
 * thread id, seed), so simulation results are reproducible.
 */

#ifndef XYLEM_WORKLOADS_STREAM_HPP
#define XYLEM_WORKLOADS_STREAM_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "workloads/profile.hpp"

namespace xylem::workloads {

/** One dynamic micro-operation. */
struct Op
{
    enum class Kind
    {
        IntAlu,
        Fpu,
        Branch,
        Load,
        Store,
    };

    Kind kind = Kind::IntAlu;
    bool mispredict = false;    ///< only meaningful for branches
    std::uint64_t addr = 0;     ///< only meaningful for loads/stores
    bool instMiss = false;      ///< this op missed in the L1I
};

/**
 * Address-space layout used by the generator:
 *  - per-thread private regions at (thread + 1) << 32,
 *  - a shared region common to all threads at 1 << 40.
 * Within a region, accesses target a hot (L1-resident), warm
 * (L2-resident) or cold (working-set sized) sub-region according to
 * the profile's locality probabilities; a fraction of cold accesses
 * stream sequentially to create DRAM row locality.
 */
class ThreadStream
{
  public:
    ThreadStream(const Profile &profile, int thread_id,
                 std::uint64_t seed);

    /** Generate the next micro-op. */
    Op next();

    const Profile &profile() const { return *profile_; }

  private:
    std::uint64_t genAddress();

    const Profile *profile_;
    Rng rng_;
    std::uint64_t privateBase_;
    std::uint64_t sharedBase_;
    std::uint64_t streamPtrPrivate_;
    std::uint64_t streamPtrShared_;

    // Region sizes.
    static constexpr std::uint64_t hotBytes_ = 16 << 10;  // fits L1D
    static constexpr std::uint64_t warmBytes_ = 96 << 10; // fits L2
};

} // namespace xylem::workloads

#endif // XYLEM_WORKLOADS_STREAM_HPP
