/**
 * @file
 * Synthetic workload profiles standing in for the paper's SPLASH-2,
 * PARSEC and NAS Parallel Benchmark applications (§6.3).
 *
 * Each profile fixes the architectural quantities the Xylem pipeline
 * consumes — instruction mix, locality structure, sharing, and
 * memory-level parallelism — calibrated so that the simulated base
 * design point reproduces the paper's aggregate behaviour (processor
 * die 8-24 W, memory dies 2-4.5 W at 2.4 GHz; compute-bound codes gain
 * ≈30 °C from 2.4 to 3.5 GHz, memory-bound codes ≈10 °C).
 */

#ifndef XYLEM_WORKLOADS_PROFILE_HPP
#define XYLEM_WORKLOADS_PROFILE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace xylem::workloads {

/** Coarse workload class (used for reporting and λ-aware placement). */
enum class WorkloadClass
{
    Compute,  ///< cache-resident, high IPC, thermally demanding
    Mixed,    ///< moderate memory traffic
    Memory,   ///< DRAM-bandwidth bound
};

const char *toString(WorkloadClass c);

/** A synthetic application profile. */
struct Profile
{
    std::string name;   ///< e.g. "LU(NAS)"
    std::string suite;  ///< "SPLASH-2", "PARSEC" or "NPB"
    WorkloadClass klass = WorkloadClass::Mixed;

    // Instruction mix (fractions of dynamic instructions; the
    // remainder after fpu/branch/load/store is integer ALU work).
    double fracFpu = 0.2;
    double fracBranch = 0.1;
    double fracLoad = 0.24;
    double fracStore = 0.1;
    double branchMispredictRate = 0.02;

    /** Issue efficiency: base IPC = issueWidth * issueEfficiency. */
    double issueEfficiency = 0.5;

    /** L1I misses per kilo-instruction. */
    double l1iMissPerKilo = 2.0;

    // Data locality: each memory access targets the hot (L1-resident),
    // warm (L2-resident) or cold (DRAM-bound) region.
    double probHot = 0.95;
    double probWarm = 0.035;
    double probCold = 0.015;

    /** Per-thread cold working set [bytes]. */
    std::uint64_t workingSetBytes = 8ull << 20;

    /** Fraction of cold accesses that stream sequentially. */
    double streamFraction = 0.5;

    /** Fraction of accesses that target the shared region. */
    double sharedFraction = 0.15;

    /** Memory-level parallelism: overlap factor for DRAM stalls. */
    double mlp = 2.0;

    double fracAlu() const
    {
        return 1.0 - fracFpu - fracBranch - fracLoad - fracStore;
    }

    /** Validate internal consistency (fractions in range, etc.). */
    void validate() const;
};

/** All 17 applications of the paper's evaluation (§6.3). */
const std::vector<Profile> &suite();

/** Look up a profile by name; throws if unknown. */
const Profile &profileByName(const std::string &name);

} // namespace xylem::workloads

#endif // XYLEM_WORKLOADS_PROFILE_HPP
