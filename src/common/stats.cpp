#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace xylem {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        XYLEM_ASSERT(x > 0.0, "geomean needs positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    XYLEM_ASSERT(!xs.empty(), "maxOf needs a non-empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

double
minOf(const std::vector<double> &xs)
{
    XYLEM_ASSERT(!xs.empty(), "minOf needs a non-empty vector");
    return *std::min_element(xs.begin(), xs.end());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++n_;
}

double
Accumulator::min() const
{
    XYLEM_ASSERT(n_ > 0, "Accumulator::min on empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    XYLEM_ASSERT(n_ > 0, "Accumulator::max on empty accumulator");
    return max_;
}

} // namespace xylem
