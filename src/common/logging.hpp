/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of
 * gem5's base/logging.hh.
 *
 * - fatal():   the run cannot continue due to a user error (bad
 *              configuration, invalid arguments). Throws FatalError.
 * - panic():   something happened that should never happen regardless
 *              of user input (a library bug). Throws PanicError.
 * - warn():    something is questionable but the run can continue.
 * - inform():  plain status output.
 *
 * Both fatal() and panic() throw rather than abort so that library
 * users (and the test suite) can observe and recover from them.
 */

#ifndef XYLEM_COMMON_LOGGING_HPP
#define XYLEM_COMMON_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace xylem {

/** Error thrown by fatal(): a user/configuration problem. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error("fatal: " + what_arg)
    {}
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error("panic: " + what_arg)
    {}
};

namespace detail {

/** Fold a pack of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a tagged message on stderr (inform/warn). */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/** Global verbosity switch; when false, inform() is suppressed. */
void setVerbose(bool verbose);
bool verbose();

/** Report a non-recoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Report a violated internal invariant. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Warn about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Print a status message (suppressed unless verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (verbose())
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

} // namespace xylem

/**
 * Assert a library invariant; active in all build types.
 * On failure, throws PanicError with the failing condition and location.
 */
#define XYLEM_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::xylem::panic("assertion '", #cond, "' failed at ", __FILE__,  \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

#endif // XYLEM_COMMON_LOGGING_HPP
