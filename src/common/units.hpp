/**
 * @file
 * Unit helpers and physical constants used throughout Xylem.
 *
 * All quantities in the library are kept in SI base units:
 * metres, watts, kelvin (for temperature *differences*; absolute
 * temperatures are degrees Celsius where noted), seconds, hertz.
 * The helpers below make the literal values in configuration code
 * self-describing, e.g. `100.0 * units::um` instead of `100e-6`.
 */

#ifndef XYLEM_COMMON_UNITS_HPP
#define XYLEM_COMMON_UNITS_HPP

namespace xylem::units {

/// Length units, expressed in metres.
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

/// Area units, expressed in square metres.
inline constexpr double mm2 = mm * mm;
inline constexpr double um2 = um * um;

/// Time units, expressed in seconds.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;

/// Frequency units, expressed in hertz.
inline constexpr double Hz = 1.0;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

/// Power units, expressed in watts.
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;

/// Energy units, expressed in joules.
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;

/**
 * Convert a layer thermal resistance-per-unit-area in the paper's
 * mm^2-K/W convention into SI m^2-K/W.
 */
inline constexpr double mm2KperW = 1e-6;

} // namespace xylem::units

#endif // XYLEM_COMMON_UNITS_HPP
