#include "common/task_context.hpp"

#include "common/error.hpp"

namespace xylem {

namespace {

thread_local TaskContext *tls_context = nullptr;

} // namespace

TaskContext *
currentTaskContext()
{
    return tls_context;
}

ScopedTaskContext::ScopedTaskContext(TaskContext &ctx)
    : previous_(tls_context)
{
    tls_context = &ctx;
}

ScopedTaskContext::~ScopedTaskContext()
{
    tls_context = previous_;
}

void
taskCheckpoint()
{
    const TaskContext *ctx = tls_context;
    if (ctx && ctx->deadlineExpired())
        raise(ErrorCode::DeadlineExceeded,
              "task exceeded its wall-clock deadline");
}

} // namespace xylem
