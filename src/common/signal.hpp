/**
 * @file
 * Process-wide cooperative shutdown flag shared by every long-running
 * driver (the sweep runner's checkpoint drain, the simulation
 * service's graceful drain).
 *
 * Exactly one SIGINT/SIGTERM disposition exists per process; before
 * this header both SweepRunner and any embedding daemon would have
 * raced to install their own handler and only one of them would have
 * observed the signal. ShutdownSignal owns the handler (installed
 * once, idempotently) and every subsystem polls the same flag, so a
 * sweep running inside a draining daemon stops too.
 *
 * The handler only stores into an atomic (async-signal-safe) and is
 * installed without SA_RESTART, so blocking syscalls (accept, poll,
 * read) return EINTR and their callers re-check requested().
 */

#ifndef XYLEM_COMMON_SIGNAL_HPP
#define XYLEM_COMMON_SIGNAL_HPP

namespace xylem {

class ShutdownSignal
{
  public:
    /**
     * Install the SIGINT/SIGTERM handler that requests a cooperative
     * shutdown. Idempotent: repeated calls (from the sweep runner and
     * the service in one process) install exactly one handler.
     */
    static void install();

    /** Has a shutdown been requested (signal or request())? */
    static bool requested();

    /** Programmatic shutdown request (tests, embedding applications). */
    static void request();

    /** Reset the flag (a new run after a handled interrupt). */
    static void clear();
};

} // namespace xylem

#endif // XYLEM_COMMON_SIGNAL_HPP
