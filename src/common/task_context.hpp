/**
 * @file
 * The thread-local task context: how the sweep runner's resilience
 * policy reaches code that runs deep inside a task (the CG loop, the
 * system evaluation pipeline) without threading a parameter through
 * every signature or creating a runtime→thermal dependency cycle.
 *
 * The runner installs a ScopedTaskContext around each task attempt;
 * the solver and the evaluation pipeline consult currentTaskContext()
 * (null outside any managed task, in which case behaviour is exactly
 * the pre-fault-tolerance default: warn on non-convergence, no
 * deadline, no escalation).
 *
 * Escalation ladder (one rung per solver-level failure):
 *   0  normal solve — warm starts, configured solver/preconditioner
 *   1  cold solve — warm starts disabled
 *   2  alternate method, still cold — a multigrid configuration
 *      (solver or preconditioner) drops to line-CG, plain CG flips
 *      Jacobi <-> VerticalLine; for the default multigrid setup the
 *      ladder thus reads MG-CG → cold MG-CG → line-CG → dense
 *   3  dense direct solve — the verification subsystem's Cholesky
 *      reference solver replaces the iteration entirely (small grids
 *      only)
 */

#ifndef XYLEM_COMMON_TASK_CONTEXT_HPP
#define XYLEM_COMMON_TASK_CONTEXT_HPP

#include <chrono>
#include <cstdint>

namespace xylem {

/** Named rungs of the solver escalation ladder. */
enum class Escalation : int
{
    Normal = 0,
    ColdStart = 1,
    AlternatePreconditioner = 2,
    DenseSolve = 3,
};

constexpr int kMaxEscalation = static_cast<int>(Escalation::DenseSolve);

/** Per-attempt execution policy installed by the sweep runner. */
struct TaskContext
{
    /** Current rung of the escalation ladder (0 = normal). */
    int escalation = 0;

    /**
     * When true, a solve that misses its tolerance throws
     * Error(SolverNonConvergence) instead of warning, so the runner
     * can escalate; direct (non-runner) solves keep the warn-only
     * behaviour.
     */
    bool strictSolver = false;

    /** Fault injection: force the next CG solves to miss tolerance. */
    bool forceCgNonConvergence = false;

    /** Cooperative wall-clock deadline; zero time_point = none. */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;

    /**
     * Ambient override of the solver's intra-solve thread count
     * (0 = no override, use SolverOptions::threads). Installed by the
     * service's load-adaptive policy: a deep queue pins each solve to
     * 1 thread (the workers already saturate the cores), a shallow
     * queue grants the configured count for latency. Thread count
     * never changes results (DESIGN.md §17), so this is purely a
     * scheduling knob.
     */
    int solverThreads = 0;

    bool coldStart() const
    {
        return escalation >= static_cast<int>(Escalation::ColdStart);
    }
    bool alternatePreconditioner() const
    {
        return escalation >=
               static_cast<int>(Escalation::AlternatePreconditioner);
    }
    bool denseSolve() const
    {
        return escalation >= static_cast<int>(Escalation::DenseSolve);
    }

    bool deadlineExpired() const
    {
        return hasDeadline &&
               std::chrono::steady_clock::now() >= deadline;
    }
};

/** The installed context, or null outside any managed task. */
TaskContext *currentTaskContext();

/**
 * RAII installer; nesting restores the previous context (a task may
 * itself run a nested runner, e.g. boost phase 2 inside phase 1).
 */
class ScopedTaskContext
{
  public:
    explicit ScopedTaskContext(TaskContext &ctx);
    ~ScopedTaskContext();
    ScopedTaskContext(const ScopedTaskContext &) = delete;
    ScopedTaskContext &operator=(const ScopedTaskContext &) = delete;

  private:
    TaskContext *previous_;
};

/**
 * Cooperative cancellation point for long-running task code (the CG
 * loop calls it every few iterations; custom tasks may call it from
 * their own loops). Throws Error(DeadlineExceeded) when the current
 * task's deadline has passed; no-op outside a managed task.
 */
void taskCheckpoint();

} // namespace xylem

#endif // XYLEM_COMMON_TASK_CONTEXT_HPP
