#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace xylem {

namespace {
std::atomic<bool> g_verbose{false};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::cerr << tag << ": " << msg << "\n";
}

} // namespace detail

} // namespace xylem
