#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace xylem {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    XYLEM_ASSERT(n > 0, "Rng::below needs a positive bound");
    // Modulo bias is negligible for n << 2^64 (all our uses).
    return (*this)() % n;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t
Rng::geometric(double p)
{
    XYLEM_ASSERT(p > 0.0 && p <= 1.0, "geometric needs p in (0, 1]");
    if (p >= 1.0)
        return 0;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace xylem
