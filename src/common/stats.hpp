/**
 * @file
 * Small statistics helpers used by the experiment harnesses:
 * arithmetic mean, geometric mean, min/max, and a streaming
 * accumulator.
 */

#ifndef XYLEM_COMMON_STATS_HPP
#define XYLEM_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace xylem {

/** Arithmetic mean of a vector; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean of a vector of positive values; 0 for an empty
 * vector. Values must be > 0.
 */
double geomean(const std::vector<double> &xs);

/** Sample maximum; requires a non-empty vector. */
double maxOf(const std::vector<double> &xs);

/** Sample minimum; requires a non-empty vector. */
double minOf(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/**
 * Streaming min/max/mean accumulator.
 *
 * Used for per-step statistics (e.g. transient hotspot traces) where
 * storing every sample would be wasteful.
 */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace xylem

#endif // XYLEM_COMMON_STATS_HPP
