/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use our own xoshiro256** implementation rather than std::mt19937 so
 * that streams are cheap to fork per core/thread and results are
 * reproducible across standard libraries.
 */

#ifndef XYLEM_COMMON_RNG_HPP
#define XYLEM_COMMON_RNG_HPP

#include <cstdint>

namespace xylem {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the essential parts of the UniformRandomBitGenerator
 * concept (operator(), min, max) so it can be used with <random>
 * distributions if needed, though the convenience members below cover
 * everything the library uses.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (deterministic, no cache). */
    double normal();

    /** Geometrically distributed count with success probability p. */
    std::uint64_t geometric(double p);

    /**
     * Fork an independent child stream. Children seeded from distinct
     * draws of this stream are statistically independent for our
     * purposes.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace xylem

#endif // XYLEM_COMMON_RNG_HPP
