/**
 * @file
 * Plain-text table printer used by the bench binaries to emit the
 * paper's rows/series in a readable, diffable format.
 */

#ifndef XYLEM_COMMON_TABLE_HPP
#define XYLEM_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace xylem {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"app", "base", "bank", "banke"});
 *   t.addRow({"FFT", "92.1", "87.3", "84.0"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render the table (headers, separator, rows) to a stream. */
    void print(std::ostream &os) const;

    /** Render the table as comma-separated values. */
    void printCsv(std::ostream &os) const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xylem

#endif // XYLEM_COMMON_TABLE_HPP
