#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace xylem {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    XYLEM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    XYLEM_ASSERT(cells.size() == headers_.size(),
                 "row width ", cells.size(), " != header width ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::num(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

} // namespace xylem
