/**
 * @file
 * Structured error taxonomy for the runtime and solver entry points.
 *
 * Ad-hoc `std::runtime_error`s carry a message but no machine-readable
 * identity, so a retry policy cannot tell "the solver missed its
 * tolerance" (worth escalating to a stronger method) from "the task
 * code is broken" (worth retrying once, then quarantining). Error
 * attaches an ErrorCode to every failure and supports context
 * chaining: each layer that catches-and-rethrows appends one "while
 * ..." frame, so a failure deep in the CG loop surfaces as
 *
 *   solver-nonconvergence: residual 3.2e-4 after 50000 iterations
 *     (while solving steady state; while running sweep task 17)
 *
 * Error derives from std::runtime_error, so existing catch sites and
 * EXPECT_THROW(..., std::runtime_error) tests keep working. The legacy
 * fatal()/panic() helpers in logging.hpp remain for user-config and
 * internal-invariant failures; Error covers the *recoverable* failure
 * surface that the fault-tolerance layer routes through retry,
 * escalation, and quarantine.
 */

#ifndef XYLEM_COMMON_ERROR_HPP
#define XYLEM_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace xylem {

/** Machine-readable identity of a structured failure. */
enum class ErrorCode
{
    Unknown,              ///< unclassified failure
    Config,               ///< bad user input (flag, spec, file)
    Io,                   ///< filesystem/serialisation failure
    SolverNonConvergence, ///< CG missed its tolerance (escalatable)
    SolverBreakdown,      ///< CG lost positive definiteness (escalatable)
    DeadlineExceeded,     ///< cooperative task deadline fired (escalatable)
    Interrupted,          ///< SIGINT/SIGTERM drained the sweep
    CacheCorrupt,         ///< cache record failed to decode
    CacheUnwritable,      ///< cache directory cannot persist records
    InjectedFault,        ///< deterministic fault-injection harness
    TaskFailed,           ///< aggregate sweep-task failure
    Protocol,             ///< malformed service request frame
    Overloaded,           ///< admission control shed the request
    ConnectionLost,       ///< peer reset / transport failure mid-exchange
    Unavailable,          ///< no backend shard can take the request
};

/** Stable lower-case token for manifests, logs, and tests. */
const char *toString(ErrorCode code);

/** A failure with a code and a chain of context frames. */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, std::string message);

    ErrorCode code() const { return code_; }
    /** The original message, without code prefix or context chain. */
    const std::string &message() const { return message_; }
    /** Context frames, innermost first. */
    const std::vector<std::string> &context() const { return context_; }

    /** Append one "while ..." frame; returns *this for rethrow. */
    Error &addContext(std::string frame);

    /** "<code>: <message> (while ...; while ...)" */
    const char *what() const noexcept override;

  private:
    void rebuild();

    ErrorCode code_;
    std::string message_;
    std::vector<std::string> context_;
    std::string composed_;
};

/** Throw an Error with a streamed message. */
template <typename... Args>
[[noreturn]] void
raise(ErrorCode code, Args &&...args)
{
    throw Error(code, detail::concat(std::forward<Args>(args)...));
}

/**
 * Rethrow `e` with one more context frame. Usage:
 *   catch (Error &e) { rethrowWithContext(e, "running task ", i); }
 */
template <typename... Args>
[[noreturn]] void
rethrowWithContext(Error &e, Args &&...args)
{
    throw e.addContext(detail::concat(std::forward<Args>(args)...));
}

} // namespace xylem

#endif // XYLEM_COMMON_ERROR_HPP
