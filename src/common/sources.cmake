set(XYLEM_COMMON_SOURCES
    ${CMAKE_CURRENT_LIST_DIR}/error.cpp
    ${CMAKE_CURRENT_LIST_DIR}/logging.cpp
    ${CMAKE_CURRENT_LIST_DIR}/task_context.cpp
    ${CMAKE_CURRENT_LIST_DIR}/rng.cpp
    ${CMAKE_CURRENT_LIST_DIR}/signal.cpp
    ${CMAKE_CURRENT_LIST_DIR}/stats.cpp
    ${CMAKE_CURRENT_LIST_DIR}/table.cpp)
