#include "common/signal.hpp"

#include <atomic>
#include <csignal>

namespace xylem {

namespace {

/// Set from the signal handler; only async-signal-safe ops allowed.
std::atomic<bool> g_shutdown_requested{false};

extern "C" void
xylemShutdownSignalHandler(int)
{
    g_shutdown_requested.store(true, std::memory_order_relaxed);
}

} // namespace

void
ShutdownSignal::install()
{
    static std::atomic<bool> installed{false};
    if (installed.exchange(true))
        return;
    struct sigaction action = {};
    action.sa_handler = xylemShutdownSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: interrupt blocking syscalls
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
ShutdownSignal::requested()
{
    return g_shutdown_requested.load(std::memory_order_relaxed);
}

void
ShutdownSignal::request()
{
    g_shutdown_requested.store(true, std::memory_order_relaxed);
}

void
ShutdownSignal::clear()
{
    g_shutdown_requested.store(false, std::memory_order_relaxed);
}

} // namespace xylem
