#include "common/error.hpp"

namespace xylem {

const char *
toString(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Unknown:
        return "unknown";
    case ErrorCode::Config:
        return "config";
    case ErrorCode::Io:
        return "io";
    case ErrorCode::SolverNonConvergence:
        return "solver-nonconvergence";
    case ErrorCode::SolverBreakdown:
        return "solver-breakdown";
    case ErrorCode::DeadlineExceeded:
        return "deadline-exceeded";
    case ErrorCode::Interrupted:
        return "interrupted";
    case ErrorCode::CacheCorrupt:
        return "cache-corrupt";
    case ErrorCode::CacheUnwritable:
        return "cache-unwritable";
    case ErrorCode::InjectedFault:
        return "injected-fault";
    case ErrorCode::TaskFailed:
        return "task-failed";
    case ErrorCode::Protocol:
        return "protocol";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::ConnectionLost:
        return "connection-lost";
    case ErrorCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

Error::Error(ErrorCode code, std::string message)
    : std::runtime_error(message), code_(code), message_(std::move(message))
{
    rebuild();
}

Error &
Error::addContext(std::string frame)
{
    context_.push_back(std::move(frame));
    rebuild();
    return *this;
}

void
Error::rebuild()
{
    composed_ = std::string(toString(code_)) + ": " + message_;
    if (!context_.empty()) {
        composed_ += " (";
        for (std::size_t i = 0; i < context_.size(); ++i) {
            if (i)
                composed_ += "; ";
            composed_ += "while " + context_[i];
        }
        composed_ += ")";
    }
}

const char *
Error::what() const noexcept
{
    return composed_.c_str();
}

} // namespace xylem
