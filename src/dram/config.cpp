#include "dram/config.hpp"

#include "common/logging.hpp"

namespace xylem::dram {

namespace {

/** Integer log2 for exact powers of two. */
int
log2Exact(std::uint64_t v)
{
    XYLEM_ASSERT(v != 0 && (v & (v - 1)) == 0, "value ", v,
                 " must be a power of two");
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

Address
decodeAddress(const Geometry &g, std::uint64_t byte_addr)
{
    std::uint64_t a = byte_addr >> log2Exact(
                          static_cast<std::uint64_t>(g.lineBytes));
    Address out{};
    const auto take = [&a](int bits) {
        const std::uint64_t v = a & ((1ull << bits) - 1);
        a >>= bits;
        return v;
    };
    out.channel = static_cast<int>(
        take(log2Exact(static_cast<std::uint64_t>(g.channels))));
    out.bank = static_cast<int>(
        take(log2Exact(static_cast<std::uint64_t>(g.banksPerRank))));
    out.column = static_cast<int>(take(log2Exact(
        static_cast<std::uint64_t>(g.linesPerPage()))));
    // Ranks (dies) need not be a power of two (the sensitivity study
    // stacks 12 dies): interleave by modulo.
    out.die = static_cast<int>(a % static_cast<std::uint64_t>(g.numDies));
    out.row = a / static_cast<std::uint64_t>(g.numDies);
    return out;
}

double
refreshRate(const Timing &t, double refresh_scale)
{
    XYLEM_ASSERT(refresh_scale > 0.0, "refresh scale must be positive");
    return 1e9 / (t.tREFI * refresh_scale);
}

} // namespace xylem::dram
