/**
 * @file
 * Wide I/O DRAM configuration: geometry, timing, and energy
 * parameters (Table 3 and §6.2 of the paper: 4 channels, 4 ranks per
 * die — one per channel —, 4 banks per rank, 4 Gb per die, run at a
 * Wide I/O 2 class data rate of 51.2 GB/s).
 */

#ifndef XYLEM_DRAM_CONFIG_HPP
#define XYLEM_DRAM_CONFIG_HPP

#include <cstdint>

namespace xylem::dram {

/** Fixed geometry of the Wide I/O stack. */
struct Geometry
{
    int channels = 4;
    int numDies = 8;        ///< ranks per channel == dies in the stack
    int banksPerRank = 4;
    int lineBytes = 64;     ///< cache-line transfer granularity
    int pageBytes = 2048;   ///< DRAM row (page) size
    std::uint64_t dieBytes = 512ull << 20; ///< 4 Gb per die

    int linesPerPage() const { return pageBytes / lineBytes; }
};

/** Timing parameters, all in nanoseconds. */
struct Timing
{
    double tRCD = 13.75;  ///< activate to column command
    double tRP = 13.75;   ///< precharge
    double tCL = 13.75;   ///< column access (CAS) latency
    double tRAS = 35.0;   ///< activate to precharge
    double tBURST = 5.0;  ///< 64 B over a 128-bit channel at 800 MHz DDR
    double tWR = 15.0;    ///< write recovery
    double tRFC = 130.0;  ///< refresh cycle time
    double tREFI = 7800.0;///< refresh interval at 85 °C (64 ms / 8192 rows)
    double tMC = 10.0;    ///< memory-controller + PHY overhead per access
};

/** Energy parameters. */
struct Energy
{
    double actPre = 4.0e-9;     ///< one activate+precharge pair [J]
    double read = 4.0e-9;       ///< one 64 B read burst [J]
    double write = 4.5e-9;      ///< one 64 B write burst [J]
    double refreshPerOp = 30e-9;///< one all-bank refresh op per rank [J]
    double backgroundPerDie = 0.17; ///< standby power per die [W]
};

/** A decoded DRAM address. */
struct Address
{
    int channel;
    int die;   ///< rank index == die index
    int bank;  ///< bank within the rank (0..3)
    std::uint64_t row;
    int column; ///< line index within the row
};

/** Complete DRAM configuration. */
struct DramConfig
{
    Geometry geometry;
    Timing timing;
    Energy energy;
    /**
     * Refresh-interval scale factor: JEDEC halves tREFI per 10 °C
     * above 85 °C. 1.0 = nominal; 0.5 = double refresh rate.
     */
    double refreshScale = 1.0;
};

/**
 * Decode a physical byte address into channel/die/bank/row/column.
 * Mapping (line-interleaved): channel bits first for maximum channel
 * parallelism, then bank, then column, then die (rank), then row.
 */
Address decodeAddress(const Geometry &g, std::uint64_t byte_addr);

/** Number of refresh commands per rank per second (at nominal 85 °C). */
double refreshRate(const Timing &t, double refresh_scale);

} // namespace xylem::dram

#endif // XYLEM_DRAM_CONFIG_HPP
