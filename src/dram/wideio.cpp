#include "dram/wideio.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace xylem::dram {

std::uint64_t
DieStats::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &b : banks)
        total += b.reads + b.writes;
    return total;
}

double
DramStats::rowHitRate() const
{
    std::uint64_t hits = 0, accesses = 0;
    for (const auto &die : dies) {
        for (const auto &b : die.banks) {
            hits += b.rowHits;
            accesses += b.reads + b.writes;
        }
    }
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
}

WideIoDram::WideIoDram(const DramConfig &config)
    : config_(config)
{
    const auto &g = config_.geometry;
    XYLEM_ASSERT(g.channels > 0 && g.numDies > 0 && g.banksPerRank > 0,
                 "DRAM geometry must be positive");
    banks_.resize(static_cast<std::size_t>(g.channels) *
                  static_cast<std::size_t>(g.numDies) *
                  static_cast<std::size_t>(g.banksPerRank));
    busFreeAt_.assign(static_cast<std::size_t>(g.channels), 0.0);
    nextRefreshAt_.assign(static_cast<std::size_t>(g.channels) *
                              static_cast<std::size_t>(g.numDies),
                          config_.timing.tREFI * config_.refreshScale);
    stats_.dies.resize(static_cast<std::size_t>(g.numDies));
}

WideIoDram::Bank &
WideIoDram::bank(int channel, int die, int bank_idx)
{
    const auto &g = config_.geometry;
    return banks_[(static_cast<std::size_t>(channel) *
                       static_cast<std::size_t>(g.numDies) +
                   static_cast<std::size_t>(die)) *
                      static_cast<std::size_t>(g.banksPerRank) +
                  static_cast<std::size_t>(bank_idx)];
}

BankStats &
WideIoDram::bankStats(int channel, int die, int bank_idx)
{
    return stats_.dies[static_cast<std::size_t>(die)]
        .banks[static_cast<std::size_t>(channel * 4 + bank_idx)];
}

void
WideIoDram::refreshRank(int channel, int die, double now_ns)
{
    const auto &g = config_.geometry;
    const auto &t = config_.timing;
    const double interval = t.tREFI * config_.refreshScale;
    double &next = nextRefreshAt_[static_cast<std::size_t>(channel) *
                                      static_cast<std::size_t>(g.numDies) +
                                  static_cast<std::size_t>(die)];
    while (next <= now_ns) {
        // All banks of the rank are blocked for tRFC; rows close.
        for (int b = 0; b < g.banksPerRank; ++b) {
            Bank &bk = bank(channel, die, b);
            bk.open = false;
            bk.readyAt = std::max(bk.readyAt, next + t.tRFC);
        }
        ++stats_.refreshOps;
        next += interval;
    }
}

double
WideIoDram::access(double now_ns, std::uint64_t addr, bool write)
{
    const auto &t = config_.timing;
    const Address a = decodeAddress(config_.geometry, addr);

    refreshRank(a.channel, a.die, now_ns);

    Bank &bk = bank(a.channel, a.die, a.bank);
    BankStats &bs = bankStats(a.channel, a.die, a.bank);

    // Command arrives at the device after the MC/PHY overhead.
    double when = now_ns + t.tMC;
    when = std::max(when, bk.readyAt);

    if (bk.open && bk.row == a.row) {
        ++bs.rowHits;
    } else {
        if (bk.open) {
            // Respect tRAS before precharging, then precharge.
            when = std::max(when, bk.activatedAt + t.tRAS);
            when += t.tRP;
        }
        when += t.tRCD;
        bk.activatedAt = when - t.tRCD; // activate command time
        bk.open = true;
        bk.row = a.row;
        ++bs.activates;
    }

    // Column command + data transfer; the channel data bus is shared
    // by the four banks of each rank and all ranks of the channel.
    double data_start = when + t.tCL;
    double &bus = busFreeAt_[static_cast<std::size_t>(a.channel)];
    data_start = std::max(data_start, bus);
    const double done = data_start + t.tBURST;
    bus = done;
    stats_.busBusyNs += t.tBURST;

    // Bank busy until the column access (and write recovery) retire.
    bk.readyAt = write ? done + t.tWR : data_start;

    if (write)
        ++bs.writes;
    else
        ++bs.reads;
    ++stats_.requests;
    return done;
}

void
WideIoDram::resetStats()
{
    const std::size_t dies = stats_.dies.size();
    stats_ = DramStats{};
    stats_.dies.resize(dies);
}

double
WideIoDram::idleLatency() const
{
    const auto &t = config_.timing;
    return t.tMC + t.tRCD + t.tCL + t.tBURST;
}

double
WideIoDram::energyJoules(double elapsed_ns) const
{
    const auto &e = config_.energy;
    double joules = 0.0;
    for (const auto &die : stats_.dies) {
        for (const auto &b : die.banks) {
            joules += static_cast<double>(b.activates) * e.actPre;
            joules += static_cast<double>(b.reads) * e.read;
            joules += static_cast<double>(b.writes) * e.write;
        }
    }
    joules += static_cast<double>(stats_.refreshOps) * e.refreshPerOp;
    joules += e.backgroundPerDie *
              static_cast<double>(config_.geometry.numDies) * elapsed_ns *
              1e-9;
    return joules;
}

double
WideIoDram::averagePower(double elapsed_ns) const
{
    XYLEM_ASSERT(elapsed_ns > 0.0, "elapsed time must be positive");
    return energyJoules(elapsed_ns) / (elapsed_ns * 1e-9);
}

} // namespace xylem::dram
