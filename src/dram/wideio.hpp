/**
 * @file
 * A DRAMSim2-style timing and energy model of the Wide I/O stack:
 * per-bank row-buffer state machines, channel data-bus contention,
 * rank-level refresh, and per-die/per-bank access statistics that
 * feed both the power model and the thermal power maps.
 */

#ifndef XYLEM_DRAM_WIDEIO_HPP
#define XYLEM_DRAM_WIDEIO_HPP

#include <cstdint>
#include <vector>

#include "dram/config.hpp"

namespace xylem::dram {

/** Per-bank access statistics. */
struct BankStats
{
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
};

/** Per-die statistics: 16 banks, indexed channel * 4 + bank. */
struct DieStats
{
    std::vector<BankStats> banks = std::vector<BankStats>(16);

    std::uint64_t totalAccesses() const;
};

/** Aggregate statistics of a simulation run. */
struct DramStats
{
    std::vector<DieStats> dies;
    std::uint64_t refreshOps = 0;
    double busBusyNs = 0.0;       ///< summed over channels
    std::uint64_t requests = 0;

    double rowHitRate() const;
};

/**
 * The Wide I/O DRAM stack timing model.
 *
 * Requests are submitted with an absolute time in nanoseconds and the
 * model returns the completion time of the 64 B transfer. The model
 * tolerates slightly out-of-order request times (the event-driven CPU
 * model guarantees approximate ordering only).
 */
class WideIoDram
{
  public:
    explicit WideIoDram(const DramConfig &config);

    const DramConfig &config() const { return config_; }

    /**
     * Perform one line access.
     *
     * @param now_ns  request submission time [ns]
     * @param addr    physical byte address
     * @param write   true for a write-back, false for a fill
     * @return completion time of the data transfer [ns]
     */
    double access(double now_ns, std::uint64_t addr, bool write);

    /** Idle round-trip latency of a row-miss access [ns]. */
    double idleLatency() const;

    const DramStats &stats() const { return stats_; }

    /**
     * Zero the statistics while keeping device state (open rows,
     * timing) — used at the end of a warm-up phase.
     */
    void resetStats();

    /**
     * DRAM energy consumed up to `elapsed_ns`, including background
     * and refresh power [J].
     */
    double energyJoules(double elapsed_ns) const;

    /** Average DRAM power over a run of `elapsed_ns` [W]. */
    double averagePower(double elapsed_ns) const;

  private:
    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        double readyAt = 0.0;    ///< earliest next column command
        double activatedAt = 0.0;
    };

    /** Apply pending refreshes for a rank up to `now_ns`. */
    void refreshRank(int channel, int die, double now_ns);

    Bank &bank(int channel, int die, int bank_idx);
    BankStats &bankStats(int channel, int die, int bank_idx);

    DramConfig config_;
    std::vector<Bank> banks_;           ///< [channel][die][bank]
    std::vector<double> busFreeAt_;     ///< per channel
    std::vector<double> nextRefreshAt_; ///< per (channel, die)
    DramStats stats_;
};

} // namespace xylem::dram

#endif // XYLEM_DRAM_WIDEIO_HPP
