/**
 * @file
 * §7.1 / Table 2: the evaluated schemes, their TTSV counts and the
 * TTSV area overhead per DRAM die.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "stack/stack.hpp"

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;

    bench::banner("Table 2 / §7.1 — schemes and TTSV area overheads",
                  "bank: 28 TTSVs, 0.63% of a 64.34 mm² die; banke: 36 "
                  "TTSVs, 0.81%; TTSVs are passive (no energy cost) and "
                  "stay out of the frontside metal (no routing impact)");

    Table t({"scheme", "TTSVs/die", "shorted µbumps", "area (mm2)",
             "overhead (%)", "paper (%)"});
    for (stack::Scheme s : stack::allSchemes()) {
        stack::StackSpec spec;
        spec.scheme = s;
        spec.numDramDies = 1;
        spec.gridNx = 16;
        spec.gridNy = 16;
        const auto stk = stack::buildStack(spec);
        const double area_mm2 =
            stk.ttsvAreaOverhead(1.0) * 1e6; // vs 1 m², back to mm²
        const char *paper = "-";
        if (s == stack::Scheme::Bank)
            paper = "0.63";
        else if (s == stack::Scheme::BankE)
            paper = "0.81";
        else if (s == stack::Scheme::Base)
            paper = "0.00";
        t.addRow({stack::toString(s), std::to_string(stk.ttsvCount()),
                  stack::schemeShortsBumps(s) ? "yes" : "no",
                  Table::num(area_mm2, 4),
                  Table::num(stk.ttsvAreaOverhead() * 100.0, 2), paper});
    }
    t.print(std::cout);
    return 0;
}
