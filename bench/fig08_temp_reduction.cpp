/**
 * @file
 * Fig. 8: per-application steady-state temperature reduction of bank
 * and banke over base at 2.4 GHz, plus the arithmetic mean.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner("Fig. 8 — temperature reduction over base at 2.4 GHz",
                  "bank reduces the processor hotspot by 5.0 C on "
                  "average, banke by 8.4 C; compute-bound codes gain "
                  "the most");

    core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    cfg.frequencies = {2.4};
    const auto sweep = core::runTemperatureSweep(
        cfg, {Scheme::Base, Scheme::Bank, Scheme::BankE});

    Table t({"app", "base (C)", "dT bank (C)", "dT banke (C)"});
    for (const auto &app : cfg.apps) {
        const double base =
            core::sweepEntry(sweep, app, Scheme::Base, 2.4).procHotspotC;
        const double bank =
            core::sweepEntry(sweep, app, Scheme::Bank, 2.4).procHotspotC;
        const double banke =
            core::sweepEntry(sweep, app, Scheme::BankE, 2.4).procHotspotC;
        t.addRow({app, Table::num(base, 2), Table::num(base - bank, 2),
                  Table::num(base - banke, 2)});
    }
    t.addRow({"Mean", "-",
              Table::num(core::meanTempReduction(sweep, Scheme::Bank, 2.4),
                         2),
              Table::num(
                  core::meanTempReduction(sweep, Scheme::BankE, 2.4), 2)});
    t.print(std::cout);
    std::cout << "\nPaper means: bank 5.0 C, banke 8.4 C. The expected "
                 "shape: banke > bank > 0 for every app, biggest for "
                 "compute-bound codes.\n";
    return 0;
}
