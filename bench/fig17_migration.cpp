/**
 * @file
 * Fig. 17: λ-aware thread migration (§7.6.3). Two threads migrate
 * every 30 ms either among the four inner cores or among the four
 * outer cores, at a fixed frequency; the time-averaged processor
 * hotspot is reported (transient thermal simulation).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 17 — λ-aware thread migration (2 threads, 30 ms period)",
        "migrating among the inner cores keeps the die cooler than "
        "among the outer cores: by ~0.4C on base and ~1.5C on banke");

    core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    core::MigrationOptions opts;
    opts.numPhases = 6;
    opts.stepsPerPhase = 5;
    opts.warmupPhases = 2;
    const auto entries = core::runMigrationExperiment(
        cfg, {Scheme::Base, Scheme::Bank, Scheme::BankE}, opts);

    Table t({"scheme", "Outer cores (C)", "Inner cores (C)",
             "reduction (C)"});
    for (const auto &e : entries) {
        t.addRow({bench::label(e.scheme),
                  Table::num(e.outerAvgHotspotC, 2),
                  Table::num(e.innerAvgHotspotC, 2),
                  Table::num(e.outerAvgHotspotC - e.innerAvgHotspotC,
                             2)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: the inner-core advantage grows from "
                 "base to banke (same frequency everywhere: "
              << opts.freqGHz << " GHz).\n";
    return 0;
}
