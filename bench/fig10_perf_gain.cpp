/**
 * @file
 * Fig. 10: application performance increase from the iso-temperature
 * frequency boost (§7.3.2).
 */

#include "boost_common.hpp"

int
main(int argc, char **argv)
{
    return xylem::bench::boostBench(
        argc, argv, "Fig. 10 — application performance increase",
        "bank improves performance by ~11% (geo-mean), banke by ~18%; "
        "compute-bound codes gain the most, memory-bound codes barely "
        "move",
        "%", [](const xylem::core::BoostEntry &e) {
            return e.perfGainPct;
        },
        true);
}
