/**
 * @file
 * Fig. 15: λ-aware thread placement (§7.6.1). Four compute-intensive
 * LU(NAS) threads plus four memory-intensive IS threads; "Inside"
 * puts the hot threads on the inner cores (closer to the high-λ
 * pillar sites), "Outside" on the outer cores. The maximum die-wide
 * frequency under Tj,max is reported.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 15 — λ-aware thread placement (LU-NAS + IS, 4+4 threads)",
        "Inside beats Outside by ~100 MHz on base and ~200 MHz on "
        "banke: the inner cores sit closer to the shorted µbump-TTSV "
        "pillars");

    core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const auto entries = core::runPlacementExperiment(
        cfg, {Scheme::Base, Scheme::Bank, Scheme::BankE});

    Table t({"scheme", "Outside (GHz)", "Inside (GHz)", "gain (MHz)",
             "Outside hotspot (C)", "Inside hotspot (C)"});
    for (const auto &e : entries) {
        t.addRow({bench::label(e.scheme), Table::num(e.outsideGHz, 2),
                  Table::num(e.insideGHz, 2),
                  Table::num((e.insideGHz - e.outsideGHz) * 1000.0, 0),
                  Table::num(e.outsideHotspotC, 2),
                  Table::num(e.insideHotspotC, 2)});
    }
    t.print(std::cout);
    std::cout
        << "\nShape check: Inside >= Outside for every scheme, and the "
           "advantage grows with the Xylem schemes. If both "
           "assignments reach the top DVFS point (our calibration "
           "runs the 4+4 mix cooler than the paper's), the advantage "
           "appears as the Inside hotspot margin instead.\n";
    return 0;
}
