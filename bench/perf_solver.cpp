/**
 * @file
 * Microbenchmark of the thermal solver hot path: steady-state solves
 * (cold and warm-started), transient steps, and the raw mat-vec, at
 * several grid resolutions and with both preconditioners.
 *
 * Unlike the figure benches this binary times the solver itself, so
 * it uses its own minimal harness instead of the experiment runtime:
 * every benchmark is warmed up once, then run for enough repetitions
 * to fill a wall-clock budget, and the per-solve mean is reported.
 *
 * Flags:
 *   --json [PATH]   write a machine-readable summary (default path
 *                   BENCH_solver.json) with ns/solve, solves/s and CG
 *                   iteration counts per benchmark, plus the full
 *                   telemetry registry (solver.apply_seconds,
 *                   solver.precond_seconds, solver.workspace_reuses)
 *   --grids A,B,..  grid edge lengths to sweep (default 32,64,128)
 *   --threads N     intra-solve worker threads (SolverOptions::threads)
 *   --setups A,B,.. solver setups to run: jacobi, line (CG with that
 *                   preconditioner), mgcg (multigrid-preconditioned
 *                   CG), mg (standalone multigrid); default all
 *   --precond P,..  keep only setups using these preconditioners
 *                   (jacobi, line, mg); unknown values fail fast
 *   --solver S,..   keep only setups with this outer iteration
 *                   (cg, mg); unknown values fail fast
 *   --rhs N         columns in the batched steady benchmark (default
 *                   8, range 1..kMaxBatchRhs); its ns/solve and
 *                   solves/s are per column, so the speedup over
 *                   steady_cold is the block-solve amortization
 *   --threads-sweep additionally run the cold MG-CG solve at threads
 *                   1, 2, 4 and 8 per grid, emitting `threads_sweep`
 *                   rows in --json (the intra-solve scaling curve;
 *                   results are bit-identical across the sweep, only
 *                   the wall clock moves)
 *   --fast          smoke configuration: 32-grid only, small budget
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "runtime/metrics.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/mg/multigrid.hpp"

namespace {

using namespace xylem;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

stack::BuiltStack
makeStack(std::size_t grid)
{
    stack::StackSpec spec;
    spec.scheme = stack::Scheme::BankE;
    spec.gridNx = grid;
    spec.gridNy = grid;
    return stack::buildStack(spec);
}

thermal::PowerMap
makePower(const stack::BuiltStack &stk)
{
    thermal::PowerMap power(stk);
    power.deposit(stk.procMetal, geometry::Rect{0, 5.4e-3, 8e-3, 2.6e-3},
                  12.0);
    power.deposit(stk.procMetal, stk.grid.extent(), 6.0);
    power.deposit(stk.dramMetal[0], stk.grid.extent(), 0.4);
    return power;
}

struct BenchResult
{
    std::string name;
    std::size_t grid = 0;
    std::string mode;       ///< cold | warm | transient | matvec
    std::string solver;     ///< cg | mg
    std::string precond;    ///< jacobi | line | mg
    std::size_t nodes = 0;
    int threads = 1;
    int reps = 0;
    int mgLevels = 0;       ///< multigrid hierarchy depth (0 = no MG)
    int rhs = 1;            ///< columns per solve (batched steady)
    double nsPerSolve = 0.0;
    int cgIterations = 0;   ///< per solve (0 for matvec)

    double solvesPerSecond() const
    {
        return nsPerSolve > 0.0 ? 1e9 / nsPerSolve : 0.0;
    }
};

/** One benchmarked solver configuration (outer iteration + precond). */
struct SolverSetup
{
    const char *tag;    ///< benchmark-name component
    thermal::SolverKind kind;
    thermal::Preconditioner precond;
};

constexpr SolverSetup kSetups[] = {
    {"jacobi", thermal::SolverKind::CG, thermal::Preconditioner::Jacobi},
    {"line", thermal::SolverKind::CG,
     thermal::Preconditioner::VerticalLine},
    {"mgcg", thermal::SolverKind::CG,
     thermal::Preconditioner::Multigrid},
    {"mg", thermal::SolverKind::Multigrid,
     thermal::Preconditioner::Multigrid},
};

/**
 * Time `fn` (one solve per call): one untimed warmup call, then as
 * many repetitions as fit the budget — at least 3 (a single rep of a
 * big-grid solve is pure noise, and baseline diffs built on it are
 * worthless), at most 200.
 */
template <typename F>
BenchResult
run(const std::string &name, double budget_seconds, F &&fn)
{
    BenchResult r;
    r.name = name;
    fn(); // warmup: page in, compute warm-start fields, size caches
    const auto probe0 = Clock::now();
    r.cgIterations = fn();
    const double probe = secondsSince(probe0);
    int reps = probe > 0.0
                   ? static_cast<int>(budget_seconds / probe)
                   : 200;
    if (reps < 3)
        reps = 3;
    if (reps > 200)
        reps = 200;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        fn();
    const double elapsed = secondsSince(t0);
    r.reps = reps;
    r.nsPerSolve = elapsed / reps * 1e9;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(
        argc, argv,
        "  --json [PATH]   machine-readable summary "
        "(default BENCH_solver.json)\n"
        "  --grids A,B,..  grid edge lengths to sweep "
        "(default 32,64,128)\n"
        "  --threads N     intra-solve worker threads\n"
        "  --setups A,B,.. solver setups (jacobi, line, mgcg, mg)\n"
        "  --precond P,..  filter by preconditioner (jacobi, line, mg)\n"
        "  --solver S,..   filter by outer iteration (cg, mg)\n"
        "  --rhs N         batched-steady columns (1.."
        "64, default 8)\n"
        "  --threads-sweep also run cold MG-CG at threads 1/2/4/8\n"
        "  --fast          smoke configuration\n");
    std::vector<std::size_t> grids = {32, 64, 128};
    double budget = 2.0;
    if (args.flag("--fast")) {
        grids = {32};
        budget = 0.1;
    }
    std::string json_path;
    const bool want_json =
        args.optionOrDefault("--json", json_path, "BENCH_solver.json");
    if (const auto spec = args.option("--grids")) {
        grids.clear();
        std::stringstream ss(*spec);
        std::string tok;
        while (std::getline(ss, tok, ','))
            grids.push_back(
                static_cast<std::size_t>(std::atoi(tok.c_str())));
    }
    const int threads = args.intOption("--threads", 1);
    const auto setup_tags = args.choiceListOption(
        "--setups", {"jacobi", "line", "mgcg", "mg"},
        {"jacobi", "line", "mgcg", "mg"});
    const auto precond_filter = args.choiceListOption(
        "--precond", {"jacobi", "line", "mg"}, {});
    const auto solver_filter =
        args.choiceListOption("--solver", {"cg", "mg"}, {});
    const int rhs = args.boundedIntOption(
        "--rhs", 8, 1, static_cast<int>(thermal::kMaxBatchRhs));
    const bool threads_sweep = args.flag("--threads-sweep");
    args.finish();

    const auto keep = [&](const SolverSetup &s) {
        const auto has = [](const std::vector<std::string> &v,
                            const char *x) {
            for (const auto &e : v)
                if (e == x)
                    return true;
            return false;
        };
        if (!has(setup_tags, s.tag))
            return false;
        if (!precond_filter.empty() &&
            !has(precond_filter, thermal::toString(s.precond)))
            return false;
        if (!solver_filter.empty() &&
            !has(solver_filter, thermal::toString(s.kind)))
            return false;
        return true;
    };

    const auto wall0 = Clock::now();
    std::vector<BenchResult> results;

    for (const std::size_t g : grids) {
        const auto stk = makeStack(g);
        const auto power = makePower(stk);
        auto power2 = power;
        power2.deposit(stk.procMetal, stk.grid.extent(), 1.0);

        for (const SolverSetup &setup : kSetups) {
            if (!keep(setup))
                continue;
            thermal::SolverOptions opts;
            opts.kind = setup.kind;
            opts.preconditioner = setup.precond;
            opts.threads = threads;
            const thermal::GridModel model(stk, opts);
            const std::string suffix =
                std::string("_") + setup.tag + "_" + std::to_string(g);

            // Steady-state, cold start (x = 0).
            BenchResult cold = run("steady_cold" + suffix, budget, [&] {
                thermal::SolveStats stats;
                const auto f = model.solveSteady(power, &stats);
                (void)f;
                return stats.iterations;
            });

            // Steady-state, warm-started from the perturbed solution.
            const auto warm_field = model.solveSteady(power);
            BenchResult warm = run("steady_warm" + suffix, budget, [&] {
                thermal::SolveStats stats;
                const auto f =
                    model.solveSteady(power2, &stats, &warm_field);
                (void)f;
                return stats.iterations;
            });

            // One implicit-Euler step from a fixed (ambient) state, so
            // every repetition does identical work and the CG loop
            // actually has to close a non-trivial residual.
            const auto ambient = model.ambientField();
            BenchResult transient =
                run("transient" + suffix, budget, [&] {
                    thermal::SolveStats stats;
                    const auto f = model.stepTransient(ambient, power2,
                                                       0.005, &stats);
                    (void)f;
                    return stats.iterations;
                });

            // Raw mat-vec (the per-iteration kernel).
            std::vector<double> x(model.numNodes(), 1.0), y;
            BenchResult matvec = run("matvec" + suffix, budget / 4, [&] {
                model.apply(x, y);
                return 0;
            });

            // Batched steady solve: `rhs` distinct power maps through
            // one lockstep block solve — the daemon's burst-serving
            // path. ns/solve is per column, so the ratio to
            // steady_cold is the block-solve amortization.
            std::vector<thermal::PowerMap> batch_powers;
            batch_powers.reserve(static_cast<std::size_t>(rhs));
            for (int k = 0; k < rhs; ++k) {
                thermal::PowerMap p = power;
                p.deposit(stk.procMetal, stk.grid.extent(),
                          0.5 + 0.25 * k);
                batch_powers.push_back(std::move(p));
            }
            std::vector<const thermal::PowerMap *> batch_ptrs;
            for (const auto &p : batch_powers)
                batch_ptrs.push_back(&p);
            thermal::SolverWorkspace batch_ws;
            std::vector<thermal::SolveStats> batch_stats;
            BenchResult batch = run(
                "steady_batch" + std::to_string(rhs) + suffix, budget,
                [&] {
                    const auto fields = model.solveSteadyBatch(
                        batch_ptrs, &batch_stats, nullptr, &batch_ws);
                    (void)fields;
                    return batch_stats.empty()
                               ? 0
                               : batch_stats.front().iterations;
                });
            batch.nsPerSolve /= rhs; // per column
            batch.rhs = rhs;

            const int mg_levels =
                model.multigrid()
                    ? static_cast<int>(model.multigrid()->numLevels())
                    : 0;
            for (BenchResult *r :
                 {&cold, &warm, &transient, &matvec, &batch}) {
                r->grid = g;
                r->solver = thermal::toString(setup.kind);
                r->precond = thermal::toString(setup.precond);
                r->nodes = model.numNodes();
                r->threads = threads;
                r->mgLevels = mg_levels;
            }
            cold.mode = "cold";
            warm.mode = "warm";
            transient.mode = "transient";
            matvec.mode = "matvec";
            batch.mode = "batch";
            results.push_back(cold);
            results.push_back(warm);
            results.push_back(transient);
            results.push_back(matvec);
            results.push_back(batch);
        }
    }

    // Intra-solve thread scaling: the cold MG-CG solve (the served
    // hot path) at 1/2/4/8 threads per grid. Same problem, same
    // bit-identical answer — the curve is pure wall-clock.
    if (threads_sweep) {
        for (const std::size_t g : grids) {
            const auto stk = makeStack(g);
            const auto power = makePower(stk);
            for (const int t : {1, 2, 4, 8}) {
                thermal::SolverOptions opts;
                opts.kind = thermal::SolverKind::CG;
                opts.preconditioner = thermal::Preconditioner::Multigrid;
                opts.threads = t;
                const thermal::GridModel model(stk, opts);
                BenchResult r = run("threads_sweep_mgcg_" +
                                        std::to_string(g) + "_t" +
                                        std::to_string(t),
                                    budget, [&] {
                                        thermal::SolveStats stats;
                                        const auto f = model.solveSteady(
                                            power, &stats);
                                        (void)f;
                                        return stats.iterations;
                                    });
                r.grid = g;
                r.mode = "threads_sweep";
                r.solver = "cg";
                r.precond = "mg";
                r.nodes = model.numNodes();
                r.threads = t;
                r.mgLevels =
                    model.multigrid()
                        ? static_cast<int>(
                              model.multigrid()->numLevels())
                        : 0;
                results.push_back(r);
            }
        }
    }

    Table table({"benchmark", "nodes", "reps", "ns/solve", "solves/s",
                 "CG iters"});
    for (const auto &r : results) {
        table.addRow({r.name, std::to_string(r.nodes),
                      std::to_string(r.reps), Table::num(r.nsPerSolve, 0),
                      Table::num(r.solvesPerSecond(), 2),
                      std::to_string(r.cgIterations)});
    }
    table.print(std::cout);
    std::cout << "\n";
    runtime::Metrics::global().printSummary(std::cout);

    if (want_json) {
        std::ostringstream json;
        json << "{\"bench\":\"perf_solver\",\"wall_seconds\":"
             << secondsSince(wall0) << ",\"threads\":" << threads
             << ",\"benchmarks\":[";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            json << (i ? "," : "") << "{\"name\":\"" << r.name
                 << "\",\"grid\":" << r.grid << ",\"mode\":\"" << r.mode
                 << "\",\"solver\":\"" << r.solver
                 << "\",\"precond\":\"" << r.precond
                 << "\",\"nodes\":" << r.nodes
                 << ",\"threads\":" << r.threads << ",\"reps\":" << r.reps
                 << ",\"mg_levels\":" << r.mgLevels
                 << ",\"rhs\":" << r.rhs
                 << ",\"ns_per_solve\":" << r.nsPerSolve
                 << ",\"solves_per_s\":" << r.solvesPerSecond()
                 << ",\"cg_iterations\":" << r.cgIterations << "}";
        }
        json << "],\"metrics\":" << runtime::Metrics::global().toJson()
             << "}";
        std::ofstream out(json_path, std::ios::trunc);
        if (out) {
            out << json.str() << "\n";
            std::cout << "JSON written to " << json_path << "\n";
        } else {
            std::cerr << "warn: cannot write JSON summary to '"
                      << json_path << "'\n";
            return 1;
        }
    }
    return 0;
}
