/**
 * @file
 * google-benchmark microbenchmarks of the thermal solver itself:
 * steady-state solves (cold and warm-started) and transient steps at
 * several grid resolutions, plus the multicore simulator.
 */

#include <benchmark/benchmark.h>

#include "cpu/multicore.hpp"
#include "stack/stack.hpp"
#include "thermal/grid_model.hpp"
#include "workloads/profile.hpp"

namespace {

using namespace xylem;

stack::BuiltStack
makeStack(std::size_t grid)
{
    stack::StackSpec spec;
    spec.scheme = stack::Scheme::BankE;
    spec.gridNx = grid;
    spec.gridNy = grid;
    return stack::buildStack(spec);
}

thermal::PowerMap
makePower(const stack::BuiltStack &stk)
{
    thermal::PowerMap power(stk);
    power.deposit(stk.procMetal, geometry::Rect{0, 5.4e-3, 8e-3, 2.6e-3},
                  12.0);
    power.deposit(stk.procMetal, stk.grid.extent(), 6.0);
    power.deposit(stk.dramMetal[0], stk.grid.extent(), 0.4);
    return power;
}

void
BM_SteadySolveCold(benchmark::State &state)
{
    const auto stk = makeStack(static_cast<std::size_t>(state.range(0)));
    const thermal::GridModel model(stk, {});
    const auto power = makePower(stk);
    for (auto _ : state) {
        thermal::SolveStats stats;
        auto field = model.solveSteady(power, &stats);
        benchmark::DoNotOptimize(field.nodes().data());
        state.counters["iters"] = stats.iterations;
    }
    state.counters["nodes"] = static_cast<double>(model.numNodes());
}
BENCHMARK(BM_SteadySolveCold)->Arg(40)->Arg(80)->Unit(
    benchmark::kMillisecond);

void
BM_SteadySolveWarm(benchmark::State &state)
{
    const auto stk = makeStack(static_cast<std::size_t>(state.range(0)));
    const thermal::GridModel model(stk, {});
    const auto power = makePower(stk);
    const auto warm = model.solveSteady(power);
    // Perturbed power: the realistic warm-start scenario.
    auto power2 = power;
    power2.deposit(stk.procMetal, stk.grid.extent(), 1.0);
    for (auto _ : state) {
        auto field = model.solveSteady(power2, nullptr, &warm);
        benchmark::DoNotOptimize(field.nodes().data());
    }
}
BENCHMARK(BM_SteadySolveWarm)->Arg(40)->Arg(80)->Unit(
    benchmark::kMillisecond);

void
BM_TransientStep(benchmark::State &state)
{
    const auto stk = makeStack(static_cast<std::size_t>(state.range(0)));
    const thermal::GridModel model(stk, {});
    const auto power = makePower(stk);
    auto power2 = power;
    power2.deposit(stk.procMetal, geometry::Rect{0, 0, 8e-3, 2.6e-3},
                   4.0);
    auto field = model.solveSteady(power);
    for (auto _ : state) {
        field = model.stepTransient(field, power2, 0.005);
        benchmark::DoNotOptimize(field.nodes().data());
    }
}
BENCHMARK(BM_TransientStep)->Arg(40)->Arg(80)->Unit(
    benchmark::kMillisecond);

void
BM_MatVec(benchmark::State &state)
{
    const auto stk = makeStack(static_cast<std::size_t>(state.range(0)));
    const thermal::GridModel model(stk, {});
    std::vector<double> x(model.numNodes(), 1.0), y;
    for (auto _ : state) {
        model.apply(x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_MatVec)->Arg(40)->Arg(80)->Unit(benchmark::kMicrosecond);

void
BM_MulticoreSim(benchmark::State &state)
{
    const auto &app = workloads::profileByName(
        state.range(0) == 0 ? "LU(NAS)" : "IS");
    cpu::MulticoreConfig cfg;
    cfg.instsPerThread = 100000;
    cfg.warmupInsts = 100000;
    const auto threads = cpu::allCoresRunning(app);
    for (auto _ : state) {
        auto result = cpu::simulate(cfg, threads);
        benchmark::DoNotOptimize(&result);
        state.counters["MIPS"] =
            static_cast<double>(result.totalInsts()) / 1e6 /
            (state.iterations() ? 1.0 : 1.0);
    }
}
BENCHMARK(BM_MulticoreSim)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
