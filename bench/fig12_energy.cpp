/**
 * @file
 * Fig. 12: stack energy change after the boost (§7.3.3) — power rises
 * but runtime falls, so energy stays roughly flat on average
 * (race-to-halt for the compute-bound codes).
 */

#include "boost_common.hpp"

int
main(int argc, char **argv)
{
    return xylem::bench::boostBench(
        argc, argv, "Fig. 12 — stack energy change",
        "roughly zero on average (geo-mean): compute-bound codes go "
        "slightly negative (race-to-halt), memory-bound codes slightly "
        "positive",
        "%", [](const xylem::core::BoostEntry &e) {
            return e.energyChangePct;
        },
        true);
}
