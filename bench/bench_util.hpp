/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: a common
 * banner, the paper-reported reference values, experiment sizing
 * flags (--fast shrinks a bench for smoke runs), the parallel-runtime
 * knobs (--jobs, --cache-dir), and a machine-readable JSON summary
 * emitted when the bench exits (wall time, tasks run, cache hits,
 * solver iterations) so BENCH_*.json trajectories can be tracked.
 *
 * Flags (all optional):
 *   --fast            shrunk experiment configuration
 *   --jobs N          worker threads (default: XYLEM_JOBS or 1)
 *   --cache-dir DIR   persistent result cache (default: XYLEM_CACHE_DIR)
 *   --json PATH       also write the JSON summary to PATH
 *   --selfcheck       run the verification invariant checkers (energy
 *                     balance, maximum principle, achieved residual)
 *                     on every thermal solution; abort on violation
 *   --max-retries N   same-rung retries per failed sweep task before
 *                     escalation/quarantine (default: XYLEM_MAX_RETRIES
 *                     or 1; 0 disables the resilience layer)
 *   --task-timeout S  cooperative per-task wall-clock deadline in
 *                     seconds (default: XYLEM_TASK_TIMEOUT; 0 = none)
 *   --resume          adopt the sweep checkpoint manifest from a
 *                     previous interrupted run in --cache-dir
 *   --fault-spec SPEC arm the deterministic fault-injection harness
 *                     (see runtime/fault_injection.hpp for the syntax;
 *                     default: XYLEM_FAULT_SPEC)
 */

#ifndef XYLEM_BENCH_BENCH_UTIL_HPP
#define XYLEM_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sweep_runner.hpp"
#include "verify/invariants.hpp"
#include "xylem/experiments.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &paper_result)
{
    std::cout << "=== Xylem reproduction: " << experiment << " ===\n";
    std::cout << "Paper reports: " << paper_result << "\n";
    std::cout << "(absolute numbers differ — our substrate is a "
                 "reimplemented simulator; the shape is the claim)\n\n";
}

/**
 * The shared flag parser of every bench/tool binary: consistent
 * `--help` (usage text, exit 0), `--flag VALUE` extraction with typed
 * accessors, and a uniform unknown-argument error (exit 2). Flags are
 * consumed as they are queried; call finish() last so leftovers are
 * reported instead of silently ignored.
 */
class Args
{
  public:
    Args(int argc, char **argv, std::string usage)
        : usage_(std::move(usage))
    {
        program_ = argc > 0 ? argv[0] : "bench";
        if (const auto slash = program_.find_last_of('/');
            slash != std::string::npos)
            program_ = program_.substr(slash + 1);
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
        for (const auto &arg : args_)
            if (arg == "--help" || arg == "-h") {
                std::cout << "usage: " << program_ << " [flags]\n"
                          << usage_;
                std::exit(0);
            }
    }

    const std::string &program() const { return program_; }

    /** True (and consumed) when `name` is present. */
    bool
    flag(const std::string &name)
    {
        for (auto it = args_.begin(); it != args_.end(); ++it)
            if (*it == name) {
                args_.erase(it);
                return true;
            }
        return false;
    }

    /** Value of `--name VALUE`; nullopt when absent. */
    std::optional<std::string>
    option(const std::string &name)
    {
        for (auto it = args_.begin(); it != args_.end(); ++it)
            if (*it == name) {
                auto vit = std::next(it);
                if (vit == args_.end())
                    die("missing value for " + name);
                std::string value = *vit;
                args_.erase(it, std::next(vit));
                return value;
            }
        return std::nullopt;
    }

    /**
     * `--name [VALUE]` with the value optional (e.g. `--json [PATH]`):
     * returns presence, leaves `value` at `fallback` when the next
     * token is another flag or missing.
     */
    bool
    optionOrDefault(const std::string &name, std::string &value,
                    const std::string &fallback)
    {
        for (auto it = args_.begin(); it != args_.end(); ++it)
            if (*it == name) {
                auto vit = std::next(it);
                if (vit != args_.end() && !vit->empty() &&
                    (*vit)[0] != '-') {
                    value = *vit;
                    args_.erase(it, std::next(vit));
                } else {
                    value = fallback;
                    args_.erase(it);
                }
                return true;
            }
        return false;
    }

    int
    intOption(const std::string &name, int fallback)
    {
        if (const auto v = option(name)) {
            try {
                return std::stoi(*v);
            } catch (const std::exception &) {
                die("invalid value for " + name);
            }
        }
        return fallback;
    }

    /** `--name N` restricted to [lo, hi]; out-of-range fails fast. */
    int
    boundedIntOption(const std::string &name, int fallback, int lo,
                     int hi)
    {
        const int v = intOption(name, fallback);
        if (v < lo || v > hi)
            die("invalid value for " + name + " (must be in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "])");
        return v;
    }

    double
    numberOption(const std::string &name, double fallback)
    {
        if (const auto v = option(name)) {
            try {
                return std::stod(*v);
            } catch (const std::exception &) {
                die("invalid value for " + name);
            }
        }
        return fallback;
    }

    /**
     * `--name VALUE` restricted to `choices`; `fallback` when absent.
     * Unknown values fail fast (exit 2) listing the valid choices —
     * never a silent fall-through to the default.
     */
    std::string
    choiceOption(const std::string &name,
                 std::initializer_list<const char *> choices,
                 const std::string &fallback)
    {
        if (const auto v = option(name)) {
            for (const char *c : choices)
                if (*v == c)
                    return *v;
            dieInvalidChoice(name, *v, choices);
        }
        return fallback;
    }

    /** Comma-separated `--name A,B` with the same validation. */
    std::vector<std::string>
    choiceListOption(const std::string &name,
                     std::initializer_list<const char *> choices,
                     std::vector<std::string> fallback)
    {
        const auto v = option(name);
        if (!v)
            return fallback;
        std::vector<std::string> out;
        std::stringstream ss(*v);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (item.empty())
                continue;
            bool ok = false;
            for (const char *c : choices)
                ok = ok || item == c;
            if (!ok)
                dieInvalidChoice(name, item, choices);
            out.push_back(item);
        }
        if (out.empty())
            die("empty value for " + name);
        return out;
    }

    /** Reject anything not consumed by the queries above (exit 2). */
    void
    finish()
    {
        if (!args_.empty())
            die("unknown argument '" + args_.front() + "'");
    }

    [[noreturn]] void
    die(const std::string &message) const
    {
        std::cerr << program_ << ": " << message
                  << " (--help for usage)\n";
        std::exit(2);
    }

  private:
    [[noreturn]] void
    dieInvalidChoice(const std::string &name, const std::string &value,
                     std::initializer_list<const char *> choices) const
    {
        std::string valid;
        for (const char *c : choices) {
            if (!valid.empty())
                valid += ", ";
            valid += c;
        }
        die("invalid value '" + value + "' for " + name +
            " (valid choices: " + valid + ")");
    }

    std::string program_;
    std::string usage_;
    std::vector<std::string> args_;
};

/**
 * Emits the telemetry summary table and the JSON summary when the
 * bench exits; configFromArgs() owns one as a function-local static.
 */
class BenchReporter
{
  public:
    BenchReporter(std::string name, std::string json_path)
        : name_(std::move(name)), json_path_(std::move(json_path)),
          start_(std::chrono::steady_clock::now())
    {
        // Construct the metrics singleton before this object finishes
        // constructing, so it is destroyed after our destructor runs.
        runtime::Metrics::global().snapshot();
    }

    ~BenchReporter()
    {
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
        auto &metrics = runtime::Metrics::global();
        const auto snap = metrics.snapshot();

        std::cout << "\n";
        metrics.printSummary(std::cout);

        // Warm-start savings of the CG solver (§5 boost loops reuse
        // the previous grid point's field as the initial guess).
        const auto warm_solves = snap.count("solver.warm_solves");
        const auto cold_solves = snap.count("solver.cold_solves");
        if (warm_solves > 0 && cold_solves > 0) {
            const double warm_mean =
                static_cast<double>(snap.count("solver.warm_iterations")) /
                static_cast<double>(warm_solves);
            const double cold_mean =
                static_cast<double>(snap.count("solver.cold_iterations")) /
                static_cast<double>(cold_solves);
            std::cout << "CG warm-start saving: " << Table::num(warm_mean, 1)
                      << " iters/solve warm vs " << Table::num(cold_mean, 1)
                      << " cold ("
                      << Table::num((1.0 - warm_mean / cold_mean) * 100.0,
                                    1)
                      << "% fewer)\n";
        }

        std::ostringstream json;
        json << "{\"bench\":\"" << name_ << "\",\"wall_seconds\":" << wall
             << ",\"tasks_run\":" << snap.count("runner.tasks")
             << ",\"tasks_computed\":" << snap.count("runner.computed")
             << ",\"cache_hits\":" << snap.count("runner.cache_hits")
             << ",\"solver_iterations\":"
             << snap.count("solver.iterations")
             << ",\"workspace_reuses\":"
             << snap.count("solver.workspace_reuses")
             << ",\"apply_seconds\":"
             << snap.timingTotal("solver.apply_seconds")
             << ",\"precond_seconds\":"
             << snap.timingTotal("solver.precond_seconds")
             << ",\"sim_cache_hits\":" << snap.count("simcache.hits")
             << ",\"sim_cache_misses\":" << snap.count("simcache.misses")
             << ",\"retries\":" << snap.count("runner.retries")
             << ",\"escalations\":" << snap.count("runner.escalations")
             << ",\"failed\":" << snap.count("runner.failed")
             << ",\"deadline_exceeded\":"
             << snap.count("runner.deadline_exceeded")
             << ",\"metrics\":" << metrics.toJson() << "}";
        std::cout << "JSON summary: " << json.str() << "\n";
        if (!json_path_.empty()) {
            std::ofstream out(json_path_, std::ios::trunc);
            if (out)
                out << json.str() << "\n";
            else
                std::cerr << "warn: cannot write JSON summary to '"
                          << json_path_ << "'\n";
        }
    }

  private:
    std::string name_;
    std::string json_path_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Standard experiment config: shrunk when `--fast` is passed, with
 * the runtime knobs taken from the environment (XYLEM_JOBS,
 * XYLEM_CACHE_DIR) and overridden by --jobs / --cache-dir. Also
 * installs the exit-time JSON/telemetry reporter.
 */
inline const char *const kExperimentUsage =
    "  --fast            shrunk smoke configuration\n"
    "  --jobs N          worker threads (default: XYLEM_JOBS or 1)\n"
    "  --cache-dir DIR   persistent result cache (XYLEM_CACHE_DIR)\n"
    "  --json PATH       also write the JSON summary to PATH\n"
    "  --selfcheck       arm the verification invariant checkers\n"
    "  --max-retries N   same-rung retries before escalation\n"
    "  --task-timeout S  cooperative per-task deadline in seconds\n"
    "  --resume          adopt a previous run's checkpoint manifest\n"
    "  --fault-spec SPEC arm deterministic fault injection\n";

inline core::ExperimentConfig
configFromArgs(int argc, char **argv)
{
    Args args(argc, argv, kExperimentUsage);
    core::ExperimentConfig cfg = core::ExperimentConfig::standard();
    cfg.runner = runtime::RunnerOptions::fromEnv();
    const bool fast = args.flag("--fast");
    cfg.runner.jobs = args.intOption("--jobs", cfg.runner.jobs);
    if (const auto dir = args.option("--cache-dir"))
        cfg.runner.cacheDir = *dir;
    std::string json_path;
    if (const auto path = args.option("--json"))
        json_path = *path;
    if (args.flag("--selfcheck"))
        verify::setSelfCheckEnabled(true);
    cfg.runner.maxRetries =
        args.intOption("--max-retries", cfg.runner.maxRetries);
    cfg.runner.taskTimeoutSeconds = args.numberOption(
        "--task-timeout", cfg.runner.taskTimeoutSeconds);
    if (args.flag("--resume"))
        cfg.runner.resume = true;
    if (const auto spec = args.option("--fault-spec")) {
        try {
            runtime::FaultInjector::global().configure(*spec);
        } catch (const Error &e) {
            args.die(e.what());
        }
    }
    args.finish();
    if (fast) {
        auto runner = cfg.runner;
        cfg = core::ExperimentConfig::small();
        cfg.runner = runner;
        std::cout << "[--fast: shrunk configuration]\n";
    }
    if (cfg.runner.jobs > 1)
        std::cout << "[--jobs " << cfg.runner.jobs << "]\n";
    if (cfg.runner.resume)
        std::cout << "[--resume: adopting checkpoint manifest when "
                     "present]\n";
    if (runtime::FaultInjector::global().active())
        std::cout << "[fault injection armed: "
                  << runtime::FaultInjector::global().spec() << "]\n";
    // SIGINT/SIGTERM drain in-flight sweep tasks and write the
    // checkpoint manifest instead of killing the process mid-write.
    runtime::SweepRunner::installSignalHandlers();
    // A drained sweep surfaces as Error(Interrupted) from run(); exit
    // with the conventional interrupt status (and still emit the
    // telemetry summary via static destructors) instead of aborting.
    std::set_terminate([] {
        if (auto eptr = std::current_exception()) {
            try {
                std::rethrow_exception(eptr);
            } catch (const Error &e) {
                std::cerr << e.what() << "\n";
                std::exit(e.code() == ErrorCode::Interrupted ? 130 : 1);
            } catch (const std::exception &e) {
                std::cerr << "fatal: " << e.what() << "\n";
                std::exit(1);
            } catch (...) {
            }
        }
        std::abort();
    });
    if (verify::selfCheckEnabled())
        std::cout << "[--selfcheck: invariant checkers armed on every "
                     "thermal solution]\n";
    if (!cfg.runner.cacheDir.empty()) {
        std::cout << "[result cache: " << cfg.runner.cacheDir << "]\n";
        // The same directory also persists multicore simulations.
        core::setSimCacheDisk(cfg.runner.cacheDir + "/sim");
    }

    static BenchReporter reporter(args.program(), json_path);
    return cfg;
}

/**
 * Flag handling for the closed-form/table benches that take no
 * experiment knobs: `--help` and `--json [PATH]` only, plus the same
 * exit-time telemetry reporter every experiment bench installs via
 * configFromArgs().
 */
inline void
simpleArgs(int argc, char **argv)
{
    Args args(argc, argv,
              "  --json [PATH]   also write the JSON summary to PATH\n"
              "                  (default: BENCH_<name>.json)\n");
    std::string json_path;
    args.optionOrDefault("--json", json_path,
                         "BENCH_" + args.program() + ".json");
    args.finish();
    static BenchReporter reporter(args.program(), json_path);
}

/** Short scheme label for table cells. */
inline std::string
label(stack::Scheme s)
{
    return stack::toString(s);
}

} // namespace xylem::bench

#endif // XYLEM_BENCH_BENCH_UTIL_HPP
