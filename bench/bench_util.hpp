/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: a common
 * banner, the paper-reported reference values, experiment sizing
 * flags (--fast shrinks a bench for smoke runs), the parallel-runtime
 * knobs (--jobs, --cache-dir), and a machine-readable JSON summary
 * emitted when the bench exits (wall time, tasks run, cache hits,
 * solver iterations) so BENCH_*.json trajectories can be tracked.
 *
 * Flags (all optional):
 *   --fast            shrunk experiment configuration
 *   --jobs N          worker threads (default: XYLEM_JOBS or 1)
 *   --cache-dir DIR   persistent result cache (default: XYLEM_CACHE_DIR)
 *   --json PATH       also write the JSON summary to PATH
 *   --selfcheck       run the verification invariant checkers (energy
 *                     balance, maximum principle, achieved residual)
 *                     on every thermal solution; abort on violation
 *   --max-retries N   same-rung retries per failed sweep task before
 *                     escalation/quarantine (default: XYLEM_MAX_RETRIES
 *                     or 1; 0 disables the resilience layer)
 *   --task-timeout S  cooperative per-task wall-clock deadline in
 *                     seconds (default: XYLEM_TASK_TIMEOUT; 0 = none)
 *   --resume          adopt the sweep checkpoint manifest from a
 *                     previous interrupted run in --cache-dir
 *   --fault-spec SPEC arm the deterministic fault-injection harness
 *                     (see runtime/fault_injection.hpp for the syntax;
 *                     default: XYLEM_FAULT_SPEC)
 */

#ifndef XYLEM_BENCH_BENCH_UTIL_HPP
#define XYLEM_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sweep_runner.hpp"
#include "verify/invariants.hpp"
#include "xylem/experiments.hpp"
#include "xylem/sim_cache.hpp"

namespace xylem::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &paper_result)
{
    std::cout << "=== Xylem reproduction: " << experiment << " ===\n";
    std::cout << "Paper reports: " << paper_result << "\n";
    std::cout << "(absolute numbers differ — our substrate is a "
                 "reimplemented simulator; the shape is the claim)\n\n";
}

/**
 * Emits the telemetry summary table and the JSON summary when the
 * bench exits; configFromArgs() owns one as a function-local static.
 */
class BenchReporter
{
  public:
    BenchReporter(std::string name, std::string json_path)
        : name_(std::move(name)), json_path_(std::move(json_path)),
          start_(std::chrono::steady_clock::now())
    {
        // Construct the metrics singleton before this object finishes
        // constructing, so it is destroyed after our destructor runs.
        runtime::Metrics::global().snapshot();
    }

    ~BenchReporter()
    {
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
        auto &metrics = runtime::Metrics::global();
        const auto snap = metrics.snapshot();

        std::cout << "\n";
        metrics.printSummary(std::cout);

        // Warm-start savings of the CG solver (§5 boost loops reuse
        // the previous grid point's field as the initial guess).
        const auto warm_solves = snap.count("solver.warm_solves");
        const auto cold_solves = snap.count("solver.cold_solves");
        if (warm_solves > 0 && cold_solves > 0) {
            const double warm_mean =
                static_cast<double>(snap.count("solver.warm_iterations")) /
                static_cast<double>(warm_solves);
            const double cold_mean =
                static_cast<double>(snap.count("solver.cold_iterations")) /
                static_cast<double>(cold_solves);
            std::cout << "CG warm-start saving: " << Table::num(warm_mean, 1)
                      << " iters/solve warm vs " << Table::num(cold_mean, 1)
                      << " cold ("
                      << Table::num((1.0 - warm_mean / cold_mean) * 100.0,
                                    1)
                      << "% fewer)\n";
        }

        std::ostringstream json;
        json << "{\"bench\":\"" << name_ << "\",\"wall_seconds\":" << wall
             << ",\"tasks_run\":" << snap.count("runner.tasks")
             << ",\"tasks_computed\":" << snap.count("runner.computed")
             << ",\"cache_hits\":" << snap.count("runner.cache_hits")
             << ",\"solver_iterations\":"
             << snap.count("solver.iterations")
             << ",\"workspace_reuses\":"
             << snap.count("solver.workspace_reuses")
             << ",\"apply_seconds\":"
             << snap.timingTotal("solver.apply_seconds")
             << ",\"precond_seconds\":"
             << snap.timingTotal("solver.precond_seconds")
             << ",\"sim_cache_hits\":" << snap.count("simcache.hits")
             << ",\"sim_cache_misses\":" << snap.count("simcache.misses")
             << ",\"retries\":" << snap.count("runner.retries")
             << ",\"escalations\":" << snap.count("runner.escalations")
             << ",\"failed\":" << snap.count("runner.failed")
             << ",\"deadline_exceeded\":"
             << snap.count("runner.deadline_exceeded")
             << ",\"metrics\":" << metrics.toJson() << "}";
        std::cout << "JSON summary: " << json.str() << "\n";
        if (!json_path_.empty()) {
            std::ofstream out(json_path_, std::ios::trunc);
            if (out)
                out << json.str() << "\n";
            else
                std::cerr << "warn: cannot write JSON summary to '"
                          << json_path_ << "'\n";
        }
    }

  private:
    std::string name_;
    std::string json_path_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Standard experiment config: shrunk when `--fast` is passed, with
 * the runtime knobs taken from the environment (XYLEM_JOBS,
 * XYLEM_CACHE_DIR) and overridden by --jobs / --cache-dir. Also
 * installs the exit-time JSON/telemetry reporter.
 */
inline core::ExperimentConfig
configFromArgs(int argc, char **argv)
{
    bool fast = false;
    std::string json_path;
    auto value = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << flag << "\n";
            std::exit(2);
        }
        return argv[++i];
    };
    core::ExperimentConfig cfg = core::ExperimentConfig::standard();
    cfg.runner = runtime::RunnerOptions::fromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fast") {
            fast = true;
        } else if (arg == "--jobs") {
            try {
                cfg.runner.jobs = std::stoi(value(i, "--jobs"));
            } catch (const std::exception &) {
                std::cerr << "invalid --jobs value\n";
                std::exit(2);
            }
        } else if (arg == "--cache-dir") {
            cfg.runner.cacheDir = value(i, "--cache-dir");
        } else if (arg == "--json") {
            json_path = value(i, "--json");
        } else if (arg == "--selfcheck") {
            verify::setSelfCheckEnabled(true);
        } else if (arg == "--max-retries") {
            try {
                cfg.runner.maxRetries =
                    std::stoi(value(i, "--max-retries"));
            } catch (const std::exception &) {
                std::cerr << "invalid --max-retries value\n";
                std::exit(2);
            }
        } else if (arg == "--task-timeout") {
            try {
                cfg.runner.taskTimeoutSeconds =
                    std::stod(value(i, "--task-timeout"));
            } catch (const std::exception &) {
                std::cerr << "invalid --task-timeout value\n";
                std::exit(2);
            }
        } else if (arg == "--resume") {
            cfg.runner.resume = true;
        } else if (arg == "--fault-spec") {
            try {
                runtime::FaultInjector::global().configure(
                    value(i, "--fault-spec"));
            } catch (const Error &e) {
                std::cerr << e.what() << "\n";
                std::exit(2);
            }
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            std::exit(2);
        }
    }
    if (fast) {
        auto runner = cfg.runner;
        cfg = core::ExperimentConfig::small();
        cfg.runner = runner;
        std::cout << "[--fast: shrunk configuration]\n";
    }
    if (cfg.runner.jobs > 1)
        std::cout << "[--jobs " << cfg.runner.jobs << "]\n";
    if (cfg.runner.resume)
        std::cout << "[--resume: adopting checkpoint manifest when "
                     "present]\n";
    if (runtime::FaultInjector::global().active())
        std::cout << "[fault injection armed: "
                  << runtime::FaultInjector::global().spec() << "]\n";
    // SIGINT/SIGTERM drain in-flight sweep tasks and write the
    // checkpoint manifest instead of killing the process mid-write.
    runtime::SweepRunner::installSignalHandlers();
    // A drained sweep surfaces as Error(Interrupted) from run(); exit
    // with the conventional interrupt status (and still emit the
    // telemetry summary via static destructors) instead of aborting.
    std::set_terminate([] {
        if (auto eptr = std::current_exception()) {
            try {
                std::rethrow_exception(eptr);
            } catch (const Error &e) {
                std::cerr << e.what() << "\n";
                std::exit(e.code() == ErrorCode::Interrupted ? 130 : 1);
            } catch (const std::exception &e) {
                std::cerr << "fatal: " << e.what() << "\n";
                std::exit(1);
            } catch (...) {
            }
        }
        std::abort();
    });
    if (verify::selfCheckEnabled())
        std::cout << "[--selfcheck: invariant checkers armed on every "
                     "thermal solution]\n";
    if (!cfg.runner.cacheDir.empty()) {
        std::cout << "[result cache: " << cfg.runner.cacheDir << "]\n";
        // The same directory also persists multicore simulations.
        core::setSimCacheDisk(cfg.runner.cacheDir + "/sim");
    }

    std::string name = argv[0];
    if (const auto slash = name.find_last_of('/');
        slash != std::string::npos)
        name = name.substr(slash + 1);
    static BenchReporter reporter(name, json_path);
    return cfg;
}

/** Short scheme label for table cells. */
inline std::string
label(stack::Scheme s)
{
    return stack::toString(s);
}

} // namespace xylem::bench

#endif // XYLEM_BENCH_BENCH_UTIL_HPP
