/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: a common
 * banner, the paper-reported reference values, and experiment sizing
 * flags (--fast shrinks a bench for smoke runs).
 */

#ifndef XYLEM_BENCH_BENCH_UTIL_HPP
#define XYLEM_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>

#include "xylem/experiments.hpp"

namespace xylem::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &paper_result)
{
    std::cout << "=== Xylem reproduction: " << experiment << " ===\n";
    std::cout << "Paper reports: " << paper_result << "\n";
    std::cout << "(absolute numbers differ — our substrate is a "
                 "reimplemented simulator; the shape is the claim)\n\n";
}

/**
 * Standard experiment config, shrunk when `--fast` is passed.
 */
inline core::ExperimentConfig
configFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--fast") {
            auto cfg = core::ExperimentConfig::small();
            std::cout << "[--fast: shrunk configuration]\n";
            return cfg;
        }
    }
    return core::ExperimentConfig::standard();
}

/** Short scheme label for table cells. */
inline std::string
label(stack::Scheme s)
{
    return stack::toString(s);
}

} // namespace xylem::bench

#endif // XYLEM_BENCH_BENCH_UTIL_HPP
