/**
 * @file
 * Fig. 16: λ-aware frequency boosting (§7.6.2). First the whole die
 * is brought to the highest frequency below Tj,max (Single
 * Frequency), then only the inner cores are boosted further
 * (Multiple Frequency). Averaged over the application suite.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 16 — λ-aware frequency boosting (avg over all apps)",
        "in base the inner cores cannot be boosted beyond the uniform "
        "point; in banke they gain ~100 MHz because they sit closer to "
        "the high-λ pillar sites");

    const core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const auto entries = core::runFreqBoostingExperiment(
        cfg, {Scheme::Base, Scheme::Bank, Scheme::BankE});

    Table t({"scheme", "Single Frequency (GHz)",
             "Multiple Frequency (GHz)", "inner-core gain (MHz)"});
    for (const auto &e : entries) {
        t.addRow({bench::label(e.scheme), Table::num(e.singleGHz, 2),
                  Table::num(e.multipleGHz, 2),
                  Table::num((e.multipleGHz - e.singleGHz) * 1000.0, 0)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: the Multiple-vs-Single gap widens from "
                 "base to banke.\n";
    return 0;
}
