/**
 * @file
 * Table 3: the architectural parameters of the simulated system,
 * printed from the live configuration objects plus measured idle
 * DRAM latency.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "cpu/multicore.hpp"
#include "dram/wideio.hpp"
#include "power/dvfs.hpp"

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;

    bench::banner("Table 3 — architectural parameters",
                  "8x 4-issue OoO @2.4-3.5 GHz; 32KB 2-way L1s; 256KB "
                  "8-way private L2; snoopy MESI bus; 8 dies x 4Gb; 4 "
                  "Wide I/O channels; ~100 cycles idle DRAM RT; "
                  "Tj,max 100C / DRAM 95C");

    const cpu::MulticoreConfig cfg;
    const power::DvfsTable dvfs = power::DvfsTable::standard();
    const dram::WideIoDram dram(cfg.dram);

    Table t({"parameter", "value"});
    t.addRow({"cores", std::to_string(cfg.numCores) + " x " +
                           std::to_string(cfg.issueWidth) +
                           "-issue out-of-order"});
    t.addRow({"frequency range",
              Table::num(dvfs.minFrequency(), 1) + " - " +
                  Table::num(dvfs.maxFrequency(), 1) + " GHz in " +
                  Table::num(dvfs.stepGHz() * 1000, 0) + " MHz steps"});
    t.addRow({"L1 I/D", std::to_string(cfg.l1iBytes >> 10) + " KB, " +
                            std::to_string(cfg.l1iWays) + "-way (D is WT)"});
    t.addRow({"L2 (private, WB)", std::to_string(cfg.l2Bytes >> 10) +
                                      " KB, " + std::to_string(cfg.l2Ways) +
                                      "-way"});
    t.addRow({"line size", std::to_string(cfg.lineBytes) + " B"});
    t.addRow({"coherence", "bus-based snoopy MESI at the L2s"});
    t.addRow({"DRAM dies",
              std::to_string(cfg.dram.geometry.numDies) + " x 4 Gb = " +
                  std::to_string(cfg.dram.geometry.numDies / 2) +
                  " GB stack"});
    t.addRow({"channels / ranks / banks",
              std::to_string(cfg.dram.geometry.channels) + " / " +
                  std::to_string(cfg.dram.geometry.numDies) +
                  " per channel / " +
                  std::to_string(cfg.dram.geometry.banksPerRank) +
                  " per rank"});
    t.addRow({"DRAM idle round trip",
              Table::num(dram.idleLatency(), 1) + " ns = " +
                  Table::num(dram.idleLatency() * 2.4, 0) +
                  " cycles @2.4 GHz (paper: ~100)"});
    t.addRow({"page / transfer", "2 KB row, 64 B line"});
    t.addRow({"max temperature", "processor 100 C; DRAM 95 C (JEDEC)"});
    t.print(std::cout);
    return 0;
}
