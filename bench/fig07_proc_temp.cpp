/**
 * @file
 * Fig. 7: steady-state processor-die hotspot temperature for all 17
 * applications under base/bank/banke/prior at 2.4/2.8/3.2/3.5 GHz.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using core::ExperimentConfig;
    using stack::Scheme;

    bench::banner(
        "Fig. 7 — processor-die steady-state temperature",
        "base approaches Tj,max=100C at 2.4 GHz for the compute-bound "
        "codes; 2.4->3.5 GHz adds ~10C (FT) to ~30C (LU-NAS); bank and "
        "banke cut temperatures at every frequency; prior (TTSVs "
        "without shorting) tracks base almost exactly");

    const ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const std::vector<Scheme> schemes = {Scheme::Base, Scheme::Bank,
                                         Scheme::BankE, Scheme::Prior};
    const auto sweep = core::runTemperatureSweep(cfg, schemes);

    std::vector<std::string> headers = {"app", "scheme"};
    for (double f : cfg.frequencies)
        headers.push_back(Table::num(f, 1) + " GHz");
    Table t(headers);
    for (const auto &app : cfg.apps) {
        for (Scheme s : schemes) {
            std::vector<std::string> row = {app, bench::label(s)};
            for (double f : cfg.frequencies) {
                row.push_back(Table::num(
                    core::sweepEntry(sweep, app, s, f).procHotspotC, 1));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);

    std::cout << "\nKey shape checks (2.4 GHz):\n";
    for (Scheme s : {Scheme::Bank, Scheme::BankE, Scheme::Prior}) {
        std::cout << "  mean reduction of " << bench::label(s)
                  << " vs base: "
                  << Table::num(core::meanTempReduction(sweep, s, 2.4), 2)
                  << " C\n";
    }
    return 0;
}
