/**
 * @file
 * Ablation: hotspot reduction vs number of shorted µbump-TTSV
 * pillars. Sites are added on a uniform grid over the die (ignoring
 * the peripheral-logic constraint — this is a what-if, not a
 * manufacturable layout) to expose the diminishing returns that make
 * the paper's 28-36 TTSVs a sensible operating point.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workloads/profile.hpp"
#include "xylem/system.hpp"

namespace {

/** First `n` sites of a centred uniform k x k grid over the die. */
std::vector<xylem::geometry::Point>
gridSites(int n)
{
    std::vector<xylem::geometry::Point> sites;
    int k = 1;
    while (k * k < n)
        ++k;
    const double die = 8e-3;
    for (int iy = 0; iy < k && static_cast<int>(sites.size()) < n; ++iy) {
        for (int ix = 0; ix < k && static_cast<int>(sites.size()) < n;
             ++ix) {
            sites.push_back({(ix + 0.5) * die / k, (iy + 0.5) * die / k});
        }
    }
    return sites;
}

} // namespace

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;

    bench::banner(
        "Ablation — pillar count vs hotspot reduction",
        "not in the paper: each additional pillar helps less; the "
        "first few dozen capture most of the benefit, supporting the "
        "paper's 28-36 TTSV design point at <1% area overhead");

    const auto &app = workloads::profileByName("LU(NAS)");

    core::SystemConfig base_cfg;
    core::StackSystem base(base_cfg);
    const double t_base = base.evaluate(app, 2.4).procHotspot;
    std::cout << "base hotspot at 2.4 GHz: " << Table::num(t_base, 2)
              << " C\n\n";

    Table t({"pillars", "area overhead (%)", "hotspot (C)", "dT (C)",
             "dT per pillar (mC)"});
    double prev_dt = 0.0;
    for (int n : {4, 9, 16, 25, 36, 64, 100}) {
        core::SystemConfig cfg;
        cfg.stackSpec.scheme = stack::Scheme::BankE; // shorting enabled
        cfg.stackSpec.customTtsvSites = gridSites(n);
        core::StackSystem system(cfg);
        const double hot = system.evaluate(app, 2.4).procHotspot;
        const double dt = t_base - hot;
        t.addRow({std::to_string(n),
                  Table::num(system.builtStack().ttsvAreaOverhead() *
                                 100.0, 2),
                  Table::num(hot, 2), Table::num(dt, 2),
                  Table::num((dt - prev_dt) * 1000.0 /
                                 std::max(1, n), 1)});
        prev_dt = dt;
    }
    t.print(std::cout);
    return 0;
}
