/**
 * @file
 * Fig. 9: iso-temperature frequency increase over the 2.4 GHz base
 * system enabled by bank and banke (§7.3.1).
 */

#include "boost_common.hpp"

int
main(int argc, char **argv)
{
    return xylem::bench::boostBench(
        argc, argv, "Fig. 9 — system frequency increase over base",
        "bank boosts by ~400 MHz on average, banke by ~720 MHz, at the "
        "same steady-state temperature as base at 2.4 GHz",
        "MHz", [](const xylem::core::BoostEntry &e) {
            return e.freqGainMHz;
        },
        false);
}
