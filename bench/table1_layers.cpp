/**
 * @file
 * Table 1: dimensions and thermal conductivities of every layer of
 * the built stack, printed from the assembled model (not from the
 * constants), so this doubles as a structural check.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "stack/stack.hpp"

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;

    bench::banner("Table 1 — stack dimensions and conductivities",
                  "heat sink 6x6x0.7cm @400; IHS 3x3x0.1cm @400; TIM "
                  "50µm @5; DRAM Si 100µm @120 (TSV 400, bus 190); DRAM "
                  "metal 2µm @9; D2D 20µm @1.5 (µbump 40); proc Si "
                  "100µm @120; proc metal 12µm @12");

    stack::StackSpec spec;
    spec.scheme = stack::Scheme::BankE;
    const auto stk = stack::buildStack(spec);

    Table t({"#", "layer", "kind", "thickness (um)", "lambda min",
             "lambda max", "extent"});
    for (std::size_t l = 0; l < stk.layers.size(); ++l) {
        const auto &layer = stk.layers[l];
        double lo = 1e30, hi = 0.0;
        for (double v : layer.conductivity.data()) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        std::string extent = "die (8x8 mm)";
        if (layer.fullSide > 0.0)
            extent = Table::num(layer.fullSide * 100.0, 0) + "x" +
                     Table::num(layer.fullSide * 100.0, 0) + " cm";
        t.addRow({std::to_string(l), layer.name, toString(layer.kind),
                  Table::num(layer.thickness * 1e6, 0), Table::num(lo, 1),
                  Table::num(hi, 1), extent});
    }
    t.print(std::cout);
    std::cout << "\nHeterogeneous layers show lambda ranges: silicon "
                 "(Si 120 / TSV bus 190 / TTSV 400) and the D2D layers "
                 "(background 1.5 / shorted dummy-µbump pillars ~44).\n";
    return 0;
}
