/**
 * @file
 * Fig. 14: bank vs isoCount — same number of TTSVs (28), different
 * placement. Moving the central-stripe TTSVs closer to the processor
 * hotspots buys additional cooling: placement matters.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 14 — iso TTSV count: bank vs isoCount",
        "with the same 28 TTSVs per die, isoCount (central-stripe "
        "TTSVs moved near the cores) runs 3.7C cooler than bank on "
        "average — slightly less than banke achieves with 36");

    const core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const auto sweep = core::runTemperatureSweep(
        cfg, {Scheme::Bank, Scheme::IsoCount});

    std::vector<std::string> headers = {"app", "scheme"};
    for (double f : cfg.frequencies)
        headers.push_back(Table::num(f, 1) + " GHz");
    Table t(headers);
    std::vector<double> deltas;
    for (const auto &app : cfg.apps) {
        for (Scheme s : {Scheme::Bank, Scheme::IsoCount}) {
            std::vector<std::string> row = {app, bench::label(s)};
            for (double f : cfg.frequencies) {
                row.push_back(Table::num(
                    core::sweepEntry(sweep, app, s, f).procHotspotC, 1));
            }
            t.addRow(row);
        }
        deltas.push_back(
            core::sweepEntry(sweep, app, Scheme::Bank, 2.4).procHotspotC -
            core::sweepEntry(sweep, app, Scheme::IsoCount, 2.4)
                .procHotspotC);
    }
    t.print(std::cout);
    std::cout << "\nMean isoCount advantage over bank at 2.4 GHz: "
              << Table::num(mean(deltas), 2)
              << " C (paper: 3.7 C). TTSV placement, not just count, "
                 "drives the benefit.\n";
    return 0;
}
