/**
 * @file
 * Fig. 19: sensitivity to the number of stacked memory dies
 * (§7.7.2). More dies add power and distance to the heat sink
 * (averaged over all applications, 2.4 GHz).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 19 — effect of the number of memory dies (2.4 GHz)",
        "processor temperature grows with the number of stacked DRAM "
        "dies (4 < 8 < 12) for every scheme; Xylem helps more as more "
        "D2D layers pile up");

    const core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const std::vector<Scheme> schemes = {Scheme::Base, Scheme::Bank,
                                         Scheme::BankE};
    const auto entries =
        core::runDieCountSweep(cfg, {4, 8, 12}, schemes);

    Table t({"memory dies", "base (C)", "bank (C)", "banke (C)",
             "banke benefit (C)"});
    for (int dies : {4, 8, 12}) {
        std::vector<std::string> row = {std::to_string(dies)};
        double base = 0, banke = 0;
        for (Scheme s : schemes) {
            for (const auto &e : entries) {
                if (e.parameter == dies && e.scheme == s) {
                    row.push_back(Table::num(e.avgProcHotspotC, 2));
                    if (s == Scheme::Base)
                        base = e.avgProcHotspotC;
                    if (s == Scheme::BankE)
                        banke = e.avgProcHotspotC;
                }
            }
        }
        row.push_back(Table::num(base - banke, 2));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
