/**
 * @file
 * Shared driver for Figs. 9-12, which all derive from the same
 * iso-temperature frequency-boost experiment (§7.3): each bench
 * binary prints one of the four reported metrics.
 */

#ifndef XYLEM_BENCH_BOOST_COMMON_HPP
#define XYLEM_BENCH_BOOST_COMMON_HPP

#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace xylem::bench {

/**
 * Run the boost experiment and print `metric` per app for bank and
 * banke, plus the mean.
 *
 * @param geometric use the geometric mean of (1 + metric/100) - 1
 *                  (the paper uses geo-means for ratios)
 */
inline int
boostBench(int argc, char **argv, const std::string &title,
           const std::string &paper, const std::string &unit,
           const std::function<double(const core::BoostEntry &)> &metric,
           bool geometric)
{
    using stack::Scheme;
    banner(title, paper);

    const core::ExperimentConfig cfg = configFromArgs(argc, argv);
    const auto entries =
        core::runBoostExperiment(cfg, {Scheme::Bank, Scheme::BankE});

    Table t({"app", "bank (" + unit + ")", "banke (" + unit + ")"});
    std::vector<double> bank_vals, banke_vals;
    for (const auto &app : cfg.apps) {
        double bank = 0, banke = 0;
        for (const auto &e : entries) {
            if (e.app != app)
                continue;
            (e.scheme == Scheme::Bank ? bank : banke) = metric(e);
        }
        bank_vals.push_back(bank);
        banke_vals.push_back(banke);
        t.addRow({app, Table::num(bank, 1), Table::num(banke, 1)});
    }
    auto summarise = [&](std::vector<double> vals) {
        if (!geometric)
            return mean(vals);
        for (double &v : vals)
            v = 1.0 + v / 100.0;
        return (geomean(vals) - 1.0) * 100.0;
    };
    t.addRow({"Mean", Table::num(summarise(bank_vals), 1),
              Table::num(summarise(banke_vals), 1)});
    t.print(std::cout);
    return 0;
}

} // namespace xylem::bench

#endif // XYLEM_BENCH_BOOST_COMMON_HPP
