/**
 * @file
 * Fig. 3 / §2.5 / §4.1: the thermal-resistance arithmetic behind the
 * Xylem idea — the average D2D layer vs the aligned-and-shorted
 * dummy-µbump pillar, and the surrounding layers.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "materials/library.hpp"

int
main(int argc, char **argv)
{
    xylem::bench::simpleArgs(argc, argv);
    using namespace xylem;
    using namespace xylem::materials;
    namespace mc = materials::constants;

    bench::banner("Fig. 3 — thermal resistances per unit area",
                  "D2D avg 13.33, shorted pillar 0.46, frontside metal "
                  "0.22, bulk Si 0.83, proc metal 1.0 [mm^2-K/W]");

    auto rth = [](double t, double lambda) {
        return slabResistance(t, lambda) / units::mm2KperW;
    };

    Table t({"layer / path", "thickness (um)", "lambda (W/mK)",
             "Rth (mm2-K/W)", "paper"});
    t.addRow({"D2D layer (average)", "20", "1.5",
              Table::num(rth(mc::thicknessD2D, mc::lambdaD2DBackground)),
              "13.33"});
    const Material pillar = shortedBumpColumn();
    t.addRow({"D2D at shorted bump-TTSV site", "20",
              Table::num(pillar.conductivity, 1),
              Table::num(rth(mc::thicknessD2D, pillar.conductivity)),
              "0.46"});
    t.addRow({"DRAM frontside metal", "2", "9",
              Table::num(rth(mc::thicknessDramMetal, mc::lambdaDramMetal)),
              "0.22"});
    t.addRow({"bulk silicon", "100", "120",
              Table::num(rth(mc::thicknessDieSilicon, mc::lambdaSilicon)),
              "0.83"});
    t.addRow({"processor metal stack", "12", "12",
              Table::num(rth(mc::thicknessProcMetal, mc::lambdaProcMetal)),
              "1.00"});
    t.addRow({"TIM", "50", "5",
              Table::num(rth(mc::thicknessTim, mc::lambdaTim)), "10.00"});
    t.print(std::cout);

    const double avg = rth(mc::thicknessD2D, mc::lambdaD2DBackground);
    const double site = rth(mc::thicknessD2D, pillar.conductivity);
    std::cout << "\nThe shorted site is " << Table::num(avg / site, 1)
              << "x less resistive than the average D2D layer "
                 "(paper: ~30x).\n";
    std::cout << "The D2D layer is "
              << Table::num(avg / rth(mc::thicknessDieSilicon,
                                      mc::lambdaSilicon), 1)
              << "x more resistive than bulk silicon (paper: ~16x) and "
              << Table::num(avg / rth(mc::thicknessProcMetal,
                                      mc::lambdaProcMetal), 1)
              << "x more than the processor metal stack (paper: ~13x).\n";
    return 0;
}
