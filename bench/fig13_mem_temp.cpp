/**
 * @file
 * Fig. 13: steady-state temperature of the hottest (bottom-most)
 * memory die for all applications, schemes and frequencies, with the
 * 95 °C JEDEC extended-range limit as the reference line.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int
main(int argc, char **argv)
{
    using namespace xylem;
    using stack::Scheme;

    bench::banner(
        "Fig. 13 — bottom-most DRAM die temperature",
        "close to 90C at 2.4 GHz for the demanding codes (within the "
        "95C JEDEC extended range, ~10C below the processor); bank and "
        "banke reduce it, prior does not");

    const core::ExperimentConfig cfg = bench::configFromArgs(argc, argv);
    const std::vector<Scheme> schemes = {Scheme::Base, Scheme::Bank,
                                         Scheme::BankE, Scheme::Prior};
    const auto sweep = core::runTemperatureSweep(cfg, schemes);

    std::vector<std::string> headers = {"app", "scheme"};
    for (double f : cfg.frequencies)
        headers.push_back(Table::num(f, 1) + " GHz");
    Table t(headers);
    int over_limit = 0;
    for (const auto &app : cfg.apps) {
        for (Scheme s : schemes) {
            std::vector<std::string> row = {app, bench::label(s)};
            for (double f : cfg.frequencies) {
                const auto &e = core::sweepEntry(sweep, app, s, f);
                row.push_back(Table::num(e.dramBottomHotspotC, 1));
                over_limit += e.dramBottomHotspotC > 95.0;
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);

    std::cout << "\nCells above the 95C JEDEC limit: " << over_limit
              << " (a real system would throttle those points; the "
                 "paper shows the same overshoot at high frequency).\n";
    std::cout << "Processor-vs-DRAM gap at base/2.4 GHz (paper: ~10C):\n";
    for (const auto &app : {std::string("LU(NAS)"), std::string("FT")}) {
        if (std::find(cfg.apps.begin(), cfg.apps.end(), app) ==
            cfg.apps.end())
            continue;
        const auto &e = core::sweepEntry(sweep, app, Scheme::Base, 2.4);
        std::cout << "  " << app << ": proc "
                  << Table::num(e.procHotspotC, 1) << " C vs DRAM "
                  << Table::num(e.dramBottomHotspotC, 1) << " C\n";
    }
    return 0;
}
