/**
 * @file
 * Fig. 11: processor-memory stack power increase after the boost
 * (§7.3.3). The sink dissipates the extra power at the same
 * temperature because the Xylem stack conducts better.
 */

#include "boost_common.hpp"

int
main(int argc, char **argv)
{
    return xylem::bench::boostBench(
        argc, argv, "Fig. 11 — stack power increase",
        "bank raises stack power by ~12% (geo-mean), banke by ~22%",
        "%", [](const xylem::core::BoostEntry &e) {
            return e.powerIncreasePct;
        },
        true);
}
