/**
 * @file
 * Load generator for the thermal simulation service: N concurrent
 * clients fire steady-state queries at a daemon (an in-process server
 * by default, or an external xylem_serve via --socket) with a
 * configurable duplicate-scenario fraction, then report throughput,
 * client-side latency percentiles (p50/p95/p99), dedup hits, and
 * admission-control drops, and verify that a served response is
 * bit-identical to the same query run directly in batch mode.
 *
 * The duplicate mix is deterministic and shared across clients: the
 * same request index maps to the same scenario in every client, so
 * concurrent duplicates actually collide in the daemon's in-flight
 * map and exercise the micro-batching path.
 *
 * Flags:
 *   --socket PATH      use an external daemon instead of in-process
 *   --clients N        concurrent client connections (default 8)
 *   --requests N       requests per client (default 24)
 *   --dup-percent P    share of duplicate-scenario requests (default 50)
 *   --jobs N           in-process server worker threads (default 4)
 *   --queue-capacity N in-process server queue bound (default 64)
 *   --verify N         scenarios to check bit-identical vs batch mode
 *                      (default 3; 0 disables)
 *   --json [PATH]      summary JSON (default BENCH_service.json)
 *   --fast             smoke configuration (4 clients x 6 requests)
 *
 * Exit status: 0 on success; 1 when any transport error occurs, a
 * response is not bit-identical to batch mode, no dedup hit was
 * observed despite duplicate traffic, or requests were shed although
 * the offered load fits the queue bound.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"
#include "xylem/system.hpp"

namespace {

using namespace xylem;
using Clock = std::chrono::steady_clock;

/** The benchmark stack: small grid so a steady solve is fast. */
constexpr const char *kGridNx = "32";
constexpr const char *kGridNy = "32";

const std::vector<std::string> kApps = {"FFT", "LU", "Radix",
                                        "Cholesky"};

struct Scenario
{
    std::string app;
    double freqGHz = 0.0;
};

/** Same request index -> same scenario in every client (collides). */
Scenario
sharedScenario(int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(r) % kApps.size()];
    s.freqGHz = 2.0 + 0.1 * (r % 5);
    return s;
}

/** Client-unique scenario: never collides across clients. */
Scenario
uniqueScenario(int client, int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(client + r) % kApps.size()];
    s.freqGHz = 1.0 + 0.001 * (client * 1000 + r);
    return s;
}

/** Deterministic duplicate mix, identical across clients. */
bool
isShared(int r, int dup_percent)
{
    return (r * 37) % 100 < dup_percent;
}

std::string
requestFrame(std::uint64_t id, const Scenario &s)
{
    service::JsonValue::Object config;
    config.emplace("gridNx", service::JsonValue(kGridNx));
    config.emplace("gridNy", service::JsonValue(kGridNy));
    service::JsonValue::Object req;
    req.emplace("id", service::JsonValue(static_cast<double>(id)));
    req.emplace("query", service::JsonValue("steady"));
    req.emplace("app", service::JsonValue(s.app));
    req.emplace("freqGHz", service::JsonValue(s.freqGHz));
    req.emplace("config", service::JsonValue(std::move(config)));
    std::string frame = service::JsonValue(std::move(req)).dump();
    frame += '\n';
    return frame;
}

struct ClientStats
{
    std::vector<double> latencies;
    int ok = 0;
    int overloaded = 0;
    int errors = 0;
    int transport_failures = 0;
};

/** One client: a connection firing requests back-to-back. */
ClientStats
runClient(const std::string &socket_path, int client, int requests,
          int dup_percent)
{
    ClientStats stats;
    try {
        const service::FdGuard fd = service::connectUnix(socket_path);
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        for (int r = 0; r < requests; ++r) {
            const Scenario s = isShared(r, dup_percent)
                                   ? sharedScenario(r)
                                   : uniqueScenario(client, r);
            const std::uint64_t id =
                static_cast<std::uint64_t>(client) * 100000 +
                static_cast<std::uint64_t>(r);
            const auto t0 = Clock::now();
            if (!service::sendAll(fd.get(), requestFrame(id, s))) {
                ++stats.transport_failures;
                break;
            }
            std::string line;
            if (reader.next(line) != service::ReadStatus::Frame) {
                ++stats.transport_failures;
                break;
            }
            stats.latencies.push_back(
                std::chrono::duration<double>(Clock::now() - t0)
                    .count());
            const service::JsonValue resp = service::parseJson(line);
            const service::JsonValue *ok = resp.find("ok");
            if (ok && ok->isBoolean() && ok->boolean()) {
                ++stats.ok;
            } else {
                const service::JsonValue *error = resp.find("error");
                const service::JsonValue *code =
                    error ? error->find("code") : nullptr;
                if (code && code->isString() &&
                    code->str() == "overloaded")
                    ++stats.overloaded;
                else
                    ++stats.errors;
            }
        }
    } catch (const Error &e) {
        std::cerr << "client " << client << ": " << e.what() << "\n";
        ++stats.transport_failures;
    }
    return stats;
}

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** Fetch a counter from the daemon's metrics query (over the wire). */
std::uint64_t
wireCounter(const service::JsonValue &metrics, const std::string &name)
{
    const service::JsonValue *counters = metrics.find("counters");
    const service::JsonValue *v = counters ? counters->find(name)
                                           : nullptr;
    return v && v->isNumber()
               ? static_cast<std::uint64_t>(v->number())
               : 0;
}

/**
 * Ask the daemon for `scenario` once more and compare every double in
 * the response bit-for-bit with a cold batch-mode solve of the same
 * query. Returns false (and explains) on any mismatch.
 */
bool
verifyBitIdentical(const std::string &socket_path,
                   const Scenario &scenario)
{
    const service::FdGuard fd = service::connectUnix(socket_path);
    if (!service::sendAll(fd.get(), requestFrame(1, scenario)))
        return false;
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    if (reader.next(line) != service::ReadStatus::Frame)
        return false;
    const service::JsonValue resp = service::parseJson(line);
    const service::JsonValue *ok = resp.find("ok");
    if (!ok || !ok->isBoolean() || !ok->boolean())
        return false;

    // The same query, cold, through the batch-mode pipeline.
    std::istringstream config_text(std::string("gridNx = ") + kGridNx +
                                   "\ngridNy = " + kGridNy + "\n");
    core::StackSystem system(core::parseSystemConfig(config_text));
    const core::EvalResult eval = system.evaluate(
        workloads::profileByName(scenario.app), scenario.freqGHz);

    const auto bitEqual = [](double a, double b) {
        return std::memcmp(&a, &b, sizeof a) == 0;
    };
    const auto field = [&](const char *name) {
        const service::JsonValue *v = resp.find(name);
        return v && v->isNumber() ? v->number() : -1.0;
    };
    struct Check
    {
        const char *name;
        double served;
        double batch;
    };
    const Check checks[] = {
        {"procHotspotC", field("procHotspotC"), eval.procHotspot},
        {"dramBottomHotspotC", field("dramBottomHotspotC"),
         eval.dramBottomHotspot},
        {"procPowerW", field("procPowerW"), eval.procPowerTotal},
        {"dramPowerW", field("dramPowerW"), eval.dramPowerTotal},
        {"simSeconds", field("simSeconds"), eval.seconds},
    };
    for (const Check &c : checks) {
        if (!bitEqual(c.served, c.batch)) {
            std::cerr << "bit-identity violation: " << c.name
                      << " served " << service::formatDouble(c.served)
                      << " != batch "
                      << service::formatDouble(c.batch) << " (app "
                      << scenario.app << ", freq " << scenario.freqGHz
                      << ")\n";
            return false;
        }
    }
    const service::JsonValue *cores = resp.find("coreHotspotC");
    if (!cores || !cores->isArray() ||
        cores->array().size() != eval.coreHotspot.size())
        return false;
    for (std::size_t i = 0; i < eval.coreHotspot.size(); ++i)
        if (!bitEqual(cores->array()[i].number(),
                      eval.coreHotspot[i])) {
            std::cerr << "bit-identity violation: coreHotspotC[" << i
                      << "]\n";
            return false;
        }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(
        argc, argv,
        "  --socket PATH      external daemon (default: in-process)\n"
        "  --clients N        concurrent clients (default 8)\n"
        "  --requests N       requests per client (default 24)\n"
        "  --dup-percent P    duplicate-scenario share (default 50)\n"
        "  --jobs N           in-process server workers (default 4)\n"
        "  --queue-capacity N in-process queue bound (default 64)\n"
        "  --verify N         bit-identity scenarios (default 3)\n"
        "  --json [PATH]      summary JSON "
        "(default BENCH_service.json)\n"
        "  --fast             smoke configuration\n");
    int clients = 8;
    int requests = 24;
    if (args.flag("--fast")) {
        clients = 4;
        requests = 6;
    }
    std::string external_socket;
    if (const auto path = args.option("--socket"))
        external_socket = *path;
    clients = args.intOption("--clients", clients);
    requests = args.intOption("--requests", requests);
    const int dup_percent = args.intOption("--dup-percent", 50);
    const int jobs = args.intOption("--jobs", 4);
    const int queue_capacity = args.intOption("--queue-capacity", 64);
    const int verify_n = args.intOption("--verify", 3);
    std::string json_path;
    const bool want_json =
        args.optionOrDefault("--json", json_path, "BENCH_service.json");
    args.finish();

    bench::banner("perf_service",
                  "n/a (serving-layer microbenchmark, not a paper "
                  "figure)");

    // In-process daemon unless an external one was named.
    std::string socket_path = external_socket;
    std::unique_ptr<service::Server> server;
    std::thread server_thread;
    if (socket_path.empty()) {
        socket_path = "/tmp/xylem_perf_" + std::to_string(::getpid()) +
                      ".sock";
        service::ServerOptions opts;
        opts.socketPath = socket_path;
        opts.workers = jobs;
        opts.queueCapacity = static_cast<std::size_t>(queue_capacity);
        server = std::make_unique<service::Server>(opts);
        server->start();
        server_thread = std::thread([&server] { server->run(); });
    }

    std::cout << clients << " clients x " << requests << " requests, "
              << dup_percent << "% duplicate scenarios, socket "
              << socket_path << "\n";

    const auto t0 = Clock::now();
    std::vector<ClientStats> stats(
        static_cast<std::size_t>(clients));
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                stats[static_cast<std::size_t>(c)] = runClient(
                    socket_path, c, requests, dup_percent);
            });
        for (auto &t : threads)
            t.join();
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    ClientStats total;
    for (const auto &s : stats) {
        total.latencies.insert(total.latencies.end(),
                               s.latencies.begin(), s.latencies.end());
        total.ok += s.ok;
        total.overloaded += s.overloaded;
        total.errors += s.errors;
        total.transport_failures += s.transport_failures;
    }
    std::sort(total.latencies.begin(), total.latencies.end());
    const double p50 = quantile(total.latencies, 0.50);
    const double p95 = quantile(total.latencies, 0.95);
    const double p99 = quantile(total.latencies, 0.99);
    const double throughput =
        wall > 0.0 ? static_cast<double>(total.ok) / wall : 0.0;

    // Server-side telemetry over the wire (works for external daemons
    // too), incl. the dedup counter the acceptance criteria name.
    std::uint64_t dedup_hits = 0;
    std::uint64_t shed = 0;
    std::string metrics_json = "{}";
    try {
        const service::FdGuard fd = service::connectUnix(socket_path);
        service::sendAll(fd.get(), "{\"query\":\"metrics\"}\n");
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        std::string line;
        if (reader.next(line) == service::ReadStatus::Frame) {
            const service::JsonValue resp = service::parseJson(line);
            if (const service::JsonValue *m = resp.find("metrics")) {
                dedup_hits = wireCounter(*m, "service.dedup_hits");
                shed = wireCounter(*m, "service.shed");
                metrics_json = m->dump();
            }
        }
    } catch (const Error &e) {
        std::cerr << "metrics query failed: " << e.what() << "\n";
    }

    bool bit_identical = true;
    for (int i = 0; i < verify_n; ++i)
        bit_identical =
            verifyBitIdentical(socket_path, sharedScenario(i)) &&
            bit_identical;

    if (server) {
        server->requestStop();
        server_thread.join();
    }

    std::cout << "\nresponses: " << total.ok << " ok, "
              << total.overloaded << " overloaded, " << total.errors
              << " errors, " << total.transport_failures
              << " transport failures\n";
    std::cout << "throughput: " << Table::num(throughput, 1)
              << " req/s over " << Table::num(wall, 2) << " s\n";
    std::cout << "latency: p50 " << Table::num(p50 * 1e3, 2)
              << " ms, p95 " << Table::num(p95 * 1e3, 2)
              << " ms, p99 " << Table::num(p99 * 1e3, 2) << " ms\n";
    std::cout << "dedup hits: " << dedup_hits << ", shed: " << shed
              << ", bit-identical vs batch: "
              << (verify_n > 0 ? (bit_identical ? "yes" : "NO")
                               : "skipped")
              << "\n";

    if (want_json) {
        std::ostringstream json;
        json << "{\"bench\":\"perf_service\",\"clients\":" << clients
             << ",\"requests_per_client\":" << requests
             << ",\"dup_percent\":" << dup_percent
             << ",\"wall_seconds\":" << wall
             << ",\"responses_ok\":" << total.ok
             << ",\"overloaded\":" << total.overloaded
             << ",\"errors\":" << total.errors
             << ",\"transport_failures\":" << total.transport_failures
             << ",\"throughput_rps\":" << throughput
             << ",\"p50_s\":" << service::formatDouble(p50)
             << ",\"p95_s\":" << service::formatDouble(p95)
             << ",\"p99_s\":" << service::formatDouble(p99)
             << ",\"dedup_hits\":" << dedup_hits
             << ",\"shed\":" << shed << ",\"bit_identical\":"
             << (bit_identical ? "true" : "false")
             << ",\"metrics\":" << metrics_json << "}";
        std::ofstream out(json_path, std::ios::trunc);
        if (out) {
            out << json.str() << "\n";
            std::cout << "JSON written to " << json_path << "\n";
        } else {
            std::cerr << "warn: cannot write JSON summary to '"
                      << json_path << "'\n";
            return 1;
        }
    }

    // Acceptance gates: every request answered; no shedding when the
    // offered load fits the queue; duplicates actually deduped;
    // served results bit-identical to batch mode.
    if (total.transport_failures > 0 || total.errors > 0)
        return 1;
    if (!bit_identical)
        return 1;
    if (clients <= queue_capacity && total.overloaded > 0) {
        std::cerr << "unexpected shedding: " << total.overloaded
                  << " requests below the queue bound\n";
        return 1;
    }
    if (clients > 1 && requests > 1 && dup_percent >= 50 &&
        dedup_hits == 0) {
        std::cerr << "no dedup hits despite duplicate traffic\n";
        return 1;
    }
    return 0;
}
