/**
 * @file
 * Load generator for the thermal simulation service: N concurrent
 * clients fire steady-state queries at a daemon (an in-process server
 * by default, or an external xylem_serve via --socket) with a
 * configurable duplicate-scenario fraction, then report throughput,
 * client-side latency percentiles (p50/p95/p99), dedup hits, and
 * admission-control drops, and verify that a served response is
 * bit-identical to the same query run directly in batch mode.
 *
 * The duplicate mix is deterministic and shared across clients: the
 * same request index maps to the same scenario in every client, so
 * concurrent duplicates actually collide in the daemon's in-flight
 * map and exercise the micro-batching path.
 *
 * Resilience: clients reconnect with capped exponential backoff
 * (deterministic jitter) on transport failures and retry overloaded
 * responses a bounded number of times; retry/reconnect counts are
 * reported. --deadline-ms attaches an end-to-end budget to every
 * request, and the latency percentiles are split by outcome (ok /
 * overloaded / deadline-exceeded / error) so a shed request's fast
 * typed answer cannot masquerade as solve throughput.
 *
 * Scale-out mode (--shards N): forks N real xylem_serve backends on
 * ephemeral TCP ports plus an xylem_frontend router, drives the same
 * load generator through the frontend, and gates (a) that every
 * response recorded through the fleet is byte-identical (up to
 * telemetry) to a serial replay of the same request set against one
 * fresh single daemon, and (b) near-linear scaling — >=1.6x solves/s
 * at 2 shards — on machines with >=4 cores (skipped with a notice on
 * smaller ones). --shard-sweep additionally measures shards 1/2/4 and
 * emits a "shard_sweep" JSON section. When the JSON summary path
 * already holds a previous run, its content is preserved under
 * "previous_baseline".
 *
 * Flags:
 *   --endpoint EP      use an external daemon instead of in-process
 *                      (unix:/path, tcp:host:port, or a bare path)
 *   --socket PATH      alias for --endpoint (legacy)
 *   --shards N         multi-daemon scale-out harness with N shards
 *   --shard-sweep      with --shards: measure shards 1/2/4
 *   --serve-bin PATH   xylem_serve binary (default: ../tools/ next to
 *                      this binary)
 *   --frontend-bin PATH xylem_frontend binary (same default rule)
 *   --clients N        concurrent client connections (default 8)
 *   --requests N       requests per client (default 24)
 *   --deadline-ms MS   per-request end-to-end deadline (default none)
 *   --dup-percent P    share of duplicate-scenario requests (default 50)
 *   --jobs N           in-process server worker threads (default 4)
 *   --solver-threads N in-process daemon's intra-solve thread grant
 *                      (default 0 = off): the load-adaptive policy
 *                      threads solves when the queue is shallow and
 *                      pins them to 1 thread when it is deep; the
 *                      decision counters land in the JSON
 *   --queue-capacity N in-process server queue bound (default 64)
 *   --verify N         scenarios to check bit-identical vs batch mode
 *                      (default 3; 0 disables)
 *   --batch            also run the engine-level block-solve sweep:
 *                      batches of 1..32 distinct steady requests on a
 *                      64x64 stack through Engine::runBatch, reporting
 *                      solves/s and speedup over batch-1, with every
 *                      column verified bit-identical to Engine::run
 *                      (emitted as "batch_sweep" in the JSON)
 *   --json [PATH]      summary JSON (default BENCH_service.json)
 *   --fast             smoke configuration (4 clients x 6 requests)
 *
 * Exit status: 0 on success; 1 when any transport error occurs, a
 * response is not bit-identical to batch mode, a sweep column diverges
 * from its solo solve, no dedup hit was observed despite duplicate
 * traffic, or requests were shed although the offered load fits the
 * queue bound.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "service/client.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "workloads/profile.hpp"
#include "xylem/config_io.hpp"
#include "xylem/system.hpp"

namespace {

using namespace xylem;
using Clock = std::chrono::steady_clock;

/** The benchmark stack: small grid so a steady solve is fast. */
constexpr const char *kGridNx = "32";
constexpr const char *kGridNy = "32";

const std::vector<std::string> kApps = {"FFT", "LU", "Radix",
                                        "Cholesky"};

struct Scenario
{
    std::string app;
    double freqGHz = 0.0;
};

/** Same request index -> same scenario in every client (collides). */
Scenario
sharedScenario(int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(r) % kApps.size()];
    s.freqGHz = 2.0 + 0.1 * (r % 5);
    return s;
}

/** Client-unique scenario: never collides across clients. */
Scenario
uniqueScenario(int client, int r)
{
    Scenario s;
    s.app = kApps[static_cast<std::size_t>(client + r) % kApps.size()];
    s.freqGHz = 1.0 + 0.001 * (client * 1000 + r);
    return s;
}

/** Deterministic duplicate mix, identical across clients. */
bool
isShared(int r, int dup_percent)
{
    return (r * 37) % 100 < dup_percent;
}

std::string
requestFrame(std::uint64_t id, const Scenario &s,
             const char *nx = kGridNx, const char *ny = kGridNy,
             const char *precond = nullptr, double deadline_ms = 0.0)
{
    service::JsonValue::Object config;
    config.emplace("gridNx", service::JsonValue(nx));
    config.emplace("gridNy", service::JsonValue(ny));
    if (precond)
        config.emplace("precond", service::JsonValue(precond));
    service::JsonValue::Object req;
    req.emplace("id", service::JsonValue(static_cast<double>(id)));
    req.emplace("query", service::JsonValue("steady"));
    req.emplace("app", service::JsonValue(s.app));
    req.emplace("freqGHz", service::JsonValue(s.freqGHz));
    if (deadline_ms > 0.0)
        req.emplace("deadline_ms", service::JsonValue(deadline_ms));
    req.emplace("config", service::JsonValue(std::move(config)));
    std::string frame = service::JsonValue(std::move(req)).dump();
    frame += '\n';
    return frame;
}

enum class Outcome
{
    Ok,
    Overloaded,
    DeadlineExceeded,
    Error
};

struct ClientStats
{
    /** Latencies split by final outcome (seconds, unsorted). */
    std::vector<double> byOutcome[4];
    int ok = 0;
    int overloaded = 0;
    int deadline_exceeded = 0;
    int errors = 0;
    int transport_failures = 0;
    int retries = 0;    ///< re-sent requests (overload/transport)
    int reconnects = 0; ///< connections re-established mid-run
};

constexpr int kMaxAttempts = 3;

/** One (request frame, response line) pair captured through the
 *  scale-out fleet, replayed later against a single fresh daemon. */
struct RequestRecord
{
    std::string frame;
    std::string response;
};

/** One client: a kept-alive ServiceClient firing requests
 *  back-to-back; reconnect, backoff, and overload retry live in
 *  service/client.hpp (shared with xylem_client and the frontend). */
ClientStats
runClient(const std::string &endpoint, int client, int requests,
          int dup_percent, double deadline_ms,
          std::vector<RequestRecord> *record = nullptr)
{
    ClientStats stats;
    service::ClientOptions copts;
    copts.endpoint = endpoint;
    copts.retries = kMaxAttempts - 1;
    copts.backoffBaseMs = 20.0;
    copts.backoffCapMs = 500.0;
    copts.backoffSalt = static_cast<std::uint64_t>(client);
    copts.keepAlive = true;
    service::ServiceClient cli(copts);
    for (int r = 0; r < requests; ++r) {
        const Scenario s = isShared(r, dup_percent)
                               ? sharedScenario(r)
                               : uniqueScenario(client, r);
        const std::uint64_t id =
            static_cast<std::uint64_t>(client) * 100000 +
            static_cast<std::uint64_t>(r);
        const std::string frame = requestFrame(
            id, s, kGridNx, kGridNy, nullptr, deadline_ms);
        const auto t0 = Clock::now();
        const service::CallResult res = cli.call(frame);
        stats.retries += res.retries;
        stats.reconnects += res.reconnects;
        if (res.status == service::CallStatus::TransportFailure ||
            res.status == service::CallStatus::BudgetExhausted) {
            ++stats.transport_failures;
            continue;
        }
        const double latency =
            std::chrono::duration<double>(Clock::now() - t0).count();
        Outcome outcome = Outcome::Error;
        if (res.status == service::CallStatus::Ok)
            outcome = Outcome::Ok;
        else if (res.errorCode == toString(ErrorCode::Overloaded))
            outcome = Outcome::Overloaded;
        else if (res.errorCode ==
                 toString(ErrorCode::DeadlineExceeded))
            outcome = Outcome::DeadlineExceeded;
        stats.byOutcome[static_cast<int>(outcome)].push_back(latency);
        switch (outcome) {
        case Outcome::Ok:
            ++stats.ok;
            break;
        case Outcome::Overloaded:
            ++stats.overloaded;
            break;
        case Outcome::DeadlineExceeded:
            ++stats.deadline_exceeded;
            break;
        case Outcome::Error:
            ++stats.errors;
            break;
        }
        if (record && outcome == Outcome::Ok)
            record->push_back(RequestRecord{frame, res.line});
    }
    return stats;
}

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

/** Fetch a counter from the daemon's metrics query (over the wire). */
std::uint64_t
wireCounter(const service::JsonValue &metrics, const std::string &name)
{
    const service::JsonValue *counters = metrics.find("counters");
    const service::JsonValue *v = counters ? counters->find(name)
                                           : nullptr;
    return v && v->isNumber()
               ? static_cast<std::uint64_t>(v->number())
               : 0;
}

/**
 * Ask the daemon for `scenario` once more and compare every double in
 * the response bit-for-bit with a cold batch-mode solve of the same
 * query. Returns false (and explains) on any mismatch.
 */
bool
verifyBitIdentical(const std::string &socket_path,
                   const Scenario &scenario)
{
    const service::FdGuard fd = service::connectEndpoint(socket_path);
    if (!service::sendAll(fd.get(), requestFrame(1, scenario)))
        return false;
    service::LineReader reader(fd.get(), service::kMaxFrameBytes);
    std::string line;
    if (reader.next(line) != service::ReadStatus::Frame)
        return false;
    const service::JsonValue resp = service::parseJson(line);
    const service::JsonValue *ok = resp.find("ok");
    if (!ok || !ok->isBoolean() || !ok->boolean())
        return false;

    // The same query, cold, through the batch-mode pipeline.
    std::istringstream config_text(std::string("gridNx = ") + kGridNx +
                                   "\ngridNy = " + kGridNy + "\n");
    core::StackSystem system(core::parseSystemConfig(config_text));
    const core::EvalResult eval = system.evaluate(
        workloads::profileByName(scenario.app), scenario.freqGHz);

    const auto bitEqual = [](double a, double b) {
        return std::memcmp(&a, &b, sizeof a) == 0;
    };
    const auto field = [&](const char *name) {
        const service::JsonValue *v = resp.find(name);
        return v && v->isNumber() ? v->number() : -1.0;
    };
    struct Check
    {
        const char *name;
        double served;
        double batch;
    };
    const Check checks[] = {
        {"procHotspotC", field("procHotspotC"), eval.procHotspot},
        {"dramBottomHotspotC", field("dramBottomHotspotC"),
         eval.dramBottomHotspot},
        {"procPowerW", field("procPowerW"), eval.procPowerTotal},
        {"dramPowerW", field("dramPowerW"), eval.dramPowerTotal},
        {"simSeconds", field("simSeconds"), eval.seconds},
    };
    for (const Check &c : checks) {
        if (!bitEqual(c.served, c.batch)) {
            std::cerr << "bit-identity violation: " << c.name
                      << " served " << service::formatDouble(c.served)
                      << " != batch "
                      << service::formatDouble(c.batch) << " (app "
                      << scenario.app << ", freq " << scenario.freqGHz
                      << ")\n";
            return false;
        }
    }
    const service::JsonValue *cores = resp.find("coreHotspotC");
    if (!cores || !cores->isArray() ||
        cores->array().size() != eval.coreHotspot.size())
        return false;
    for (std::size_t i = 0; i < eval.coreHotspot.size(); ++i)
        if (!bitEqual(cores->array()[i].number(),
                      eval.coreHotspot[i])) {
            std::cerr << "bit-identity violation: coreHotspotC[" << i
                      << "]\n";
            return false;
        }
    return true;
}

/** One batch size of the engine-level block-solve sweep. */
struct SweepPoint
{
    int batch = 0;
    double nsPerSolve = 0.0;
    double solvesPerS = 0.0;
    double speedupVs1 = 0.0;
    bool bitIdentical = true;
};

struct SweepResult
{
    /** Per-request cost of serial serving (Engine::run), reference. */
    double soloNsPerSolve = 0.0;
    std::vector<SweepPoint> points;
    bool bitIdentical = true;
};

/** Every scalar and every core temperature, bit for bit. */
bool
summariesBitIdentical(const service::EvalSummary &a,
                      const service::EvalSummary &b)
{
    const auto bitEqual = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof x) == 0;
    };
    if (!bitEqual(a.procHotspotC, b.procHotspotC) ||
        !bitEqual(a.dramBottomHotspotC, b.dramBottomHotspotC) ||
        !bitEqual(a.procPowerW, b.procPowerW) ||
        !bitEqual(a.dramPowerW, b.dramPowerW) ||
        !bitEqual(a.simSeconds, b.simSeconds))
        return false;
    if (a.cgIterations != b.cgIterations || a.converged != b.converged ||
        a.escalation != b.escalation)
        return false;
    if (a.coreHotspotC.size() != b.coreHotspotC.size())
        return false;
    for (std::size_t i = 0; i < a.coreHotspotC.size(); ++i)
        if (!bitEqual(a.coreHotspotC[i], b.coreHotspotC[i]))
            return false;
    return true;
}

/**
 * The block-solve throughput sweep the batching server is built on:
 * batches of K distinct steady requests (one 64x64 stack, distinct
 * app/frequency per column) through Engine::runBatch, against a solo
 * Engine::run reference pass that both warms the model/simulation
 * caches and supplies the bit-identity baseline. speedup_vs_1 compares
 * each batch size against the same block-solve path at K=1, isolating
 * what amortising the coefficient and factorisation streams buys.
 *
 * The stack uses the line preconditioner: that is the iteration-heavy
 * solver the blocked kernels target (hundreds of CG iterations whose
 * cost is streaming stencil coefficients and cached Thomas factors,
 * both shared across columns). MG-CG converges in a handful of
 * iterations dominated by per-column V-cycle traffic, so its
 * amortisation ceiling is structurally lower (~2x).
 */
SweepResult
runBatchSweep(const std::vector<int> &sizes)
{
    const int max_k = *std::max_element(sizes.begin(), sizes.end());
    service::Engine engine{service::EngineOptions{}};

    std::vector<service::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(max_k));
    for (int k = 0; k < max_k; ++k) {
        Scenario s;
        s.app = kApps[static_cast<std::size_t>(k) % kApps.size()];
        s.freqGHz = 2.0 + 0.05 * k;
        reqs.push_back(service::parseRequest(requestFrame(
            500000 + static_cast<std::uint64_t>(k), s, "64", "64",
            "line")));
    }

    SweepResult result;
    std::vector<service::EvalSummary> solo;
    solo.reserve(reqs.size());
    {
        const auto t0 = Clock::now();
        for (const service::Request &req : reqs)
            solo.push_back(engine.run(req));
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        result.soloNsPerSolve = sec / static_cast<double>(max_k) * 1e9;
    }

    for (const int batch : sizes) {
        std::vector<const service::Request *> ptrs;
        ptrs.reserve(static_cast<std::size_t>(batch));
        for (int k = 0; k < batch; ++k)
            ptrs.push_back(&reqs[static_cast<std::size_t>(k)]);
        const auto t0 = Clock::now();
        const auto outcomes = engine.runBatch(ptrs);
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();

        SweepPoint p;
        p.batch = batch;
        p.nsPerSolve = sec / static_cast<double>(batch) * 1e9;
        p.solvesPerS = sec > 0.0 ? static_cast<double>(batch) / sec : 0.0;
        for (int k = 0; k < batch; ++k) {
            const auto &out = outcomes[static_cast<std::size_t>(k)];
            if (!out.ok ||
                !summariesBitIdentical(
                    out.summary, solo[static_cast<std::size_t>(k)])) {
                std::cerr << "batch sweep: column " << k << " of batch "
                          << batch
                          << (out.ok ? " diverges from its solo solve"
                                     : " failed: " + out.message);
                if (out.ok)
                    std::cerr << " (batch "
                              << service::formatDouble(
                                     out.summary.procHotspotC)
                              << " in " << out.summary.cgIterations
                              << " iters vs solo "
                              << service::formatDouble(
                                     solo[static_cast<std::size_t>(k)]
                                         .procHotspotC)
                              << " in "
                              << solo[static_cast<std::size_t>(k)]
                                     .cgIterations
                              << " iters)";
                std::cerr << "\n";
                p.bitIdentical = false;
                result.bitIdentical = false;
            }
        }
        result.points.push_back(p);
    }
    for (SweepPoint &p : result.points)
        p.speedupVs1 = p.nsPerSolve > 0.0
                           ? result.points.front().nsPerSolve / p.nsPerSolve
                           : 0.0;
    return result;
}

// ---------------------------------------------------------------------------
// Scale-out harness: fork real xylem_serve shards + xylem_frontend,
// drive the load generator through the frontend, and gate bit-identity
// against a single-daemon serial replay plus solves/s scaling.
// ---------------------------------------------------------------------------

/** Response bytes up to the telemetry object — everything a client
 *  acts on (id, results, error codes); telemetry carries wall times
 *  that legitimately differ between runs. */
std::string_view
payloadPrefix(const std::string &line)
{
    const auto pos = line.find("\"telemetry\"");
    return std::string_view(line).substr(
        0, pos == std::string::npos ? line.size() : pos);
}

std::string
dirnameOf(const std::string &path)
{
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Bind tcp:127.0.0.1:0, read the kernel's port back, release it.
 *  (The daemon re-binds moments later; the race window is tiny and a
 *  collision surfaces as a readiness failure, never silently.) */
std::string
freeTcpEndpoint()
{
    const service::Endpoint want =
        service::parseEndpoint("tcp:127.0.0.1:0");
    const service::FdGuard fd = service::listenEndpoint(want);
    return service::boundEndpoint(fd, want).str();
}

pid_t
spawnDaemon(const std::vector<std::string> &argv)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::vector<char *> cargs;
    cargs.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargs.push_back(const_cast<char *>(a.c_str()));
    cargs.push_back(nullptr);
    ::execv(cargs[0], cargs.data());
    ::_exit(127);
}

/** Poll the health verb until the daemon answers ready. */
bool
awaitReady(const std::string &endpoint, double timeout_s)
{
    service::ClientOptions copts;
    copts.endpoint = endpoint;
    service::ServiceClient cli(copts);
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeout_s);
    while (Clock::now() < deadline) {
        const service::CallResult r = cli.call(
            [](double) {
                return std::string("{\"id\":0,\"query\":\"health\"}");
            },
            500.0);
        if (r.status == service::CallStatus::Ok) {
            const service::JsonValue resp = service::parseJson(r.line);
            const service::JsonValue *ready = resp.find("ready");
            if (ready && ready->isBoolean() && ready->boolean())
                return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
}

void
stopDaemon(pid_t pid)
{
    if (pid <= 0)
        return;
    ::kill(pid, SIGTERM);
    int status = 0;
    for (int i = 0; i < 100; ++i) { // ~5s of graceful drain
        if (::waitpid(pid, &status, WNOHANG) == pid)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
}

/** One measured fleet run: N shards behind a frontend. */
struct FleetRunResult
{
    int shards = 0;
    bool ran = false; ///< fleet came up and the load ran
    ClientStats total;
    double wall = 0.0;
    double solvesPerS = 0.0;
    std::vector<RequestRecord> records;
};

FleetRunResult
runFleet(const std::string &serve_bin, const std::string &frontend_bin,
         int shards, int clients, int requests, int dup_percent,
         int shard_jobs, bool capture_records)
{
    FleetRunResult result;
    result.shards = shards;
    std::vector<pid_t> pids;
    const auto stop_all = [&] {
        // Frontend first (it holds client connections), then shards.
        for (auto it = pids.rbegin(); it != pids.rend(); ++it)
            stopDaemon(*it);
        pids.clear();
    };

    std::vector<std::string> shard_eps;
    for (int s = 0; s < shards; ++s) {
        const std::string ep = freeTcpEndpoint();
        shard_eps.push_back(ep);
        pids.push_back(spawnDaemon(
            {serve_bin, "--endpoint", ep, "--jobs",
             std::to_string(shard_jobs), "--quiet"}));
    }
    for (const std::string &ep : shard_eps)
        if (!awaitReady(ep, 10.0)) {
            std::cerr << "scale-out: shard " << ep
                      << " never became ready\n";
            stop_all();
            return result;
        }

    const std::string frontend_ep = freeTcpEndpoint();
    std::vector<std::string> fe_argv = {
        frontend_bin,        "--endpoint", frontend_ep,
        "--health-interval", "0.1",        "--quiet"};
    for (const std::string &ep : shard_eps) {
        fe_argv.push_back("--shard");
        fe_argv.push_back(ep);
    }
    pids.push_back(spawnDaemon(fe_argv));
    if (!awaitReady(frontend_ep, 10.0)) {
        std::cerr << "scale-out: frontend " << frontend_ep
                  << " never became ready\n";
        stop_all();
        return result;
    }

    std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
    std::vector<std::vector<RequestRecord>> records(
        static_cast<std::size_t>(clients));
    const auto t0 = Clock::now();
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                stats[static_cast<std::size_t>(c)] = runClient(
                    frontend_ep, c, requests, dup_percent,
                    /*deadline_ms=*/0.0,
                    capture_records
                        ? &records[static_cast<std::size_t>(c)]
                        : nullptr);
            });
        for (auto &t : threads)
            t.join();
    }
    result.wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    stop_all();

    for (const auto &s : stats) {
        for (int o = 0; o < 4; ++o)
            result.total.byOutcome[o].insert(
                result.total.byOutcome[o].end(),
                s.byOutcome[o].begin(), s.byOutcome[o].end());
        result.total.ok += s.ok;
        result.total.overloaded += s.overloaded;
        result.total.deadline_exceeded += s.deadline_exceeded;
        result.total.errors += s.errors;
        result.total.transport_failures += s.transport_failures;
        result.total.retries += s.retries;
        result.total.reconnects += s.reconnects;
    }
    for (int o = 0; o < 4; ++o)
        std::sort(result.total.byOutcome[o].begin(),
                  result.total.byOutcome[o].end());
    for (auto &r : records)
        result.records.insert(result.records.end(),
                              std::make_move_iterator(r.begin()),
                              std::make_move_iterator(r.end()));
    result.solvesPerS =
        result.wall > 0.0
            ? static_cast<double>(result.total.ok) / result.wall
            : 0.0;
    result.ran = true;
    return result;
}

/**
 * The scale-out correctness gate: every response captured through the
 * fleet must match — byte for byte, up to telemetry — a serial replay
 * of the same frames against ONE fresh daemon. Sharding may change
 * where a request is solved, never what it answers.
 */
bool
serialReplayIdentical(const std::string &serve_bin,
                      const std::vector<RequestRecord> &records)
{
    const std::string ep = "unix:/tmp/xylem_replay_" +
                           std::to_string(::getpid()) + ".sock";
    const pid_t pid = spawnDaemon(
        {serve_bin, "--endpoint", ep, "--jobs", "1", "--quiet"});
    if (!awaitReady(ep, 10.0)) {
        std::cerr << "scale-out: replay daemon never became ready\n";
        stopDaemon(pid);
        return false;
    }
    bool identical = true;
    {
        service::ClientOptions copts;
        copts.endpoint = ep;
        copts.retries = 2;
        copts.keepAlive = true;
        service::ServiceClient cli(copts);
        std::size_t mismatches = 0;
        for (const RequestRecord &rec : records) {
            const service::CallResult r = cli.call(rec.frame);
            if (r.status != service::CallStatus::Ok ||
                payloadPrefix(r.line) !=
                    payloadPrefix(rec.response)) {
                identical = false;
                if (++mismatches <= 3)
                    std::cerr
                        << "scale-out: replay mismatch\n  fleet:  "
                        << payloadPrefix(rec.response)
                        << "\n  replay: "
                        << (r.status == service::CallStatus::Ok
                                ? std::string(payloadPrefix(r.line))
                                : "<" + r.message + ">")
                        << "\n";
            }
        }
        if (mismatches > 3)
            std::cerr << "scale-out: ... " << mismatches
                      << " mismatches total\n";
    }
    stopDaemon(pid);
    return identical;
}

struct ShardSweepResult
{
    bool ran = false;       ///< all fleets came up and ran to completion
    bool ok = true;         ///< no transport failures or typed errors
    bool bitIdentical = true;
    unsigned cores = 0;
    bool gateEnforced = false; ///< scaling gate active (>=4 cores, 1&2 ran)
    double ratio2v1 = 0.0;     ///< solves/s(2 shards) / solves/s(1 shard)
    std::vector<FleetRunResult> points;
};

ShardSweepResult
runScaleOut(const std::string &serve_bin,
            const std::string &frontend_bin, int shards, bool sweep,
            int clients, int requests, int dup_percent)
{
    ShardSweepResult result;
    result.cores = std::thread::hardware_concurrency();

    std::vector<int> sizes = sweep ? std::vector<int>{1, 2, 4}
                                   : std::vector<int>{1};
    sizes.push_back(shards);
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

    // Two workers per shard: enough to overlap solve and I/O without
    // oversubscribing small machines at the 4-shard sweep point.
    const int shard_jobs = 2;

    for (const int n : sizes) {
        const bool primary = n == shards;
        FleetRunResult run =
            runFleet(serve_bin, frontend_bin, n, clients, requests,
                     dup_percent, shard_jobs, primary);
        if (!run.ran) {
            result.ok = false;
            return result;
        }
        std::cout << "  shards " << n << ": "
                  << Table::num(run.solvesPerS, 1) << " solves/s over "
                  << Table::num(run.wall, 2) << " s (" << run.total.ok
                  << " ok, " << run.total.overloaded << " overloaded, "
                  << run.total.errors << " errors, "
                  << run.total.transport_failures
                  << " transport failures)\n";
        if (run.total.transport_failures > 0 || run.total.errors > 0)
            result.ok = false;
        if (primary) {
            result.bitIdentical =
                serialReplayIdentical(serve_bin, run.records);
            std::cout << "  bit-identity vs single-daemon serial "
                         "replay ("
                      << run.records.size() << " responses): "
                      << (result.bitIdentical ? "yes" : "NO") << "\n";
            run.records.clear();
        }
        result.points.push_back(std::move(run));
    }
    result.ran = true;

    const auto at = [&](int n) -> const FleetRunResult * {
        for (const FleetRunResult &p : result.points)
            if (p.shards == n)
                return &p;
        return nullptr;
    };
    const FleetRunResult *p1 = at(1);
    const FleetRunResult *p2 = at(2);
    if (p1 && p2 && p1->solvesPerS > 0.0)
        result.ratio2v1 = p2->solvesPerS / p1->solvesPerS;
    result.gateEnforced = p1 && p2 && result.cores >= 4;
    if (result.gateEnforced)
        std::cout << "  scaling 2 vs 1 shards: "
                  << Table::num(result.ratio2v1, 2)
                  << "x (gate: >= 1.6x)\n";
    else
        std::cout << "  scaling gate skipped: "
                  << (p1 && p2 ? "" : "no 1- and 2-shard points; ")
                  << result.cores << " core"
                  << (result.cores == 1 ? "" : "s")
                  << " < 4 required for a meaningful ratio\n";
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(
        argc, argv,
        "  --endpoint EP      external daemon endpoint (unix:/path, "
        "tcp:host:port; default: in-process)\n"
        "  --socket PATH      alias for --endpoint (bare unix path)\n"
        "  --shards N         multi-daemon harness: N xylem_serve "
        "shards behind xylem_frontend\n"
        "  --shard-sweep      with --shards: also measure 1/2/4 "
        "shards\n"
        "  --serve-bin PATH   xylem_serve binary (default: sibling "
        "tools dir)\n"
        "  --frontend-bin PATH  xylem_frontend binary (default: "
        "sibling tools dir)\n"
        "  --clients N        concurrent clients (default 8)\n"
        "  --requests N       requests per client (default 24)\n"
        "  --deadline-ms MS   per-request deadline (default none)\n"
        "  --dup-percent P    duplicate-scenario share (default 50)\n"
        "  --jobs N           in-process server workers (default 4)\n"
        "  --solver-threads N in-process intra-solve thread grant "
        "(default 0 = off)\n"
        "  --queue-capacity N in-process queue bound (default 64)\n"
        "  --verify N         bit-identity scenarios (default 3)\n"
        "  --batch            engine-level block-solve sweep "
        "(batch 1..32 on 64x64)\n"
        "  --json [PATH]      summary JSON "
        "(default BENCH_service.json)\n"
        "  --fast             smoke configuration\n");
    int clients = 8;
    int requests = 24;
    if (args.flag("--fast")) {
        clients = 4;
        requests = 6;
    }
    std::string external_socket;
    if (const auto ep = args.option("--endpoint"))
        external_socket = *ep;
    if (const auto path = args.option("--socket"))
        external_socket = *path; // alias; wins if both are given
    const int shard_count = args.intOption("--shards", 0);
    const bool shard_sweep = args.flag("--shard-sweep");
    std::string serve_bin =
        dirnameOf(argv[0]) + "/../tools/xylem_serve";
    std::string frontend_bin =
        dirnameOf(argv[0]) + "/../tools/xylem_frontend";
    if (const auto b = args.option("--serve-bin"))
        serve_bin = *b;
    if (const auto b = args.option("--frontend-bin"))
        frontend_bin = *b;
    clients = args.intOption("--clients", clients);
    requests = args.intOption("--requests", requests);
    const double deadline_ms = args.numberOption("--deadline-ms", 0.0);
    const int dup_percent = args.intOption("--dup-percent", 50);
    const int jobs = args.intOption("--jobs", 4);
    const int solver_threads = args.intOption("--solver-threads", 0);
    const int queue_capacity = args.intOption("--queue-capacity", 64);
    const int verify_n = args.intOption("--verify", 3);
    const bool want_batch_sweep = args.flag("--batch");
    std::string json_path;
    const bool want_json =
        args.optionOrDefault("--json", json_path, "BENCH_service.json");
    args.finish();

    bench::banner("perf_service",
                  "n/a (serving-layer microbenchmark, not a paper "
                  "figure)");

    // In-process daemon unless an external one was named.
    std::string socket_path = external_socket;
    std::unique_ptr<service::Server> server;
    std::thread server_thread;
    if (socket_path.empty()) {
        socket_path = "/tmp/xylem_perf_" + std::to_string(::getpid()) +
                      ".sock";
        service::ServerOptions opts;
        opts.endpoint = socket_path;
        opts.workers = jobs;
        opts.engine.solverThreads = solver_threads;
        opts.queueCapacity = static_cast<std::size_t>(queue_capacity);
        server = std::make_unique<service::Server>(opts);
        server->start();
        server_thread = std::thread([&server] { server->run(); });
    }

    std::cout << clients << " clients x " << requests << " requests, "
              << dup_percent << "% duplicate scenarios, socket "
              << socket_path << "\n";

    const auto t0 = Clock::now();
    std::vector<ClientStats> stats(
        static_cast<std::size_t>(clients));
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                stats[static_cast<std::size_t>(c)] = runClient(
                    socket_path, c, requests, dup_percent,
                    deadline_ms);
            });
        for (auto &t : threads)
            t.join();
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    ClientStats total;
    for (const auto &s : stats) {
        for (int o = 0; o < 4; ++o)
            total.byOutcome[o].insert(total.byOutcome[o].end(),
                                      s.byOutcome[o].begin(),
                                      s.byOutcome[o].end());
        total.ok += s.ok;
        total.overloaded += s.overloaded;
        total.deadline_exceeded += s.deadline_exceeded;
        total.errors += s.errors;
        total.transport_failures += s.transport_failures;
        total.retries += s.retries;
        total.reconnects += s.reconnects;
    }
    std::vector<double> all_latencies;
    for (int o = 0; o < 4; ++o) {
        all_latencies.insert(all_latencies.end(),
                             total.byOutcome[o].begin(),
                             total.byOutcome[o].end());
        std::sort(total.byOutcome[o].begin(), total.byOutcome[o].end());
    }
    std::sort(all_latencies.begin(), all_latencies.end());
    const double p50 = quantile(all_latencies, 0.50);
    const double p95 = quantile(all_latencies, 0.95);
    const double p99 = quantile(all_latencies, 0.99);
    const double throughput =
        wall > 0.0 ? static_cast<double>(total.ok) / wall : 0.0;

    // Server-side telemetry over the wire (works for external daemons
    // too), incl. the dedup counter the acceptance criteria name.
    std::uint64_t dedup_hits = 0;
    std::uint64_t shed = 0;
    std::uint64_t threaded_solves = 0;
    std::uint64_t singlethread_solves = 0;
    std::string metrics_json = "{}";
    try {
        const service::FdGuard fd =
            service::connectEndpoint(socket_path);
        service::sendAll(fd.get(), "{\"query\":\"metrics\"}\n");
        service::LineReader reader(fd.get(), service::kMaxFrameBytes);
        std::string line;
        if (reader.next(line) == service::ReadStatus::Frame) {
            const service::JsonValue resp = service::parseJson(line);
            if (const service::JsonValue *m = resp.find("metrics")) {
                dedup_hits = wireCounter(*m, "service.dedup_hits");
                shed = wireCounter(*m, "service.shed");
                threaded_solves =
                    wireCounter(*m, "service.threaded_solves");
                singlethread_solves =
                    wireCounter(*m, "service.singlethread_solves");
                metrics_json = m->dump();
            }
        }
    } catch (const Error &e) {
        std::cerr << "metrics query failed: " << e.what() << "\n";
    }

    bool bit_identical = true;
    for (int i = 0; i < verify_n; ++i)
        bit_identical =
            verifyBitIdentical(socket_path, sharedScenario(i)) &&
            bit_identical;

    if (server) {
        server->requestStop();
        server_thread.join();
    }

    SweepResult sweep;
    if (want_batch_sweep) {
        std::cout << "\nblock-solve sweep (64x64 stack, distinct "
                     "scenarios per column):\n";
        try {
            sweep = runBatchSweep({1, 2, 4, 8, 16, 32});
        } catch (const Error &e) {
            std::cerr << "batch sweep failed: " << e.what() << "\n";
            return 1;
        }
        std::cout << "  solo (Engine::run): "
                  << Table::num(sweep.soloNsPerSolve / 1e6, 1)
                  << " ms/solve\n";
        for (const SweepPoint &p : sweep.points)
            std::cout << "  batch " << p.batch << ": "
                      << Table::num(p.nsPerSolve / 1e6, 1)
                      << " ms/solve, " << Table::num(p.solvesPerS, 2)
                      << " solves/s, " << Table::num(p.speedupVs1, 2)
                      << "x vs batch-1, bit-identical "
                      << (p.bitIdentical ? "yes" : "NO") << "\n";
    }

    ShardSweepResult scaleout;
    if (shard_count > 0) {
        std::cout << "\nscale-out harness (" << shard_count
                  << "-shard fleet behind xylem_frontend"
                  << (shard_sweep ? ", sweep 1/2/4" : "") << "):\n";
        if (::access(serve_bin.c_str(), X_OK) != 0 ||
            ::access(frontend_bin.c_str(), X_OK) != 0) {
            std::cerr << "scale-out: daemon binaries not found ("
                      << serve_bin << ", " << frontend_bin
                      << "); use --serve-bin/--frontend-bin\n";
            return 1;
        }
        try {
            scaleout =
                runScaleOut(serve_bin, frontend_bin, shard_count,
                            shard_sweep, clients, requests,
                            dup_percent);
        } catch (const Error &e) {
            std::cerr << "scale-out harness failed: " << e.what()
                      << "\n";
            return 1;
        }
    }

    std::cout << "\nresponses: " << total.ok << " ok, "
              << total.overloaded << " overloaded, "
              << total.deadline_exceeded << " deadline-exceeded, "
              << total.errors << " errors, "
              << total.transport_failures << " transport failures ("
              << total.retries << " retries, " << total.reconnects
              << " reconnects)\n";
    std::cout << "throughput: " << Table::num(throughput, 1)
              << " req/s over " << Table::num(wall, 2) << " s\n";
    std::cout << "latency: p50 " << Table::num(p50 * 1e3, 2)
              << " ms, p95 " << Table::num(p95 * 1e3, 2)
              << " ms, p99 " << Table::num(p99 * 1e3, 2) << " ms\n";
    static const char *const kOutcomeNames[] = {
        "ok", "overloaded", "deadline_exceeded", "error"};
    for (int o = 0; o < 4; ++o)
        if (!total.byOutcome[o].empty())
            std::cout << "  " << kOutcomeNames[o] << ": p50 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.50) * 1e3,
                             2)
                      << " ms, p95 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.95) * 1e3,
                             2)
                      << " ms, p99 "
                      << Table::num(
                             quantile(total.byOutcome[o], 0.99) * 1e3,
                             2)
                      << " ms (" << total.byOutcome[o].size() << ")\n";
    std::cout << "dedup hits: " << dedup_hits << ", shed: " << shed
              << ", bit-identical vs batch: "
              << (verify_n > 0 ? (bit_identical ? "yes" : "NO")
                               : "skipped")
              << "\n";
    if (solver_threads > 0)
        std::cout << "adaptive threads (grant " << solver_threads
                  << "): " << threaded_solves << " threaded pickups, "
                  << singlethread_solves << " pinned to 1\n";

    if (want_json) {
        std::ostringstream json;
        json << "{\"bench\":\"perf_service\",\"clients\":" << clients
             << ",\"requests_per_client\":" << requests
             << ",\"dup_percent\":" << dup_percent
             << ",\"deadline_ms\":"
             << service::formatDouble(deadline_ms)
             << ",\"wall_seconds\":" << wall
             << ",\"responses_ok\":" << total.ok
             << ",\"overloaded\":" << total.overloaded
             << ",\"deadline_exceeded\":" << total.deadline_exceeded
             << ",\"errors\":" << total.errors
             << ",\"transport_failures\":" << total.transport_failures
             << ",\"retries\":" << total.retries
             << ",\"reconnects\":" << total.reconnects
             << ",\"throughput_rps\":" << throughput
             << ",\"p50_s\":" << service::formatDouble(p50)
             << ",\"p95_s\":" << service::formatDouble(p95)
             << ",\"p99_s\":" << service::formatDouble(p99);
        json << ",\"latency_by_outcome\":{";
        for (int o = 0; o < 4; ++o) {
            json << (o ? "," : "") << "\"" << kOutcomeNames[o]
                 << "\":{\"count\":" << total.byOutcome[o].size()
                 << ",\"p50_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.50))
                 << ",\"p95_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.95))
                 << ",\"p99_s\":"
                 << service::formatDouble(
                        quantile(total.byOutcome[o], 0.99))
                 << "}";
        }
        json << "}";
        json << ",\"dedup_hits\":" << dedup_hits
             << ",\"shed\":" << shed
             << ",\"solver_threads\":" << solver_threads
             << ",\"threaded_solves\":" << threaded_solves
             << ",\"singlethread_solves\":" << singlethread_solves
             << ",\"bit_identical\":"
             << (bit_identical ? "true" : "false");
        if (want_batch_sweep) {
            json << ",\"batch_sweep\":{\"gridNx\":64,\"gridNy\":64"
                 << ",\"precond\":\"line\""
                 << ",\"solo_ns_per_solve\":"
                 << service::formatDouble(sweep.soloNsPerSolve)
                 << ",\"bit_identical\":"
                 << (sweep.bitIdentical ? "true" : "false")
                 << ",\"points\":[";
            for (std::size_t i = 0; i < sweep.points.size(); ++i) {
                const SweepPoint &p = sweep.points[i];
                json << (i ? "," : "") << "{\"batch\":" << p.batch
                     << ",\"ns_per_solve\":"
                     << service::formatDouble(p.nsPerSolve)
                     << ",\"solves_per_s\":"
                     << service::formatDouble(p.solvesPerS)
                     << ",\"speedup_vs_1\":"
                     << service::formatDouble(p.speedupVs1)
                     << ",\"bit_identical\":"
                     << (p.bitIdentical ? "true" : "false") << "}";
            }
            json << "]}";
        }
        if (shard_count > 0 && scaleout.ran) {
            json << ",\"shard_sweep\":{\"clients\":" << clients
                 << ",\"requests_per_client\":" << requests
                 << ",\"dup_percent\":" << dup_percent
                 << ",\"primary_shards\":" << shard_count
                 << ",\"bit_identical_vs_serial_replay\":"
                 << (scaleout.bitIdentical ? "true" : "false")
                 << ",\"scaling\":{\"cores\":" << scaleout.cores
                 << ",\"gate_enforced\":"
                 << (scaleout.gateEnforced ? "true" : "false")
                 << ",\"ratio_2_vs_1\":"
                 << service::formatDouble(scaleout.ratio2v1)
                 << "},\"points\":[";
            for (std::size_t i = 0; i < scaleout.points.size(); ++i) {
                const FleetRunResult &p = scaleout.points[i];
                json << (i ? "," : "") << "{\"shards\":" << p.shards
                     << ",\"wall_seconds\":"
                     << service::formatDouble(p.wall)
                     << ",\"solves_per_s\":"
                     << service::formatDouble(p.solvesPerS)
                     << ",\"responses_ok\":" << p.total.ok
                     << ",\"overloaded\":" << p.total.overloaded
                     << ",\"deadline_exceeded\":"
                     << p.total.deadline_exceeded
                     << ",\"errors\":" << p.total.errors
                     << ",\"transport_failures\":"
                     << p.total.transport_failures
                     << ",\"retries\":" << p.total.retries
                     << ",\"reconnects\":" << p.total.reconnects
                     << ",\"latency_by_outcome\":{";
                for (int o = 0; o < 4; ++o)
                    json << (o ? "," : "") << "\"" << kOutcomeNames[o]
                         << "\":{\"count\":"
                         << p.total.byOutcome[o].size()
                         << ",\"p50_s\":"
                         << service::formatDouble(
                                quantile(p.total.byOutcome[o], 0.50))
                         << ",\"p95_s\":"
                         << service::formatDouble(
                                quantile(p.total.byOutcome[o], 0.95))
                         << ",\"p99_s\":"
                         << service::formatDouble(
                                quantile(p.total.byOutcome[o], 0.99))
                         << "}";
                json << "}}";
            }
            json << "]}";
        }
        // Keep one generation of history: the numbers being replaced
        // move under "previous_baseline" (its own history stripped so
        // the file never grows without bound).
        std::string prev_dump;
        {
            std::ifstream prev(json_path);
            if (prev) {
                std::ostringstream buf;
                buf << prev.rdbuf();
                try {
                    const service::JsonValue old =
                        service::parseJson(buf.str());
                    if (old.isObject()) {
                        service::JsonValue::Object trimmed =
                            old.object();
                        trimmed.erase("previous_baseline");
                        prev_dump =
                            service::JsonValue(std::move(trimmed))
                                .dump();
                    }
                } catch (const std::exception &) {
                    // Unparseable old summary: drop it.
                }
            }
        }
        if (!prev_dump.empty())
            json << ",\"previous_baseline\":" << prev_dump;
        json << ",\"metrics\":" << metrics_json << "}";
        std::ofstream out(json_path, std::ios::trunc);
        if (out) {
            out << json.str() << "\n";
            std::cout << "JSON written to " << json_path << "\n";
        } else {
            std::cerr << "warn: cannot write JSON summary to '"
                      << json_path << "'\n";
            return 1;
        }
    }

    // Acceptance gates: every request answered; no shedding when the
    // offered load fits the queue; duplicates actually deduped;
    // served results bit-identical to batch mode.
    if (total.transport_failures > 0 || total.errors > 0)
        return 1;
    if (!bit_identical)
        return 1;
    if (want_batch_sweep && !sweep.bitIdentical)
        return 1;
    if (shard_count > 0) {
        if (!scaleout.ran || !scaleout.ok)
            return 1;
        if (!scaleout.bitIdentical)
            return 1;
        if (scaleout.gateEnforced && scaleout.ratio2v1 < 1.6) {
            std::cerr << "scale-out: 2-shard scaling "
                      << Table::num(scaleout.ratio2v1, 2)
                      << "x is below the 1.6x gate\n";
            return 1;
        }
    }
    if (clients <= queue_capacity && total.overloaded > 0) {
        std::cerr << "unexpected shedding: " << total.overloaded
                  << " requests below the queue bound\n";
        return 1;
    }
    if (clients > 1 && requests > 1 && dup_percent >= 50 &&
        dedup_hits == 0) {
        std::cerr << "no dedup hits despite duplicate traffic\n";
        return 1;
    }
    return 0;
}
